//! The daemon's acceptance test: spawn the **real** `hhh-aggd` binary,
//! stream the full scenario into it from 12 real `aggd-shard`
//! processes (4 kinds × K=3 shards), kill one shard mid-stream on a
//! deterministic fuse, restart it from its spool, and assert the
//! daemon's `GET /hhh` answer is **byte-identical** to an
//! uninterrupted single-process fold of the same shard streams.
//!
//! That byte-identity is the whole point of the resume machinery: a
//! crash-restart cycle must leave no trace in the merged output — not
//! a duplicated window, not a reordered line, not a digit.

use hhh_agg::{read_stream, write_merged, FoldState, MergedPoint};
use hhh_aggd::scenario::{self, Kind, KINDS};
use hhh_core::WireFormat;
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::TimeSpan;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Shards per kind.
const K: usize = 3;

/// Trace horizon in seconds (3 report windows at the scenario's 5 s
/// cadence — enough for a mid-stream death between windows).
const SECONDS: u64 = 15;

/// `aggd-shard --die-after`'s "died on cue" exit code.
const DIE_CODE: i32 = 9;

/// A running daemon process, killed on drop so a failing assertion
/// never leaks it.
struct Daemon {
    child: Child,
    frames: String,
    http: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_daemon() -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hhh-aggd"))
        .args(["--listen", "127.0.0.1:0", "--http", "127.0.0.1:0", "--retain", "none", "--quiet"])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("hhh-aggd spawns");
    // The daemon announces its resolved addresses on stdout:
    // `listening frames=ADDR http=ADDR`.
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("daemon announces its addresses");
    let mut frames = None;
    let mut http = None;
    for word in line.split_whitespace() {
        if let Some(a) = word.strip_prefix("frames=") {
            frames = Some(a.to_string());
        }
        if let Some(a) = word.strip_prefix("http=") {
            http = Some(a.to_string());
        }
    }
    Daemon {
        child,
        frames: frames.unwrap_or_else(|| panic!("no frames= in {line:?}")),
        http: http.unwrap_or_else(|| panic!("no http= in {line:?}")),
    }
}

fn shard_cmd(kind: Kind, shard: usize, frames: &str, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_aggd-shard"));
    cmd.args([
        kind.label(),
        &K.to_string(),
        &shard.to_string(),
        &SECONDS.to_string(),
        "--connect",
        frames,
        "--id",
        &scenario::stream_id(kind, K, shard).to_string(),
    ])
    .args(extra)
    .stderr(Stdio::null());
    cmd
}

/// A one-shot HTTP/1.1 GET over a raw socket — the test's client is as
/// hand-rolled as the daemon's server.
fn http_get(addr: &str, path: &str) -> (u16, Vec<u8>) {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon http");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: aggd\r\nConnection: close\r\n\r\n")
        .expect("request writes");
    let mut buf = Vec::new();
    conn.read_to_end(&mut buf).expect("response reads");
    let head_end =
        buf.windows(4).position(|w| w == b"\r\n\r\n").expect("response has a header block") + 4;
    let head = std::str::from_utf8(&buf[..head_end]).expect("headers are ASCII");
    let status: u16 =
        head.split_whitespace().nth(1).expect("status line").parse().expect("numeric status");
    (status, buf[head_end..].to_vec())
}

/// Poll `path` until its body equals `expected` (the fold loop applies
/// bursts asynchronously; convergence, not raciness, is the contract).
fn poll_until_equal(http: &str, path: &str, expected: &[u8]) -> Vec<u8> {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (status, body) = http_get(http, path);
        if status == 200 && body == expected {
            return body;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never converged on {path}: status {status}, got {} bytes, want {} bytes\n\
             --- got ---\n{}\n--- want ---\n{}",
            body.len(),
            expected.len(),
            String::from_utf8_lossy(&body),
            String::from_utf8_lossy(expected),
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}

/// The uninterrupted reference: fold every shard's stream in one
/// process, exactly as the daemon folds what arrives over TCP.
fn reference_fold() -> FoldState<Ipv4Hierarchy> {
    let horizon = TimeSpan::from_secs(SECONDS);
    let trace = scenario::scenario_trace(horizon);
    let mut fold = FoldState::new();
    for &kind in &KINDS {
        for shard in 0..K {
            let stream =
                scenario::shard_stream_on(kind, &trace, horizon, K, shard, WireFormat::Binary);
            for snap in read_stream(shard, stream.as_slice()).expect("shard stream parses") {
                fold.push(scenario::stream_id(kind, K, shard), snap);
            }
        }
    }
    fold.refold(&scenario::hierarchy()).expect("reference fold");
    fold
}

fn render<'a>(points: impl IntoIterator<Item = &'a MergedPoint<Ipv4Hierarchy>>) -> Vec<u8> {
    let mut out = Vec::new();
    write_merged(&mut out, points, &[scenario::distagg_threshold()], true, WireFormat::Json)
        .expect("merged points render");
    out
}

#[test]
fn killed_shard_resumes_byte_exactly() {
    let daemon = spawn_daemon();
    let tmp = std::env::temp_dir().join(format!("aggd-resume-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("tmp dir");
    let spool = tmp.join("exact-1.spool");
    let spool = spool.to_str().expect("utf-8 tmp path");

    // The doomed shard: exact kind, shard 1, spooled, fused to die
    // after 3 frames — mid-stream, between report windows.
    let died = shard_cmd(Kind::Exact, 1, &daemon.frames, &["--spool", spool, "--die-after", "3"])
        .status()
        .expect("doomed shard runs");
    assert_eq!(died.code(), Some(DIE_CODE), "shard must die on its fuse, not finish");

    // Every other shard of every kind, as 11 concurrent processes.
    let mut children: Vec<(Kind, usize, Child)> = Vec::new();
    for &kind in &KINDS {
        for shard in 0..K {
            if kind == Kind::Exact && shard == 1 {
                continue;
            }
            let child = shard_cmd(kind, shard, &daemon.frames, &[]).spawn().expect("shard spawns");
            children.push((kind, shard, child));
        }
    }
    for (kind, shard, mut child) in children {
        let status = child.wait().expect("shard exits");
        assert!(status.success(), "{} shard {shard} failed: {status}", kind.label());
    }

    // Liveness while the fold is mid-flight.
    let (status, body) = http_get(&daemon.http, "/healthz");
    assert_eq!((status, body.as_slice()), (200, b"ok\n".as_slice()));

    // Restart the dead shard from its spool: it claims the spooled
    // frames, replays only past the daemon's ack, and regenerates the
    // rest of its deterministic stream.
    let resumed = shard_cmd(Kind::Exact, 1, &daemon.frames, &["--spool", spool])
        .status()
        .expect("resumed shard runs");
    assert!(resumed.success(), "resumed shard must finish cleanly: {resumed}");

    // The acceptance bar: the daemon's full answer is byte-identical
    // to the uninterrupted single-process fold.
    let fold = reference_fold();
    let expected = render(fold.points());
    assert!(!expected.is_empty(), "reference fold must produce report points");
    poll_until_equal(&daemon.http, "/hhh?all=1&state=1", &expected);

    // Per-kind filtering matches a filtered render of the same fold.
    let expected_exact = render(fold.points().filter(|p| p.kind == "exact"));
    let (status, body) = http_get(&daemon.http, "/hhh?kind=exact&all=1&state=1");
    assert_eq!(status, 200);
    assert_eq!(body, expected_exact, "kind filter must render the same bytes per kind");

    // /metrics tells the story: every stream has lag/delivered series,
    // the restarted stream shows two connects, and no resume was
    // refused.
    let (status, body) = http_get(&daemon.http, "/metrics");
    assert_eq!(status, 200);
    let text = String::from_utf8(body).expect("metrics are utf-8");
    for needle in [
        "aggd_frames_per_second ",
        "aggd_fold_duration_seconds{quantile=\"0.5\"}",
        "aggd_fold_duration_seconds{quantile=\"0.99\"}",
        "aggd_connected_shards ",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in /metrics:\n{text}");
    }
    for &kind in &KINDS {
        for shard in 0..K {
            let series = format!(
                "aggd_stream_lag_seconds{{stream=\"{}\",label=\"{}\"}}",
                scenario::stream_id(kind, K, shard),
                scenario::shard_label(kind, K, shard),
            );
            assert!(text.contains(&series), "missing {series:?} in /metrics:\n{text}");
        }
    }
    let restarted = format!(
        "aggd_stream_connects_total{{stream=\"{}\",label=\"exact/1of3\"}} 2",
        scenario::stream_id(Kind::Exact, K, 1),
    );
    assert!(text.contains(&restarted), "restarted stream must show 2 connects:\n{text}");
    assert!(text.contains("aggd_gaps_total 0"), "no resume may be refused:\n{text}");

    let _ = std::fs::remove_dir_all(&tmp);
}

#[test]
fn http_surface_rejects_what_it_should() {
    let daemon = spawn_daemon();
    let (status, _) = http_get(&daemon.http, "/nope");
    assert_eq!(status, 404);
    let (status, body) = http_get(&daemon.http, "/hhh?bogus=1");
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("bogus"));
    let (status, _) = http_get(&daemon.http, "/hhh?threshold=0");
    assert_eq!(status, 400);
    // An empty daemon answers /hhh with an empty body, not an error.
    let (status, body) = http_get(&daemon.http, "/hhh");
    assert_eq!((status, body.len()), (200, 0));
}
