//! The traffic model: every knob the generator understands.

use hhh_nettypes::TimeSpan;

/// How a source alternates between sending and silence.
///
/// Sojourn times are exponential with the given means. The *duty cycle*
/// `on/(on+off)` scales a source's in-burst rate up so that its long-run
/// average matches its Zipf share — bursty sources send the same bytes
/// as stable ones, just compressed into bursts (which is what makes
/// them visible to sliding windows and invisible to disjoint ones).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BurstProfile {
    /// Always sending at the source's average rate.
    Stable,
    /// Exponential ON/OFF alternation.
    OnOff {
        /// Mean ON duration.
        on: TimeSpan,
        /// Mean OFF duration.
        off: TimeSpan,
    },
}

impl BurstProfile {
    /// Fraction of time spent sending.
    pub fn duty_cycle(&self) -> f64 {
        match self {
            BurstProfile::Stable => 1.0,
            BurstProfile::OnOff { on, off } => {
                let on = on.as_secs_f64();
                let off = off.as_secs_f64();
                on / (on + off)
            }
        }
    }
}

/// A packet-size mixture entry list (`(size_bytes, weight)`); the
/// default is IMIX-like, matching the bimodal mix of real backbone
/// traffic (many small ACKs, many full-MTU data packets).
#[derive(Clone, Debug, PartialEq)]
pub struct PacketSizeMix {
    /// `(wire bytes, relative weight)` entries.
    pub entries: Vec<(u32, f64)>,
}

impl Default for PacketSizeMix {
    fn default() -> Self {
        PacketSizeMix { entries: vec![(64, 0.45), (576, 0.15), (1500, 0.40)] }
    }
}

impl PacketSizeMix {
    /// A degenerate mix: every packet the same size (useful in tests
    /// where byte counts must be exactly predictable).
    pub fn constant(size: u32) -> Self {
        PacketSizeMix { entries: vec![(size, 1.0)] }
    }

    /// Mean packet size under the mix.
    pub fn mean(&self) -> f64 {
        let total: f64 = self.entries.iter().map(|(_, w)| w).sum();
        self.entries.iter().map(|(s, w)| *s as f64 * w).sum::<f64>() / total
    }
}

/// Full description of a synthetic trace.
///
/// Build one by hand or start from a preset in [`crate::scenarios`].
#[derive(Clone, Debug)]
pub struct TrafficModel {
    /// Trace duration.
    pub duration: TimeSpan,
    /// Number of distinct sources.
    pub sources: usize,
    /// Zipf exponent of the source rate distribution (≈1 for internet
    /// traffic).
    pub zipf_alpha: f64,
    /// Aggregate average packet rate across all sources (packets/s).
    pub total_pps: f64,
    /// Fraction of sources that are bursty rather than stable
    /// (`0.0..=1.0`). The *top* sources by rank are kept stable (true
    /// backbone heavies are persistent); burstiness is applied from the
    /// tail up.
    pub bursty_fraction: f64,
    /// Number of top-ranked sources forced stable regardless of
    /// `bursty_fraction`.
    pub stable_top: usize,
    /// Burst sojourn profile for bursty sources.
    pub burst_on: TimeSpan,
    /// Mean silence between bursts.
    pub burst_off: TimeSpan,
    /// Packet size mixture.
    pub sizes: PacketSizeMix,
    /// Number of /16 networks sources cluster into (gives the trace
    /// prefix-level structure; sampled Zipf with `net_alpha`).
    pub networks: usize,
    /// Offset applied to network numbering before address derivation.
    /// Two models with disjoint offset ranges occupy disjoint address
    /// space — how composed scenarios (DDoS bots, flash crowds) are
    /// kept distinguishable from the background population.
    pub network_offset: usize,
    /// Zipf exponent for network popularity.
    pub net_alpha: f64,
    /// Number of distinct destination hosts (dst is sampled Zipf per
    /// packet; destination structure only matters for 2-D analyses).
    pub destinations: usize,
    /// Mean packets per back-to-back packet train. `1.0` disables
    /// trains (pure Poisson). Real backbone traffic is train-
    /// structured at millisecond scale (TCP flights, interrupt
    /// coalescing); this is what makes window results sensitive to
    /// ms-level window-size changes (the paper's Fig. 3).
    pub train_mean: f64,
    /// Train length distribution shape: `None` for geometric (light
    /// tail), `Some(alpha)` for Pareto with that shape (heavy tail —
    /// occasional very long flights, the self-similar-ish behaviour of
    /// measured backbone traffic). The mean is `train_mean` either way.
    pub train_pareto_alpha: Option<f64>,
    /// Mean gap between packets inside a train.
    pub train_gap: TimeSpan,
}

impl TrafficModel {
    /// Sanity-check parameter combinations; called by the generator.
    pub fn validate(&self) {
        assert!(!self.duration.is_zero(), "duration must be non-zero");
        assert!(self.sources > 0, "need at least one source");
        assert!(self.total_pps > 0.0, "total packet rate must be positive");
        assert!(
            (0.0..=1.0).contains(&self.bursty_fraction),
            "bursty_fraction must be within 0..=1"
        );
        assert!(!self.burst_on.is_zero(), "burst ON mean must be non-zero");
        assert!(!self.burst_off.is_zero(), "burst OFF mean must be non-zero");
        assert!(self.networks > 0, "need at least one network");
        assert!(self.destinations > 0, "need at least one destination");
        assert!(!self.sizes.entries.is_empty(), "need at least one packet size");
        assert!(self.train_mean >= 1.0, "train_mean must be at least 1 packet");
        assert!(!self.train_gap.is_zero(), "train gap must be non-zero");
        if let Some(a) = self.train_pareto_alpha {
            assert!(a > 1.0, "Pareto train shape must exceed 1 for a finite mean, got {a}");
        }
    }

    /// Expected packet count (±burst noise) for capacity planning.
    pub fn expected_packets(&self) -> u64 {
        (self.total_pps * self.duration.as_secs_f64()) as u64
    }

    /// Expected byte volume.
    pub fn expected_bytes(&self) -> u64 {
        (self.total_pps * self.duration.as_secs_f64() * self.sizes.mean()) as u64
    }

    /// The burst profile assigned to a 0-based source rank.
    ///
    /// The top `stable_top` ranks are always stable (true backbone
    /// heavies are persistent); the next `bursty_fraction × sources`
    /// ranks are bursty. Assigning burstiness to the ranks *just below
    /// the top* is deliberate: those are the borderline sources whose
    /// bursts hover around detection thresholds — the population that
    /// produces hidden HHHs. The far tail is too weak to cross any
    /// threshold regardless of profile, so it stays stable.
    pub fn profile_for_rank(&self, rank: usize) -> BurstProfile {
        let bursty_count = (self.sources as f64 * self.bursty_fraction) as usize;
        if rank < self.stable_top {
            BurstProfile::Stable
        } else if rank < self.stable_top + bursty_count {
            BurstProfile::OnOff { on: self.burst_on, off: self.burst_off }
        } else {
            BurstProfile::Stable
        }
    }
}

impl Default for TrafficModel {
    /// A laptop-scale default: 60 s, 2 000 sources, 20 kpps.
    fn default() -> Self {
        TrafficModel {
            duration: TimeSpan::from_secs(60),
            sources: 2_000,
            zipf_alpha: 1.0,
            total_pps: 20_000.0,
            bursty_fraction: 0.5,
            stable_top: 5,
            burst_on: TimeSpan::from_secs(4),
            burst_off: TimeSpan::from_secs(12),
            sizes: PacketSizeMix::default(),
            networks: 64,
            network_offset: 0,
            net_alpha: 0.8,
            destinations: 1_000,
            train_mean: 8.0,
            train_pareto_alpha: None,
            train_gap: TimeSpan::from_micros(200),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle() {
        assert_eq!(BurstProfile::Stable.duty_cycle(), 1.0);
        let p = BurstProfile::OnOff { on: TimeSpan::from_secs(2), off: TimeSpan::from_secs(6) };
        assert!((p.duty_cycle() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn default_model_validates() {
        TrafficModel::default().validate();
    }

    #[test]
    fn expected_volumes() {
        let m = TrafficModel { sizes: PacketSizeMix::constant(1000), ..Default::default() };
        assert_eq!(m.expected_packets(), 1_200_000);
        assert_eq!(m.expected_bytes(), 1_200_000_000);
    }

    #[test]
    fn profile_assignment_keeps_top_stable_bursts_the_borderline() {
        let m = TrafficModel {
            sources: 100,
            bursty_fraction: 0.5,
            stable_top: 10,
            ..Default::default()
        };
        for rank in 0..10 {
            assert_eq!(m.profile_for_rank(rank), BurstProfile::Stable, "rank {rank}");
        }
        // Ranks just below the top are the borderline (hidden-HHH)
        // population: bursty.
        assert!(matches!(m.profile_for_rank(10), BurstProfile::OnOff { .. }));
        assert!(matches!(m.profile_for_rank(59), BurstProfile::OnOff { .. }));
        // The far tail is stable (too weak for profiles to matter).
        assert_eq!(m.profile_for_rank(60), BurstProfile::Stable);
        assert_eq!(m.profile_for_rank(99), BurstProfile::Stable);
    }

    #[test]
    fn all_stable_when_fraction_zero() {
        let m = TrafficModel { bursty_fraction: 0.0, ..Default::default() };
        for rank in [0, 10, 1999] {
            assert_eq!(m.profile_for_rank(rank), BurstProfile::Stable);
        }
    }

    #[test]
    fn size_mix_mean() {
        let mix = PacketSizeMix::default();
        let m = mix.mean();
        assert!(m > 600.0 && m < 800.0, "IMIX mean {m}");
        assert_eq!(PacketSizeMix::constant(100).mean(), 100.0);
    }

    #[test]
    #[should_panic(expected = "duration")]
    fn zero_duration_rejected() {
        let m = TrafficModel { duration: TimeSpan::ZERO, ..Default::default() };
        m.validate();
    }
}
