//! Distribution samplers built on `rand`.
//!
//! `rand` 0.8 ships only uniform sampling in its core; the heavy-tailed
//! distributions traffic modelling needs (exponential, Pareto, Zipf)
//! are implemented here by inverse-transform sampling so the workspace
//! does not pull in `rand_distr`.

use rand::Rng;

/// Exponential distribution with the given rate (events per unit).
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Panics unless `rate` is positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "exponential rate must be positive, got {rate}");
        Exponential { rate }
    }

    /// The mean `1/rate`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draw a sample via inverse transform: `−ln(U)/λ`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Guard against ln(0): gen() yields [0,1), flip to (0,1].
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }
}

/// Pareto distribution with scale `x_m` and shape `alpha`.
#[derive(Clone, Copy, Debug)]
pub struct Pareto {
    scale: f64,
    alpha: f64,
}

impl Pareto {
    /// Panics unless both parameters are positive and finite.
    pub fn new(scale: f64, alpha: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "Pareto scale must be positive");
        assert!(alpha.is_finite() && alpha > 0.0, "Pareto shape must be positive");
        Pareto { scale, alpha }
    }

    /// Draw a sample: `x_m · U^(−1/α)`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.gen::<f64>();
        self.scale * u.powf(-1.0 / self.alpha)
    }

    /// The mean, for `alpha > 1`.
    pub fn mean(&self) -> Option<f64> {
        (self.alpha > 1.0).then(|| self.alpha * self.scale / (self.alpha - 1.0))
    }
}

/// A precomputed Zipf(α) table over ranks `1..=n`: O(n) construction,
/// O(log n) sampling, plus direct access to the normalized weights
/// (used to assign deterministic per-source rates).
#[derive(Clone, Debug)]
pub struct ZipfTable {
    /// Cumulative normalized weights; last element is 1.0.
    cumulative: Vec<f64>,
    /// Normalized weight per rank (index 0 = rank 1).
    weights: Vec<f64>,
}

impl ZipfTable {
    /// Build a table for `n` ranks with exponent `alpha ≥ 0`.
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "ZipfTable needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be non-negative");
        let mut weights: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-alpha)).collect();
        let total: f64 = weights.iter().sum();
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &mut weights {
            *w /= total;
            acc += *w;
            cumulative.push(acc);
        }
        // Defend against float drift on the final boundary.
        *cumulative.last_mut().expect("non-empty") = 1.0;
        ZipfTable { cumulative, weights }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the table is empty (never: construction requires n>0).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The normalized weight of a 0-based rank.
    pub fn weight(&self, rank: usize) -> f64 {
        self.weights[rank]
    }

    /// Sample a 0-based rank.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u).min(self.len() - 1)
    }
}

/// Geometric distribution on `1, 2, 3, …` with the given mean (≥ 1),
/// via inverse transform. Used for packet-train lengths.
#[derive(Clone, Copy, Debug)]
pub struct Geometric {
    /// ln(1 − p), precomputed; `None` when mean == 1 (always 1).
    log_q: Option<f64>,
}

impl Geometric {
    /// Panics unless `mean ≥ 1`.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean >= 1.0, "geometric mean must be ≥ 1, got {mean}");
        if mean == 1.0 {
            Geometric { log_q: None }
        } else {
            let p = 1.0 / mean;
            Geometric { log_q: Some((1.0 - p).ln()) }
        }
    }

    /// Draw a sample in `1..`.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self.log_q {
            None => 1,
            Some(log_q) => {
                let u: f64 = 1.0 - rng.gen::<f64>();
                let k = (u.ln() / log_q).floor() as u32 + 1;
                k.clamp(1, 1 << 16)
            }
        }
    }
}

/// A small discrete mixture: values with probabilities, sampled by
/// linear scan (meant for ≤ a dozen entries, e.g. packet-size mixes).
#[derive(Clone, Debug)]
pub struct DiscreteMix<T: Copy> {
    entries: Vec<(T, f64)>,
}

impl<T: Copy> DiscreteMix<T> {
    /// Build from `(value, weight)` pairs; weights are normalized.
    /// Panics if empty or total weight is not positive.
    pub fn new(entries: &[(T, f64)]) -> Self {
        assert!(!entries.is_empty(), "mixture needs at least one entry");
        let total: f64 = entries.iter().map(|(_, w)| *w).sum();
        assert!(total > 0.0, "mixture weights must sum to something positive");
        DiscreteMix { entries: entries.iter().map(|(v, w)| (*v, *w / total)).collect() }
    }

    /// Draw a value.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        let mut u: f64 = rng.gen();
        for (v, w) in &self.entries {
            if u < *w {
                return *v;
            }
            u -= *w;
        }
        self.entries.last().expect("non-empty").0
    }

    /// The expected value under the mixture, for numeric payloads.
    pub fn mean(&self) -> f64
    where
        T: Into<f64>,
    {
        self.entries.iter().map(|(v, w)| (*v).into() * w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(12345)
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(4.0);
        let mut r = rng();
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut r)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean} far from 0.25");
        assert_eq!(d.mean(), 0.25);
    }

    #[test]
    fn pareto_samples_above_scale() {
        let d = Pareto::new(2.0, 1.5);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) >= 2.0);
        }
        let m = d.mean().unwrap();
        assert!((m - 6.0).abs() < 1e-9);
        assert!(Pareto::new(1.0, 0.5).mean().is_none());
    }

    #[test]
    fn zipf_weights_normalized_and_monotone() {
        let z = ZipfTable::new(100, 1.0);
        let total: f64 = (0..100).map(|r| z.weight(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for r in 1..100 {
            assert!(z.weight(r) <= z.weight(r - 1), "weights must decay");
        }
        // Rank 1 of Zipf(1.0) over 100 ≈ 1/H_100 ≈ 0.193.
        assert!((z.weight(0) - 0.1928).abs() < 0.001);
    }

    #[test]
    fn zipf_sampling_matches_weights() {
        let z = ZipfTable::new(10, 1.2);
        let mut r = rng();
        let mut counts = [0u32; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (rank, &cnt) in counts.iter().enumerate() {
            let observed = cnt as f64 / n as f64;
            let expected = z.weight(rank);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {rank}: observed {observed} expected {expected}"
            );
        }
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = ZipfTable::new(4, 0.0);
        for r in 0..4 {
            assert!((z.weight(r) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn geometric_mean_and_support() {
        let g = Geometric::new(8.0);
        let mut r = rng();
        let n = 200_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let k = g.sample(&mut r);
            assert!(k >= 1);
            sum += k as u64;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 8.0).abs() < 0.1, "geometric mean {mean}");
        // Degenerate case.
        let one = Geometric::new(1.0);
        for _ in 0..100 {
            assert_eq!(one.sample(&mut r), 1);
        }
    }

    #[test]
    #[should_panic(expected = "≥ 1")]
    fn geometric_below_one_rejected() {
        let _ = Geometric::new(0.5);
    }

    #[test]
    fn discrete_mix_normalizes_and_samples() {
        let m = DiscreteMix::new(&[(64u32, 3.0), (1500u32, 1.0)]);
        assert!((m.mean() - (64.0 * 0.75 + 1500.0 * 0.25)).abs() < 1e-9);
        let mut r = rng();
        let hits = (0..100_000).filter(|_| m.sample(&mut r) == 64).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.75).abs() < 0.01, "64-byte fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_mix_rejected() {
        let _ = DiscreteMix::<u32>::new(&[]);
    }

    #[test]
    fn determinism_across_identical_rngs() {
        let z = ZipfTable::new(50, 0.9);
        let a: Vec<usize> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<usize> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..100).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
