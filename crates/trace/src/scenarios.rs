//! Scenario presets: the workloads the experiments run on.
//!
//! The paper's data set is "1 hour long traces taken from four different
//! days" of a Tier-1 ISP link. [`day_trace`] provides four *different*
//! parameterizations (different seeds, burstiness and skew), standing in
//! for the day-to-day variation the paper averaged over. The additional
//! scenarios exercise the motivating use cases from the paper's
//! introduction: accounting ([`stable`]), DDoS detection ([`ddos`]) and
//! traffic engineering under load shifts ([`flash_crowd`]).
//!
//! All presets take an explicit duration so the same scenario scales
//! from CI-sized smoke tests to full experiment runs.

use crate::gen::{merge_streams, shift_stream, TraceGenerator};
use crate::model::{PacketSizeMix, TrafficModel};
use hhh_nettypes::{PacketRecord, TimeSpan};

/// Base seed per "day"; combined with the caller's seed material so the
/// four days stay distinct but reproducible.
const DAY_SEEDS: [u64; 4] = [0x0DA1, 0x0DA2, 0x0DA3, 0x0DA4];

/// One of the four "days" of ISP-like traffic (`day` in `0..4`).
///
/// Days differ in Zipf skew, burst time scales and the bursty fraction
/// — the kind of variation that makes the paper's Fig. 2 a band rather
/// than a single number.
pub fn day_trace(day: usize, duration: TimeSpan) -> TrafficModel {
    assert!(day < 4, "the paper has four days (0..4), got {day}");
    let (alpha, bursty, on_s, off_s, train) = match day {
        0 => (1.00, 0.55, 2.5, 14.0, 10.0),
        1 => (0.95, 0.65, 2.0, 11.0, 14.0),
        2 => (1.05, 0.45, 3.5, 18.0, 6.0),
        _ => (0.90, 0.70, 1.5, 12.0, 20.0),
    };
    TrafficModel {
        duration,
        sources: 2_500,
        zipf_alpha: alpha,
        total_pps: 25_000.0,
        bursty_fraction: bursty,
        stable_top: 4,
        burst_on: TimeSpan::from_secs_f64(on_s),
        burst_off: TimeSpan::from_secs_f64(off_s),
        sizes: PacketSizeMix::default(),
        networks: 80,
        network_offset: 0,
        net_alpha: 0.8,
        destinations: 1_500,
        train_mean: train,
        train_pareto_alpha: Some(1.35),
        train_gap: TimeSpan::from_micros(150),
    }
}

/// The seed to use with a given day so experiments stay reproducible.
pub fn day_seed(day: usize) -> u64 {
    DAY_SEEDS[day % 4]
}

/// Steady, low-burstiness traffic: the control scenario where disjoint
/// and sliding windows should mostly agree.
pub fn stable(duration: TimeSpan) -> TrafficModel {
    TrafficModel {
        duration,
        sources: 1_500,
        zipf_alpha: 1.0,
        total_pps: 20_000.0,
        bursty_fraction: 0.05,
        stable_top: 20,
        burst_on: TimeSpan::from_secs(30),
        burst_off: TimeSpan::from_secs(30),
        ..TrafficModel::default()
    }
}

/// Background traffic plus a pulsed DDoS: bots live in one /16, each
/// individually modest, so the attack is *only* visible as a
/// hierarchical aggregate — the paper's DDoS-detection motivation.
///
/// Returns the merged packet stream (background + attack pulse centred
/// at 40–70% of the trace).
pub fn ddos(duration: TimeSpan, seed: u64) -> impl Iterator<Item = PacketRecord> {
    let background = TraceGenerator::new(
        TrafficModel { duration, sources: 2_000, total_pps: 20_000.0, ..TrafficModel::default() },
        seed,
    );
    let pulse_len = duration * 3 / 10;
    let attack = TrafficModel {
        duration: pulse_len,
        sources: 400,
        // Flat rate across bots: no single bot is a heavy hitter.
        zipf_alpha: 0.1,
        total_pps: 12_000.0,
        bursty_fraction: 0.0,
        stable_top: 0,
        // Bots all in one /16, placed outside the background's
        // address space (offset 37 → network 77.2.0.0/16).
        networks: 1,
        network_offset: 37 + 40 * 2,
        net_alpha: 1.0,
        sizes: PacketSizeMix::constant(120), // small attack packets
        destinations: 1,                     // one victim
        ..TrafficModel::default()
    };
    let attack_stream = TraceGenerator::new(attack, seed ^ 0xDD05);
    merge_streams(background, shift_stream(attack_stream, duration * 4 / 10))
}

/// A flash crowd: baseline traffic, then mid-trace a new set of sources
/// ramps in (users flocking to one service), shifting the heavy-hitter
/// population — the traffic-engineering motivation.
pub fn flash_crowd(duration: TimeSpan, seed: u64) -> impl Iterator<Item = PacketRecord> {
    let baseline = TraceGenerator::new(
        TrafficModel { duration, sources: 2_000, total_pps: 18_000.0, ..TrafficModel::default() },
        seed,
    );
    let crowd = TrafficModel {
        duration: duration / 2,
        sources: 800,
        zipf_alpha: 0.7,
        total_pps: 10_000.0,
        bursty_fraction: 0.8,
        stable_top: 2,
        burst_on: TimeSpan::from_secs(3),
        burst_off: TimeSpan::from_secs(5),
        networks: 12,
        network_offset: 40 * 3, // crowd arrives from fresh networks
        destinations: 4,
        ..TrafficModel::default()
    };
    let crowd_stream = TraceGenerator::new(crowd, seed ^ 0xF1A5);
    merge_streams(baseline, shift_stream(crowd_stream, duration / 2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_nettypes::Nanos;
    use std::collections::HashMap;

    #[test]
    fn four_days_are_distinct_models() {
        let d = TimeSpan::from_secs(10);
        let models: Vec<_> = (0..4).map(|i| day_trace(i, d)).collect();
        for i in 0..4 {
            for j in i + 1..4 {
                assert!(
                    models[i].zipf_alpha != models[j].zipf_alpha
                        || models[i].bursty_fraction != models[j].bursty_fraction,
                    "days {i} and {j} identical"
                );
            }
        }
        assert_ne!(day_seed(0), day_seed(1));
    }

    #[test]
    #[should_panic(expected = "four days")]
    fn day_out_of_range_panics() {
        let _ = day_trace(4, TimeSpan::from_secs(1));
    }

    #[test]
    fn ddos_pulse_creates_prefix_aggregate() {
        let dur = TimeSpan::from_secs(20);
        let mut by_net: HashMap<u32, u64> = HashMap::new();
        let mut pulse_packets = 0u64;
        let mut total = 0u64;
        let pulse_start = Nanos::ZERO + dur * 4 / 10;
        let pulse_end = pulse_start + dur * 3 / 10;
        for p in ddos(dur, 42) {
            *by_net.entry(p.src >> 16).or_default() += 1;
            total += 1;
            if p.ts >= pulse_start && p.ts < pulse_end {
                pulse_packets += 1;
            }
        }
        // The attack /16 should be the single biggest network by packets.
        let top_net_pkts = by_net.values().max().copied().unwrap();
        assert!(
            top_net_pkts as f64 > total as f64 * 0.10,
            "attack network carries {top_net_pkts}/{total}"
        );
        // And the pulse region is denser than the average.
        let pulse_rate = pulse_packets as f64 / (dur.as_secs_f64() * 0.3);
        let avg_rate = total as f64 / dur.as_secs_f64();
        assert!(pulse_rate > avg_rate * 1.2, "pulse {pulse_rate} vs avg {avg_rate}");
    }

    #[test]
    fn flash_crowd_second_half_heavier() {
        let dur = TimeSpan::from_secs(20);
        let half = Nanos::ZERO + dur / 2;
        let (mut first, mut second) = (0u64, 0u64);
        for p in flash_crowd(dur, 7) {
            if p.ts < half {
                first += 1;
            } else {
                second += 1;
            }
        }
        assert!(
            second as f64 > first as f64 * 1.2,
            "crowd missing: first half {first}, second half {second}"
        );
    }

    #[test]
    fn scenario_streams_are_sorted() {
        let dur = TimeSpan::from_secs(6);
        let mut last = Nanos::ZERO;
        for p in ddos(dur, 1) {
            assert!(p.ts >= last);
            last = p.ts;
        }
        let mut last = Nanos::ZERO;
        for p in flash_crowd(dur, 1) {
            assert!(p.ts >= last);
            last = p.ts;
        }
    }
}
