//! # hhh-trace
//!
//! Synthetic traffic generation: the workspace's stand-in for the CAIDA
//! equinix-chicago traces the paper analysed (proprietary; see
//! DESIGN.md §2 for the substitution argument).
//!
//! The generator reproduces the traffic *properties* the paper's
//! experiments actually measure:
//!
//! * **Heavy-tailed source popularity** — source rates follow a Zipf
//!   rank distribution, so a handful of sources carry a large share of
//!   bytes (what makes HHH detection meaningful at 1–10% thresholds).
//! * **Prefix structure** — sources are clustered into networks, so
//!   aggregates exist at /24, /16 and /8 levels, not just at hosts.
//! * **Burstiness at window time scales** — sources alternate ON/OFF
//!   with sojourn times comparable to the paper's 5–20 s windows. A
//!   burst that straddles a disjoint-window boundary gets diluted below
//!   threshold in *both* adjacent windows while a sliding window sees it
//!   whole: this is precisely the mechanism behind "hidden HHHs", and
//!   the [`TrafficModel`] knobs (`burst_on`, `burst_off`,
//!   `bursty_fraction`) control how much of it the trace contains.
//! * **Heterogeneous packet sizes** — an IMIX-style mixture, since the
//!   paper thresholds on *bytes*, not packets.
//!
//! Everything is deterministic given a seed: generation is
//! reproducible, which the experiment harness and the tests rely on.
//!
//! ```
//! use hhh_trace::{scenarios, TraceGenerator};
//! use hhh_nettypes::TimeSpan;
//!
//! let model = scenarios::day_trace(0, TimeSpan::from_secs(10));
//! let packets: Vec<_> = TraceGenerator::new(model, 42).collect();
//! assert!(!packets.is_empty());
//! // Timestamps are sorted: a generator is a valid trace stream.
//! assert!(packets.windows(2).all(|w| w[0].ts <= w[1].ts));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod io;
mod model;
mod rng;
pub mod scenarios;
mod stats;

pub use gen::{merge_streams, shift_stream, MergeStreams, TraceGenerator};
pub use io::{load_native, load_pcap, save_native, save_pcap};
pub use model::{BurstProfile, PacketSizeMix, TrafficModel};
pub use rng::{DiscreteMix, Exponential, Geometric, Pareto, ZipfTable};
pub use stats::TraceStats;
