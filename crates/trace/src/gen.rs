//! The event-driven trace generator.
//!
//! Sources are independent (Markov-)modulated Poisson processes: a
//! stable source is plain Poisson at its average rate; a bursty source
//! alternates exponential ON/OFF phases and sends Poisson at
//! `rate / duty_cycle` while ON, so its *long-run* average still equals
//! its Zipf share. All sources are merged on a binary heap of
//! next-packet times — O(log n) per packet, no trace buffering.

use crate::model::{BurstProfile, TrafficModel};
use crate::rng::{DiscreteMix, Exponential, Geometric, Pareto, ZipfTable};
use hhh_nettypes::{Nanos, PacketRecord, Proto, TimeSpan};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

#[derive(Clone, Debug)]
struct SourceState {
    addr: u32,
    /// Poisson *train* arrival rate while sending (trains/sec).
    train_rate: f64,
    profile: BurstProfile,
    on: bool,
    /// When the current ON/OFF phase ends (`Nanos::MAX` for stable).
    phase_end: Nanos,
    /// Packets remaining in the current back-to-back train.
    train_left: u32,
}

/// A deterministic, streaming synthetic trace.
///
/// Implements `Iterator<Item = PacketRecord>`; packets come out in
/// non-decreasing timestamp order and stop at the model's duration.
pub struct TraceGenerator {
    rng: SmallRng,
    sources: Vec<SourceState>,
    /// Earliest next packet per source.
    heap: BinaryHeap<Reverse<(Nanos, usize)>>,
    dst_table: ZipfTable,
    dst_addrs: Vec<u32>,
    size_mix: DiscreteMix<u32>,
    dport_mix: DiscreteMix<u16>,
    train_len: TrainLength,
    train_gap: TimeSpan,
    horizon: Nanos,
    emitted: u64,
}

impl TraceGenerator {
    /// Build a generator for a model with a seed. Identical
    /// `(model, seed)` pairs produce identical traces.
    pub fn new(model: TrafficModel, seed: u64) -> Self {
        model.validate();
        let mut rng = SmallRng::seed_from_u64(seed);

        // Per-source average rates from the Zipf table.
        let zipf = ZipfTable::new(model.sources, model.zipf_alpha);

        // Cluster sources into /16 networks (Zipf-popular), themselves
        // grouped into up to 40 /8s, giving aggregates at every level
        // of the byte hierarchy.
        let nets = ZipfTable::new(model.networks, model.net_alpha);
        let mut used = HashSet::with_capacity(model.sources);
        let mut sources = Vec::with_capacity(model.sources);
        for rank in 0..model.sources {
            let net = nets.sample(&mut rng) + model.network_offset;
            let oct1 = 1 + (net % 40) as u32;
            let oct2 = (net / 40) as u32;
            let addr = loop {
                let host: u32 = rng.gen_range(0..=0xFFFF);
                let a = (oct1 << 24) | (oct2 << 16) | host;
                if used.insert(a) {
                    break a;
                }
            };
            // Per-source heterogeneity: jitter the ON/OFF means so the
            // bursty population spans a range of duty cycles (duty
            // ~0.08..0.6 around the model's nominal). Without this,
            // every bursty source amplifies by the same factor while
            // ON and only one narrow rank band is ever borderline for
            // a given threshold; with it, hidden-HHH candidates exist
            // at 1%, 5% and 10% alike — matching the paper's Fig. 2
            // being populated at all three thresholds.
            let profile = match model.profile_for_rank(rank) {
                BurstProfile::Stable => BurstProfile::Stable,
                BurstProfile::OnOff { on, off } => {
                    let ju: f64 = rng.gen_range(0.5..2.0);
                    let jd: f64 = rng.gen_range(0.5..6.0);
                    BurstProfile::OnOff {
                        on: TimeSpan::from_secs_f64(on.as_secs_f64() * ju),
                        off: TimeSpan::from_secs_f64(off.as_secs_f64() * jd),
                    }
                }
            };
            let avg_rate = model.total_pps * zipf.weight(rank);
            let on_rate = avg_rate / profile.duty_cycle();
            sources.push(SourceState {
                addr,
                train_rate: on_rate / model.train_mean,
                profile,
                on: true,
                phase_end: Nanos::MAX,
                train_left: 0,
            });
        }

        // Start each bursty source in its stationary phase distribution
        // (exponential sojourns are memoryless, so "fresh phase of the
        // right type with probability = stationary share" is exact).
        for s in &mut sources {
            if let BurstProfile::OnOff { on, off } = s.profile {
                let duty = s.profile.duty_cycle();
                s.on = rng.gen::<f64>() < duty;
                let mean = if s.on { on } else { off };
                let d = Exponential::new(1.0 / mean.as_secs_f64()).sample(&mut rng);
                s.phase_end = Nanos::ZERO + TimeSpan::from_secs_f64(d);
            }
        }

        let dst_table = ZipfTable::new(model.destinations, 1.0);
        let dst_addrs = (0..model.destinations)
            .map(|i| 0x0800_0000 | (scatter64(i as u64) as u32 & 0x00FF_FFFF))
            .collect();

        let size_mix = DiscreteMix::new(&model.sizes.entries);
        let dport_mix = DiscreteMix::new(&[
            (443u16, 0.45),
            (80u16, 0.25),
            (53u16, 0.10),
            (123u16, 0.05),
            (8080u16, 0.15),
        ]);

        let horizon = Nanos::ZERO + model.duration;
        let mut gen = TraceGenerator {
            rng,
            sources,
            heap: BinaryHeap::new(),
            dst_table,
            dst_addrs,
            size_mix,
            dport_mix,
            train_len: match model.train_pareto_alpha {
                None => TrainLength::Geometric(Geometric::new(model.train_mean)),
                Some(alpha) => {
                    // Scale chosen so the Pareto mean equals train_mean.
                    let scale = model.train_mean * (alpha - 1.0) / alpha;
                    TrainLength::Pareto(Pareto::new(scale.max(1.0), alpha))
                }
            },
            train_gap: model.train_gap,
            horizon,
            emitted: 0,
        };

        for idx in 0..gen.sources.len() {
            if let Some(t) = gen.next_packet_time(idx, Nanos::ZERO) {
                gen.heap.push(Reverse((t, idx)));
            }
        }
        gen
    }

    /// Packets produced so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Advance a source's renewal process from `from` and return its
    /// next packet time, or `None` if it falls past the horizon.
    ///
    /// Packets come in back-to-back *trains*: train arrivals are
    /// Poisson at `train_rate` while the source is ON, and each train
    /// carries a geometric number of packets `train_gap` apart. Trains
    /// are truncated by phase boundaries.
    fn next_packet_time(&mut self, idx: usize, from: Nanos) -> Option<Nanos> {
        let mut t = from;
        // Mid-train: the next packet follows at the intra-train gap.
        if self.sources[idx].train_left > 0 {
            let gap = Exponential::new(1.0 / self.train_gap.as_secs_f64()).sample(&mut self.rng);
            let tp = t + TimeSpan::from_secs_f64(gap);
            let s = &mut self.sources[idx];
            if tp < s.phase_end {
                s.train_left -= 1;
                return (tp < self.horizon).then_some(tp);
            }
            s.train_left = 0; // train truncated by the phase boundary
        }
        // Bounded iterations as a defence against degenerate parameter
        // combinations; each loop crosses at least one phase boundary.
        for _ in 0..100_000 {
            let (on, phase_end, train_rate, profile) = {
                let s = &self.sources[idx];
                (s.on, s.phase_end, s.train_rate, s.profile)
            };
            if t >= self.horizon {
                return None;
            }
            if on {
                let gap = Exponential::new(train_rate.max(1e-12)).sample(&mut self.rng);
                let tp = t + TimeSpan::from_secs_f64(gap);
                if tp < phase_end {
                    // A new train starts here.
                    let len = self.train_len.sample(&mut self.rng);
                    self.sources[idx].train_left = len - 1;
                    return (tp < self.horizon).then_some(tp);
                }
                // Crossed into OFF; memorylessness lets us resample there.
                match profile {
                    BurstProfile::Stable => {
                        let len = self.train_len.sample(&mut self.rng);
                        self.sources[idx].train_left = len - 1;
                        return (tp < self.horizon).then_some(tp);
                    }
                    BurstProfile::OnOff { off, .. } => {
                        t = phase_end;
                        let d = Exponential::new(1.0 / off.as_secs_f64()).sample(&mut self.rng);
                        let s = &mut self.sources[idx];
                        s.on = false;
                        s.phase_end = t + TimeSpan::from_secs_f64(d);
                    }
                }
            } else {
                // Skip the rest of the OFF phase.
                t = phase_end;
                match profile {
                    BurstProfile::Stable => unreachable!("stable sources never turn off"),
                    BurstProfile::OnOff { on, .. } => {
                        let d = Exponential::new(1.0 / on.as_secs_f64()).sample(&mut self.rng);
                        let s = &mut self.sources[idx];
                        s.on = true;
                        s.phase_end = t + TimeSpan::from_secs_f64(d);
                    }
                }
            }
        }
        None
    }
}

/// Train-length sampler: light- or heavy-tailed.
#[derive(Clone, Copy, Debug)]
enum TrainLength {
    Geometric(Geometric),
    Pareto(Pareto),
}

impl TrainLength {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            TrainLength::Geometric(g) => g.sample(rng),
            TrainLength::Pareto(p) => (p.sample(rng).round() as u32).clamp(1, 1 << 16),
        }
    }
}

// A local copy of the SplitMix64 finalizer to scatter destination
// addresses without dragging in a dependency edge on hhh-sketches.
fn scatter64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Iterator for TraceGenerator {
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        let Reverse((ts, idx)) = self.heap.pop()?;
        // Schedule this source's following packet.
        if let Some(tn) = self.next_packet_time(idx, ts) {
            self.heap.push(Reverse((tn, idx)));
        }

        let src = self.sources[idx].addr;
        let dst = self.dst_addrs[self.dst_table.sample(&mut self.rng)];
        let size = self.size_mix.sample(&mut self.rng);
        let (proto, sport, dport) = if self.rng.gen::<f64>() < 0.7 {
            (Proto::Tcp, self.rng.gen_range(1024..=65535), self.dport_mix.sample(&mut self.rng))
        } else {
            (Proto::Udp, self.rng.gen_range(1024..=65535), self.dport_mix.sample(&mut self.rng))
        };
        self.emitted += 1;
        Some(PacketRecord::with_transport(ts, src, dst, size, proto, sport, dport))
    }
}

/// Shift every packet of a stream later by `offset` (composition
/// primitive for scenario building: generate an attack burst as its own
/// short trace, then place it anywhere on the timeline).
pub fn shift_stream<I>(stream: I, offset: TimeSpan) -> impl Iterator<Item = PacketRecord>
where
    I: Iterator<Item = PacketRecord>,
{
    stream.map(move |mut p| {
        p.ts += offset;
        p
    })
}

/// Merge two timestamp-sorted streams into one sorted stream.
pub fn merge_streams<A, B>(a: A, b: B) -> MergeStreams<A, B>
where
    A: Iterator<Item = PacketRecord>,
    B: Iterator<Item = PacketRecord>,
{
    MergeStreams { a: a.peekable(), b: b.peekable() }
}

/// Iterator returned by [`merge_streams`].
pub struct MergeStreams<A: Iterator<Item = PacketRecord>, B: Iterator<Item = PacketRecord>> {
    a: core::iter::Peekable<A>,
    b: core::iter::Peekable<B>,
}

impl<A, B> Iterator for MergeStreams<A, B>
where
    A: Iterator<Item = PacketRecord>,
    B: Iterator<Item = PacketRecord>,
{
    type Item = PacketRecord;

    fn next(&mut self) -> Option<PacketRecord> {
        match (self.a.peek(), self.b.peek()) {
            (Some(x), Some(y)) => {
                if x.ts <= y.ts {
                    self.a.next()
                } else {
                    self.b.next()
                }
            }
            (Some(_), None) => self.a.next(),
            (None, _) => self.b.next(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::PacketSizeMix;
    use std::collections::HashMap;

    fn small_model() -> TrafficModel {
        TrafficModel {
            duration: TimeSpan::from_secs(20),
            sources: 200,
            total_pps: 2_000.0,
            ..TrafficModel::default()
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a: Vec<_> = TraceGenerator::new(small_model(), 7).collect();
        let b: Vec<_> = TraceGenerator::new(small_model(), 7).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TraceGenerator::new(small_model(), 8).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_sorted_and_within_duration() {
        let pkts: Vec<_> = TraceGenerator::new(small_model(), 1).collect();
        assert!(!pkts.is_empty());
        assert!(pkts.windows(2).all(|w| w[0].ts <= w[1].ts), "unsorted");
        assert!(pkts.iter().all(|p| p.ts < Nanos::from_secs(20)));
    }

    #[test]
    fn volume_close_to_expectation() {
        let model = small_model();
        let expect = model.expected_packets();
        let got = TraceGenerator::new(model, 3).count() as u64;
        let rel = (got as f64 - expect as f64).abs() / expect as f64;
        assert!(rel < 0.15, "packet count {got} vs expected {expect} (rel {rel})");
    }

    #[test]
    fn top_source_carries_zipf_share() {
        let mut model = small_model();
        model.bursty_fraction = 0.0; // keep it clean
        model.sizes = PacketSizeMix::constant(100);
        let mut counts: HashMap<u32, u64> = HashMap::new();
        let mut total = 0u64;
        for p in TraceGenerator::new(model.clone(), 5) {
            *counts.entry(p.src).or_default() += 1;
            total += 1;
        }
        let zipf = ZipfTable::new(model.sources, model.zipf_alpha);
        let top = counts.values().max().copied().unwrap();
        let observed = top as f64 / total as f64;
        let expected = zipf.weight(0);
        assert!(
            (observed - expected).abs() / expected < 0.25,
            "top source share {observed} vs zipf weight {expected}"
        );
    }

    #[test]
    fn bursty_sources_produce_gaps() {
        // One entirely bursty model; check that some source exhibits a
        // silence longer than twice the ON mean, which a Poisson
        // process of its average rate would essentially never do.
        let model = TrafficModel {
            duration: TimeSpan::from_secs(60),
            sources: 20,
            total_pps: 500.0,
            bursty_fraction: 1.0,
            stable_top: 0,
            burst_on: TimeSpan::from_secs(2),
            burst_off: TimeSpan::from_secs(10),
            ..TrafficModel::default()
        };
        let mut last_seen: HashMap<u32, Nanos> = HashMap::new();
        let mut max_gap: HashMap<u32, TimeSpan> = HashMap::new();
        let mut counts: HashMap<u32, u64> = HashMap::new();
        for p in TraceGenerator::new(model, 9) {
            if let Some(prev) = last_seen.insert(p.src, p.ts) {
                let gap = p.ts - prev;
                let e = max_gap.entry(p.src).or_insert(TimeSpan::ZERO);
                if gap > *e {
                    *e = gap;
                }
            }
            *counts.entry(p.src).or_default() += 1;
        }
        // Consider only sources that sent enough to have been observed
        // reliably (the heavy ones).
        let qualifying = counts.iter().filter(|(_, &c)| c > 500).count();
        assert!(qualifying >= 2, "test needs some busy sources");
        let bursty_evidence = counts
            .iter()
            .filter(|(src, &c)| {
                c > 500 && max_gap.get(src).is_some_and(|g| *g > TimeSpan::from_secs(4))
            })
            .count();
        assert!(bursty_evidence >= 1, "no busy source showed an OFF gap; burst machinery inert?");
    }

    #[test]
    fn sources_cluster_into_networks() {
        let model = small_model();
        let nets: std::collections::HashSet<u32> =
            TraceGenerator::new(model, 11).map(|p| p.src >> 16).collect();
        // 200 sources over 64 Zipf-weighted networks: well fewer
        // distinct /16s than sources.
        assert!(nets.len() <= 64, "{} networks", nets.len());
        assert!(nets.len() >= 8, "{} networks suspiciously few", nets.len());
    }

    #[test]
    fn shift_and_merge_compose() {
        let base: Vec<_> = TraceGenerator::new(small_model(), 13).take(100).collect();
        let attack: Vec<_> = TraceGenerator::new(small_model(), 14).take(100).collect();
        let shifted: Vec<_> =
            shift_stream(attack.iter().copied(), TimeSpan::from_secs(5)).collect();
        assert!(shifted.iter().all(|p| p.ts >= Nanos::from_secs(5)));
        let merged: Vec<_> = merge_streams(base.iter().copied(), shifted.iter().copied()).collect();
        assert_eq!(merged.len(), 200);
        assert!(merged.windows(2).all(|w| w[0].ts <= w[1].ts), "merge not sorted");
    }

    #[test]
    fn emitted_counter_matches() {
        let mut g = TraceGenerator::new(small_model(), 2);
        let mut n = 0;
        while g.next().is_some() {
            n += 1;
        }
        assert_eq!(g.emitted(), n);
    }
}
