//! Trace persistence: save/load generated traffic in the native format
//! (fast, dense) or classic pcap (interoperable with standard tools).

use hhh_nettypes::PacketRecord;
use hhh_pcap::{NativeReader, NativeWriter, PcapError, PcapReader, PcapWriter};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::Path;

/// Write a packet stream to a native `.hhht` trace file.
pub fn save_native<I>(path: &Path, stream: I) -> Result<u64, PcapError>
where
    I: Iterator<Item = PacketRecord>,
{
    let file = File::create(path)?;
    let mut w = NativeWriter::new(BufWriter::new(file))?;
    for p in stream {
        w.write_record(&p)?;
    }
    let n = w.written();
    w.into_inner()?;
    Ok(n)
}

/// Load every record from a native trace file.
pub fn load_native(path: &Path) -> Result<Vec<PacketRecord>, PcapError> {
    let file = File::open(path)?;
    NativeReader::new(BufReader::new(file))?.read_all_records()
}

/// Write a packet stream as a classic pcap file (nanosecond, Ethernet).
pub fn save_pcap<I>(path: &Path, stream: I) -> Result<u64, PcapError>
where
    I: Iterator<Item = PacketRecord>,
{
    let file = File::create(path)?;
    let mut w = PcapWriter::new(BufWriter::new(file))?;
    for p in stream {
        w.write_record(&p)?;
    }
    let n = w.frames_written();
    w.into_inner()?;
    Ok(n)
}

/// Load every IPv4 record from a pcap file.
pub fn load_pcap(path: &Path) -> Result<Vec<PacketRecord>, PcapError> {
    let file = File::open(path)?;
    PcapReader::new(BufReader::new(file))?.read_all_records()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::model::TrafficModel;
    use hhh_nettypes::TimeSpan;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hhh-trace-io-{}-{name}", std::process::id()));
        p
    }

    fn small_trace() -> Vec<PacketRecord> {
        let model = TrafficModel {
            duration: TimeSpan::from_secs(2),
            sources: 50,
            total_pps: 1_000.0,
            ..TrafficModel::default()
        };
        TraceGenerator::new(model, 77).collect()
    }

    #[test]
    fn native_roundtrip() {
        let trace = small_trace();
        let path = tmp("native.hhht");
        let n = save_native(&path, trace.iter().copied()).unwrap();
        assert_eq!(n as usize, trace.len());
        let back = load_native(&path).unwrap();
        assert_eq!(back, trace);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn pcap_roundtrip_preserves_analysis_fields() {
        let trace = small_trace();
        let path = tmp("trace.pcap");
        save_pcap(&path, trace.iter().copied()).unwrap();
        let back = load_pcap(&path).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(&back) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.src, b.src);
            assert_eq!(a.dst, b.dst);
            // wire_len can only grow to fit headers for tiny packets.
            assert!(b.wire_len >= a.wire_len.min(42));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load_native(Path::new("/nonexistent/definitely/missing.hhht")).is_err());
    }
}
