//! Trace summary statistics: what `tcpdump -r trace | awk …` would tell
//! you, as a struct. Used to sanity-check generated workloads and to
//! print workload tables in the experiment output.

use hhh_nettypes::{Nanos, PacketRecord, TimeSpan};
use std::collections::HashMap;

/// Aggregate statistics over a packet stream.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStats {
    /// Packets seen.
    pub packets: u64,
    /// Bytes seen.
    pub bytes: u64,
    /// First packet timestamp.
    pub first_ts: Nanos,
    /// Last packet timestamp.
    pub last_ts: Nanos,
    /// Distinct source addresses.
    pub distinct_sources: usize,
    /// Distinct destination addresses.
    pub distinct_destinations: usize,
    /// The top sources by byte volume, descending `(addr, bytes)`.
    pub top_sources: Vec<(u32, u64)>,
}

impl TraceStats {
    /// Number of top sources retained.
    pub const TOP_K: usize = 10;

    /// Compute statistics from a packet stream. Returns `None` for an
    /// empty stream (no timestamps to report).
    pub fn from_stream<I: Iterator<Item = PacketRecord>>(stream: I) -> Option<Self> {
        let mut packets = 0u64;
        let mut bytes = 0u64;
        let mut first_ts = None;
        let mut last_ts = Nanos::ZERO;
        let mut per_src: HashMap<u32, u64> = HashMap::new();
        let mut dsts: std::collections::HashSet<u32> = Default::default();
        for p in stream {
            packets += 1;
            bytes += p.wire_len as u64;
            first_ts.get_or_insert(p.ts);
            last_ts = last_ts.max(p.ts);
            *per_src.entry(p.src).or_default() += p.wire_len as u64;
            dsts.insert(p.dst);
        }
        let first_ts = first_ts?;
        let mut top: Vec<(u32, u64)> = per_src.iter().map(|(a, b)| (*a, *b)).collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(Self::TOP_K);
        Some(TraceStats {
            packets,
            bytes,
            first_ts,
            last_ts,
            distinct_sources: per_src.len(),
            distinct_destinations: dsts.len(),
            top_sources: top,
        })
    }

    /// Observed duration (last − first timestamp).
    pub fn duration(&self) -> TimeSpan {
        self.last_ts - self.first_ts
    }

    /// Mean packet rate over the observed duration.
    pub fn mean_pps(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d == 0.0 {
            self.packets as f64
        } else {
            self.packets as f64 / d
        }
    }

    /// Mean throughput in bits per second.
    pub fn mean_bps(&self) -> f64 {
        let d = self.duration().as_secs_f64();
        if d == 0.0 {
            self.bytes as f64 * 8.0
        } else {
            self.bytes as f64 * 8.0 / d
        }
    }

    /// Mean packet size in bytes.
    pub fn mean_packet_size(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.bytes as f64 / self.packets as f64
        }
    }

    /// Byte share of the single largest source.
    pub fn top_source_share(&self) -> f64 {
        match self.top_sources.first() {
            Some((_, b)) if self.bytes > 0 => *b as f64 / self.bytes as f64,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceGenerator;
    use crate::model::{PacketSizeMix, TrafficModel};

    #[test]
    fn empty_stream_is_none() {
        assert!(TraceStats::from_stream(std::iter::empty()).is_none());
    }

    #[test]
    fn counts_are_exact_on_known_stream() {
        let pkts = vec![
            PacketRecord::new(Nanos::from_secs(1), 10, 100, 500),
            PacketRecord::new(Nanos::from_secs(2), 10, 101, 300),
            PacketRecord::new(Nanos::from_secs(3), 11, 100, 200),
        ];
        let s = TraceStats::from_stream(pkts.into_iter()).unwrap();
        assert_eq!(s.packets, 3);
        assert_eq!(s.bytes, 1000);
        assert_eq!(s.distinct_sources, 2);
        assert_eq!(s.distinct_destinations, 2);
        assert_eq!(s.duration(), TimeSpan::from_secs(2));
        assert_eq!(s.top_sources[0], (10, 800));
        assert_eq!(s.top_sources[1], (11, 200));
        assert!((s.top_source_share() - 0.8).abs() < 1e-12);
        assert!((s.mean_packet_size() - 1000.0 / 3.0).abs() < 1e-9);
        assert!((s.mean_pps() - 1.5).abs() < 1e-9);
        assert!((s.mean_bps() - 4000.0).abs() < 1e-9);
    }

    #[test]
    fn generated_trace_statistics_are_plausible() {
        let model = TrafficModel {
            duration: TimeSpan::from_secs(10),
            sources: 300,
            total_pps: 5_000.0,
            sizes: PacketSizeMix::default(),
            ..TrafficModel::default()
        };
        let s = TraceStats::from_stream(TraceGenerator::new(model, 3)).unwrap();
        assert!(s.packets > 30_000 && s.packets < 70_000, "{} packets", s.packets);
        assert!(s.distinct_sources <= 300);
        assert!(s.distinct_sources > 100, "{} sources", s.distinct_sources);
        assert!(s.mean_packet_size() > 400.0 && s.mean_packet_size() < 1000.0);
        // Zipf: the top source should be clearly above 1/300 share.
        assert!(s.top_source_share() > 0.02, "top share {}", s.top_source_share());
    }

    #[test]
    fn single_packet_stream() {
        let s = TraceStats::from_stream(std::iter::once(PacketRecord::new(
            Nanos::from_secs(5),
            1,
            2,
            64,
        )))
        .unwrap();
        assert_eq!(s.duration(), TimeSpan::ZERO);
        assert_eq!(s.mean_pps(), 1.0);
        assert_eq!(s.mean_packet_size(), 64.0);
    }
}
