//! Property tests pinning the rule-table dynamics the issue demands:
//! hysteresis never fires from fewer than M over-threshold windows,
//! expired rules always leave the table, LPM returns the most
//! specific matching rule, and the cap is never exceeded — plus a
//! fast in-process closed loop (reports -> engine -> gate -> drops ->
//! renewal) with no daemon involved.

use hhh_core::HhhReport;
use hhh_mitigate::{Action, GateTotals, PolicyConfig, PolicyEngine, Rule, RuleTable, TableGate};
use hhh_nettypes::{Ipv4Prefix, Nanos, PacketRecord, TimeSpan};
use hhh_window::{PacketGate, RuleFilter, Source, WindowReport};
use proptest::prelude::*;

const WINDOW: TimeSpan = TimeSpan::from_secs(5);

fn report(index: u64, total: u64, hhhs: &[(Ipv4Prefix, u64)]) -> WindowReport<Ipv4Prefix> {
    WindowReport {
        index,
        start: Nanos::from_nanos(index * WINDOW.as_nanos()),
        end: Nanos::from_nanos((index + 1) * WINDOW.as_nanos()),
        total,
        hhhs: hhhs
            .iter()
            .map(|&(prefix, bytes)| HhhReport {
                prefix,
                level: prefix.len() as usize,
                estimate: bytes,
                discounted: bytes,
                lower_bound: bytes,
            })
            .collect(),
    }
}

fn net16(a: u8, b: u8) -> Ipv4Prefix {
    Ipv4Prefix::new(u32::from_be_bytes([a, b, 0, 0]), 16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hysteresis: however strong the surge, a prefix over threshold
    /// for fewer than M consecutive windows never produces a rule —
    /// and at exactly M it does.
    #[test]
    fn no_rule_fires_before_m_windows(
        m in 1u32..6,
        over_windows in 0u32..6,
        share_milli in 50u64..600,
    ) {
        let cfg = PolicyConfig {
            hysteresis: m,
            dominance_hysteresis: m,
            warmup_windows: 1,
            ..PolicyConfig::default()
        };
        let mut eng = PolicyEngine::new(cfg);
        let atk = net16(38, 2);
        let total = 1_000u64;
        let bytes = total * share_milli / 1_000;
        // One warmup window, then the surge for `over_windows`.
        eng.ingest(&report(0, total, &[]));
        for i in 0..over_windows {
            eng.ingest(&report(1 + i as u64, total, &[(atk, bytes)]));
        }
        let table = eng.table();
        let table = table.lock().unwrap();
        if over_windows < m {
            prop_assert!(
                table.get(atk).is_none(),
                "rule fired after {over_windows} < {m} windows"
            );
            prop_assert_eq!(eng.fired_log().len(), 0);
        } else {
            prop_assert!(table.get(atk).is_some(), "no rule after {over_windows} >= {m} windows");
            // It fired exactly at the M-th over-threshold window.
            let fired = eng.fired_log()[0];
            prop_assert_eq!(fired.at, Nanos::from_nanos((1 + m as u64) * WINDOW.as_nanos()));
        }
    }

    /// Expiry: whatever interleaving of fires and quiet windows, no
    /// rule's `expires_at` is ever in the past once `ingest` returns.
    #[test]
    fn expired_rules_always_leave(
        ttl_s in 5u64..30,
        pattern in prop::collection::vec(0u8..3, 4..24),
    ) {
        let cfg = PolicyConfig {
            ttl: TimeSpan::from_secs(ttl_s),
            warmup_windows: 1,
            ..PolicyConfig::default()
        };
        let mut eng = PolicyEngine::new(cfg);
        let a = net16(38, 2);
        let b = net16(11, 4);
        let total = 1_000u64;
        for (i, step) in pattern.iter().enumerate() {
            let hhhs: Vec<(Ipv4Prefix, u64)> = match step {
                0 => vec![],
                1 => vec![(a, 400)],
                _ => vec![(a, 400), (b, 300)],
            };
            let w = report(i as u64, total, &hhhs);
            let now = w.end;
            eng.ingest(&w);
            let table = eng.table();
            let table = table.lock().unwrap();
            for rule in table.iter() {
                prop_assert!(
                    rule.expires_at > now,
                    "rule {} still installed at {:?} though it expired at {:?}",
                    rule.prefix, now, rule.expires_at
                );
            }
        }
    }

    /// LPM: lookup over a random rule set always returns the most
    /// specific containing prefix — byte-for-byte what a naive scan
    /// over all rules computes.
    #[test]
    fn lpm_matches_naive_scan(
        seeds in prop::collection::vec((0u32..u32::MAX, 0u8..5), 1..24),
        probes in prop::collection::vec(0u32..u32::MAX, 8..17),
    ) {
        let mut table = RuleTable::with_cap(64);
        for (addr, level) in seeds {
            let len = level * 8; // hierarchy lengths: 0,8,16,24,32
            let prefix = Ipv4Prefix::new(addr, len);
            if table.get(prefix).is_none() {
                table.insert(Rule::new(
                    prefix,
                    Action::Block,
                    Nanos::ZERO,
                    Nanos::from_secs(100),
                    1.0,
                ));
            }
        }
        let rules: Vec<Ipv4Prefix> = table.iter().map(|r| r.prefix).collect();
        for addr in probes {
            let got = table.lookup(addr).map(|r| r.prefix);
            let naive = rules
                .iter()
                .filter(|p| p.contains_addr(addr))
                .max_by_key(|p| p.len())
                .copied();
            prop_assert_eq!(got, naive, "lookup({addr:#x}) disagrees with naive scan");
        }
    }

    /// Cap: a table under arbitrary insert pressure never exceeds its
    /// cap, and every refused insert really did rank below the whole
    /// table.
    #[test]
    fn cap_is_never_exceeded(
        cap in 1usize..12,
        inserts in prop::collection::vec((0u32..u32::MAX, 0u8..3, 0u64..1_000_000), 1..64),
    ) {
        let mut table = RuleTable::with_cap(cap);
        for (addr, sev, weight) in inserts {
            let action = match sev {
                0 => Action::Watch,
                1 => Action::RateLimit { bps: 1_000_000 },
                _ => Action::Block,
            };
            let prefix = Ipv4Prefix::new(addr, 16);
            if table.get(prefix).is_some() {
                continue;
            }
            let accepted = table.insert(Rule::new(
                prefix,
                action,
                Nanos::ZERO,
                Nanos::from_secs(100),
                weight as f64,
            ));
            prop_assert!(table.len() <= cap, "cap {} exceeded: {}", cap, table.len());
            if !accepted {
                prop_assert_eq!(table.len(), cap, "refusal only happens at cap");
            }
        }
    }
}

/// The whole loop in-process, no daemon: synthesize two windows of
/// flood reports, let the engine fire a block rule, then pump packets
/// through a `RuleFilter` over the shared table and watch the gate
/// drop attack bytes, credit the rule, and renew it past its TTL.
#[test]
fn closed_loop_in_process() {
    let cfg =
        PolicyConfig { ttl: TimeSpan::from_secs(8), warmup_windows: 1, ..PolicyConfig::default() };
    let mut eng = PolicyEngine::new(cfg);
    let atk = net16(38, 2);
    let atk_src = u32::from_be_bytes([38, 2, 0, 9]);
    let legit_src = u32::from_be_bytes([9, 9, 0, 1]);

    eng.ingest(&report(0, 1_000, &[]));
    eng.ingest(&report(1, 1_000, &[(atk, 300)]));
    eng.ingest(&report(2, 1_000, &[(atk, 300)]));
    let table = eng.table();
    assert_eq!(table.lock().unwrap().get(atk).map(|r| r.action), Some(Action::Block));

    // Window 3's packets, filtered through the freshly-blocked table.
    let base = Nanos::from_nanos(3 * WINDOW.as_nanos());
    let packets: Vec<PacketRecord> = (0..200u64)
        .map(|i| {
            let src = if i % 2 == 0 { atk_src } else { legit_src };
            PacketRecord::new(base + TimeSpan::from_millis(i), src, 1, 1_000)
        })
        .collect();
    let gate = TableGate::new(eng.table()).with_truth(vec![atk]);
    let mut filter = RuleFilter::new(packets.iter().copied(), gate);
    let mut survivors = Vec::new();
    let mut buf = Vec::new();
    while filter.pull_chunk(&mut buf) {
        survivors.append(&mut buf);
    }
    assert_eq!(survivors.len(), 100, "every attack packet dropped, every legit kept");
    assert!(survivors.iter().all(|p| p.src == legit_src));

    let (_, mut gate) = filter.into_parts();
    let totals = gate.take_totals();
    assert_eq!(
        totals,
        GateTotals {
            attack_offered_bytes: 100_000,
            attack_dropped_bytes: 100_000,
            legit_offered_bytes: 100_000,
            legit_dropped_bytes: 0,
            packets_offered: 200,
            packets_dropped: 100,
        }
    );

    // The flood no longer reaches the detector, but the drops renew
    // the rule past its 8 s TTL (fired at 15 s, windows 3 and 4 end at
    // 20 s and 25 s).
    eng.ingest(&report(3, 500, &[]));
    assert!(table.lock().unwrap().get(atk).is_some(), "hit-renewed rule must survive");
    let renewals = table.lock().unwrap().get(atk).unwrap().renewals;
    assert!(renewals >= 1);

    // No further hits: the rule lapses once the TTL runs out.
    eng.ingest(&report(4, 500, &[]));
    eng.ingest(&report(5, 500, &[]));
    eng.ingest(&report(6, 500, &[]));
    assert!(table.lock().unwrap().get(atk).is_none(), "unrenewed rule must expire");
    assert_eq!(eng.stats().expired, 1);
}

/// A gate admits everything when the table is empty — the filter is
/// transparent until policy says otherwise.
#[test]
fn empty_table_is_transparent() {
    let eng = PolicyEngine::new(PolicyConfig::default());
    let mut gate = TableGate::new(eng.table());
    for i in 0..1_000u64 {
        let p = PacketRecord::new(Nanos::from_micros(i), i as u32, 1, 100);
        assert!(gate.admit(&p));
    }
    assert_eq!(gate.totals().packets_dropped, 0);
}
