//! The rule table: a capped, longest-prefix-match map from source
//! prefixes to [`Rule`]s.
//!
//! Lookup probes only the prefix lengths actually present (tracked in
//! a 33-slot occupancy array), most specific first — with the byte
//! hierarchy's five levels that is at most five `BTreeMap` probes per
//! packet, and a blocked /24 inside a watched /16 resolves to the /24.
//!
//! The cap is enforced *at insert*: when full, the incoming rule
//! displaces the table minimum under [`Rule::evict_key`] only if it
//! would itself rank higher; otherwise the insert is refused. Either
//! way the table never holds more than `cap` rules, and the outcome
//! depends only on the table contents — no clocks, no hashing order.

use crate::rule::Rule;
use hhh_nettypes::{Ipv4Prefix, Nanos};
use std::collections::BTreeMap;

/// The capped LPM rule table. See the module docs for semantics.
#[derive(Debug)]
pub struct RuleTable {
    rules: BTreeMap<Ipv4Prefix, Rule>,
    /// How many rules exist at each prefix length; `lookup` probes
    /// only the occupied lengths.
    len_counts: [u32; 33],
    cap: usize,
    inserts: u64,
    evictions: u64,
    expirations: u64,
}

impl RuleTable {
    /// An empty table admitting at most `cap` rules (`cap >= 1`).
    pub fn with_cap(cap: usize) -> Self {
        assert!(cap >= 1, "rule table cap must be at least 1");
        RuleTable {
            rules: BTreeMap::new(),
            len_counts: [0; 33],
            cap,
            inserts: 0,
            evictions: 0,
            expirations: 0,
        }
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Installed rule count (always `<= cap`).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Total membership churn so far: every insert, eviction, and
    /// expiration counts once. (A renewal is not churn.)
    pub fn churn(&self) -> u64 {
        self.inserts + self.evictions + self.expirations
    }

    /// Inserts accepted so far.
    pub fn inserts(&self) -> u64 {
        self.inserts
    }

    /// Rules displaced by the cap so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Rules that aged out so far.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// The most specific rule whose prefix contains `addr`, if any.
    pub fn lookup(&self, addr: u32) -> Option<&Rule> {
        for len in (0..=32u8).rev() {
            if self.len_counts[len as usize] == 0 {
                continue;
            }
            if let Some(rule) = self.rules.get(&Ipv4Prefix::new(addr, len)) {
                return Some(rule);
            }
        }
        None
    }

    /// The rule installed for exactly `prefix`, if any.
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&Rule> {
        self.rules.get(&prefix)
    }

    /// Mutable access to the rule for exactly `prefix` (renewals,
    /// escalation, EWMA refresh — membership stays fixed).
    pub fn get_mut(&mut self, prefix: Ipv4Prefix) -> Option<&mut Rule> {
        self.rules.get_mut(&prefix)
    }

    /// All rules in prefix order.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.rules.values()
    }

    /// Install a rule for a prefix not already in the table.
    ///
    /// Returns `true` if the rule went in. When the table is at cap,
    /// the incoming rule must outrank the current minimum under
    /// [`Rule::evict_key`]; the minimum is then evicted. A rule that
    /// doesn't outrank anything is refused — the cap is never
    /// exceeded, and which rule loses is deterministic.
    ///
    /// Panics if a rule for the same prefix is already installed
    /// (update in place through [`RuleTable::get_mut`] instead; silent
    /// replace would double-count churn and lose drop counters).
    pub fn insert(&mut self, rule: Rule) -> bool {
        assert!(
            !self.rules.contains_key(&rule.prefix),
            "insert of an already-installed prefix; update via get_mut"
        );
        if self.rules.len() >= self.cap {
            let (victim, victim_key) = self
                .rules
                .values()
                .map(|r| (r.prefix, r.evict_key()))
                .min_by(|a, b| a.1.cmp(&b.1))
                .expect("cap >= 1, so a full table is non-empty");
            if rule.evict_key() <= victim_key {
                return false;
            }
            self.remove(victim);
            self.evictions += 1;
        }
        self.len_counts[rule.prefix.len() as usize] += 1;
        self.inserts += 1;
        self.rules.insert(rule.prefix, rule);
        true
    }

    /// Remove the rule for exactly `prefix`, returning it.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<Rule> {
        let rule = self.rules.remove(&prefix)?;
        self.len_counts[prefix.len() as usize] -= 1;
        Some(rule)
    }

    /// Drop every rule whose `expires_at <= now`, returning them in
    /// prefix order.
    pub fn expire(&mut self, now: Nanos) -> Vec<Rule> {
        let lapsed: Vec<Ipv4Prefix> =
            self.rules.values().filter(|r| r.expires_at <= now).map(|r| r.prefix).collect();
        let mut out = Vec::with_capacity(lapsed.len());
        for prefix in lapsed {
            if let Some(rule) = self.remove(prefix) {
                self.expirations += 1;
                out.push(rule);
            }
        }
        out
    }

    /// Credit a data-plane drop to the rule for exactly `prefix`
    /// (no-op if the rule vanished between lookup and credit).
    pub fn credit_drop(&mut self, prefix: Ipv4Prefix, bytes: u64) {
        if let Some(rule) = self.rules.get_mut(&prefix) {
            rule.dropped_bytes += bytes;
            rule.dropped_packets += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Action;

    fn rule(addr: u32, len: u8, action: Action, ewma: f64) -> Rule {
        Rule::new(Ipv4Prefix::new(addr, len), action, Nanos::ZERO, Nanos::from_secs(100), ewma)
    }

    #[test]
    fn lpm_prefers_most_specific() {
        let mut t = RuleTable::with_cap(8);
        assert!(t.insert(rule(0x0A01_0000, 16, Action::Watch, 1.0)));
        assert!(t.insert(rule(0x0A01_0200, 24, Action::Block, 1.0)));
        let inside_24 = t.lookup(0x0A01_0203).expect("matches both");
        assert_eq!(inside_24.prefix.len(), 24);
        assert_eq!(inside_24.action, Action::Block);
        let outside_24 = t.lookup(0x0A01_0303).expect("matches /16 only");
        assert_eq!(outside_24.prefix.len(), 16);
        assert!(t.lookup(0x0B00_0001).is_none());
    }

    #[test]
    fn cap_refuses_weaker_and_evicts_weakest() {
        let mut t = RuleTable::with_cap(2);
        assert!(t.insert(rule(0x0100_0000, 16, Action::Block, 50.0)));
        assert!(t.insert(rule(0x0200_0000, 16, Action::Block, 90.0)));
        // A watch rule never outranks blocks: refused.
        assert!(!t.insert(rule(0x0300_0000, 16, Action::Watch, 1e9)));
        assert_eq!(t.len(), 2);
        // A heavier block displaces the 50-byte one.
        assert!(t.insert(rule(0x0400_0000, 16, Action::Block, 70.0)));
        assert_eq!(t.len(), 2);
        assert!(t.get(Ipv4Prefix::new(0x0100_0000, 16)).is_none());
        assert_eq!(t.evictions(), 1);
    }

    #[test]
    fn expire_removes_only_lapsed() {
        let mut t = RuleTable::with_cap(4);
        let mut early = rule(0x0100_0000, 16, Action::Block, 1.0);
        early.expires_at = Nanos::from_secs(5);
        t.insert(early);
        t.insert(rule(0x0200_0000, 16, Action::Block, 1.0));
        let out = t.expire(Nanos::from_secs(5));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].prefix, Ipv4Prefix::new(0x0100_0000, 16));
        assert_eq!(t.len(), 1);
        assert_eq!(t.expirations(), 1);
        // The lookup occupancy index must shrink with the rule.
        assert!(t.lookup(0x0100_0001).is_none());
    }

    #[test]
    fn credit_drop_accumulates() {
        let mut t = RuleTable::with_cap(4);
        let p = Ipv4Prefix::new(0x0A00_0000, 8);
        t.insert(rule(0x0A00_0000, 8, Action::Block, 1.0));
        t.credit_drop(p, 1500);
        t.credit_drop(p, 60);
        let r = t.get(p).unwrap();
        assert_eq!(r.dropped_bytes, 1560);
        assert_eq!(r.dropped_packets, 2);
    }
}
