//! The mitigation vocabulary: what a rule *is* and what it does to a
//! matching packet.

use hhh_nettypes::{Ipv4Prefix, Nanos};

/// What happens to traffic matching a rule's prefix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Observe only: the rule exists (and renews, and shows up in
    /// `/rules`) but every packet is admitted.
    Watch,
    /// Admit up to `bps` bits per second of matching traffic (trace
    /// time, token bucket); drop the excess.
    RateLimit {
        /// The admitted rate, bits per second.
        bps: u64,
    },
    /// Drop every matching packet.
    Block,
}

impl Action {
    /// A total severity order: `Watch < RateLimit < Block`. Eviction
    /// keeps the most severe rules; escalation only ever raises this.
    pub fn severity(self) -> u8 {
        match self {
            Action::Watch => 0,
            Action::RateLimit { .. } => 1,
            Action::Block => 2,
        }
    }

    /// The wire label used in `/rules` JSON and the CLI render.
    pub fn label(self) -> &'static str {
        match self {
            Action::Watch => "watch",
            Action::RateLimit { .. } => "limit",
            Action::Block => "block",
        }
    }
}

/// One installed mitigation rule.
#[derive(Clone, Debug)]
pub struct Rule {
    /// The source prefix this rule matches (longest-prefix-match
    /// against packet sources).
    pub prefix: Ipv4Prefix,
    /// What to do with matching packets.
    pub action: Action,
    /// Trace instant the rule first fired (the end of the window whose
    /// report crossed the hysteresis bound).
    pub fired_at: Nanos,
    /// Trace instant the rule lapses unless renewed.
    pub expires_at: Nanos,
    /// How many times the TTL was extended — by the detector
    /// re-asserting the prefix, or by the data plane still hitting it.
    pub renewals: u64,
    /// EWMA-damped per-window byte estimate for the prefix (the
    /// eviction weight: heavier rules survive the cap).
    pub ewma_bytes: f64,
    /// Bytes the data plane dropped under this rule.
    pub dropped_bytes: u64,
    /// Packets the data plane dropped under this rule.
    pub dropped_packets: u64,
}

impl Rule {
    /// A fresh rule with zeroed data-plane counters.
    pub fn new(
        prefix: Ipv4Prefix,
        action: Action,
        fired_at: Nanos,
        expires_at: Nanos,
        ewma_bytes: f64,
    ) -> Self {
        Rule {
            prefix,
            action,
            fired_at,
            expires_at,
            renewals: 0,
            ewma_bytes,
            dropped_bytes: 0,
            dropped_packets: 0,
        }
    }

    /// The deterministic eviction key: less severe, lighter, and (as a
    /// final tiebreak) lexicographically smaller rules evict first.
    /// `f64::total_cmp` keeps the order total even if an EWMA ever
    /// went non-finite.
    pub(crate) fn evict_key(&self) -> (u8, TotalF64, Ipv4Prefix) {
        (self.action.severity(), TotalF64(self.ewma_bytes), self.prefix)
    }
}

/// `f64` wrapped with its IEEE total order so it can sit inside an
/// `Ord` tuple.
#[derive(PartialEq)]
pub(crate) struct TotalF64(pub f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_actions() {
        assert!(Action::Watch.severity() < Action::RateLimit { bps: 1 }.severity());
        assert!(Action::RateLimit { bps: u64::MAX }.severity() < Action::Block.severity());
    }

    #[test]
    fn evict_key_prefers_severity_over_bytes() {
        let p = Ipv4Prefix::new(0x0A00_0000, 16);
        let watch_heavy = Rule::new(p, Action::Watch, Nanos::ZERO, Nanos::ZERO, 1e12);
        let block_light = Rule::new(p, Action::Block, Nanos::ZERO, Nanos::ZERO, 1.0);
        assert!(watch_heavy.evict_key() < block_light.evict_key());
    }
}
