//! Getting reports *into* the engine: parse the `/hhh` ndjson wire
//! format back into [`WindowReport`]s, or tee reports straight from a
//! running pipeline via [`PolicySink`].

use crate::policy::PolicyEngine;
use hhh_core::snapshot::json::Json;
use hhh_core::HhhReport;
use hhh_nettypes::{Ipv4Prefix, Nanos};
use hhh_window::{ReportSink, WindowReport};
use std::sync::{Arc, Mutex};

/// Parse `/hhh` (or `hhh-agg`) ndjson report lines into full
/// [`WindowReport`]s, in window order. Non-`report` lines (state
/// snapshots) are skipped. The wire format carries no lower bound, so
/// `lower_bound` is set to `discounted` (they coincide for the
/// deterministic detectors anyway).
pub fn parse_policy_windows(body: &str) -> Result<Vec<WindowReport<Ipv4Prefix>>, String> {
    let mut out = Vec::new();
    for line in body.lines().filter(|l| !l.trim().is_empty()) {
        let v = Json::parse(line).map_err(|e| format!("bad report line: {e}: {line}"))?;
        if v.get("type").and_then(Json::as_str) != Some("report") {
            continue;
        }
        let field = |name: &str| {
            v.get(name).and_then(Json::as_u64).ok_or_else(|| format!("missing {name}: {line}"))
        };
        let index = field("index")?;
        let start = Nanos::from_nanos(field("start_ns")?);
        let end = Nanos::from_nanos(field("end_ns")?);
        let total = field("total")?;
        let mut hhhs = Vec::new();
        if let Some(entries) = v.get("hhhs").and_then(Json::as_arr) {
            for h in entries {
                let text = h
                    .get("prefix")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("hhh entry without prefix: {line}"))?;
                let prefix: Ipv4Prefix =
                    text.parse().map_err(|e| format!("bad prefix {text:?}: {e}"))?;
                let level = h.get("level").and_then(Json::as_u64).unwrap_or(prefix.len() as u64);
                let estimate = h
                    .get("estimate")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("hhh entry without estimate: {line}"))?;
                let discounted = h.get("discounted").and_then(Json::as_u64).unwrap_or(estimate);
                hhhs.push(HhhReport {
                    prefix,
                    level: level as usize,
                    estimate,
                    discounted,
                    lower_bound: discounted,
                });
            }
        }
        out.push(WindowReport { index, start, end, total, hhhs });
    }
    out.sort_by_key(|w| (w.start, w.index));
    Ok(out)
}

/// A [`ReportSink`] tee: feed series-0 reports to a shared
/// [`PolicyEngine`] as a pipeline runs — the in-process alternative to
/// polling `/hhh`. Output is the engine handle back.
pub struct PolicySink {
    engine: Arc<Mutex<PolicyEngine>>,
}

impl PolicySink {
    /// Tee into `engine`.
    pub fn new(engine: Arc<Mutex<PolicyEngine>>) -> Self {
        PolicySink { engine }
    }
}

impl ReportSink<Ipv4Prefix> for PolicySink {
    type Output = Arc<Mutex<PolicyEngine>>;

    fn accept(&mut self, series: usize, report: WindowReport<Ipv4Prefix>) {
        // One threshold drives policy; extra series would double-count.
        if series == 0 {
            self.engine.lock().expect("policy engine lock poisoned").ingest(&report);
        }
    }

    fn finish(self) -> Self::Output {
        self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyConfig;

    #[test]
    fn parses_report_lines_and_skips_states() {
        let body = concat!(
            "{\"type\":\"report\",\"series\":0,\"index\":1,\"start_ns\":5000000000,",
            "\"end_ns\":10000000000,\"total\":1000,\"hhhs\":[",
            "{\"prefix\":\"38.2.0.0/16\",\"level\":2,\"estimate\":300,\"discounted\":280}]}\n",
            "{\"type\":\"state\",\"at_ns\":10000000000}\n",
            "{\"type\":\"report\",\"series\":0,\"index\":0,\"start_ns\":0,",
            "\"end_ns\":5000000000,\"total\":900,\"hhhs\":[]}\n",
        );
        let windows = parse_policy_windows(body).expect("parses");
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].index, 0, "sorted by start");
        assert_eq!(windows[1].total, 1000);
        let hhh = &windows[1].hhhs[0];
        assert_eq!(hhh.prefix, Ipv4Prefix::new(u32::from_be_bytes([38, 2, 0, 0]), 16));
        assert_eq!(hhh.estimate, 300);
        assert_eq!(hhh.discounted, 280);
        assert_eq!(hhh.lower_bound, 280);
    }

    #[test]
    fn garbage_line_is_an_error() {
        assert!(parse_policy_windows("{\"type\":\"report\"").is_err());
        assert!(parse_policy_windows(
            "{\"type\":\"report\",\"index\":0,\"start_ns\":0,\"end_ns\":1,\"total\":1,\
             \"hhhs\":[{\"prefix\":\"not-a-prefix\",\"estimate\":1}]}"
        )
        .is_err());
    }

    #[test]
    fn sink_feeds_only_series_zero() {
        let engine = Arc::new(Mutex::new(PolicyEngine::new(PolicyConfig::default())));
        let mut sink = PolicySink::new(Arc::clone(&engine));
        let report = WindowReport {
            index: 0,
            start: Nanos::ZERO,
            end: Nanos::from_secs(5),
            total: 100,
            hhhs: vec![],
        };
        sink.accept(0, report.clone());
        sink.accept(1, report);
        assert_eq!(engine.lock().unwrap().stats().windows, 1);
    }
}
