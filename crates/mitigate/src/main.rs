//! `hhh-mitigate` — the mitigation CLI: follow a live `hhh-aggd`,
//! run the policy engine against its `/hhh` answers, and render the
//! resulting rule table; or just fetch a daemon's own `/rules`.

use hhh_mitigate::{parse_policy_windows, rules_text, PolicyConfig, PolicyEngine};
use hhh_nettypes::{Nanos, TimeSpan};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
usage: hhh-mitigate <command> [options]

commands:
  watch   poll /hhh on a live hhh-aggd, run the policy engine locally,
          and print rule transitions as they happen
  rules   fetch a daemon's /rules (the daemon-side engine's table)

common options:
  --daemon-http ADDR   the daemon's HTTP address (required)

watch options:
  --kind LABEL         follow one detector kind label (e.g. exact/0of2);
                       default: whichever kinds the daemon serves
  --threshold PCT      re-threshold reports at PCT percent
  --interval MS        poll interval (default 1000)
  --cycles N           stop after N polls (default: run until killed)
  --hysteresis M       consecutive windows before a rule fires (default 2)
  --ttl SECONDS        rule lifetime (default 15)
  --max-rules N        rule table cap (default 256)

rules options:
  --json               print the raw /rules JSON instead of the table
";

fn fail(msg: &str) -> ExitCode {
    eprintln!("hhh-mitigate: {msg}");
    ExitCode::FAILURE
}

/// Minimal HTTP/1.1 GET, std only — the same shape the daemon's own
/// tests use.
fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(10))).ok();
    let req = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(req.as_bytes()).map_err(|e| format!("send: {e}"))?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).map_err(|e| format!("read: {e}"))?;
    let (head, body) = raw.split_once("\r\n\r\n").ok_or("malformed HTTP response")?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    Ok((status, body.to_string()))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        print!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if command == "--help" || command == "-h" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    let mut daemon_http: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut threshold: Option<f64> = None;
    let mut interval_ms: u64 = 1_000;
    let mut cycles: Option<u64> = None;
    let mut cfg = PolicyConfig::default();
    let mut json = false;

    let mut rest = args;
    while let Some(arg) = rest.next() {
        let mut value =
            |flag: &str| rest.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
        match arg.as_str() {
            "--daemon-http" => match value("--daemon-http") {
                Ok(v) => daemon_http = Some(v),
                Err(e) => return fail(&e),
            },
            "--kind" => match value("--kind") {
                Ok(v) => kind = Some(v),
                Err(e) => return fail(&e),
            },
            "--threshold" => match value("--threshold").map(|v| v.parse::<f64>()) {
                Ok(Ok(t)) if t > 0.0 && t <= 100.0 => threshold = Some(t),
                _ => return fail("--threshold needs a percent in (0, 100]"),
            },
            "--interval" => match value("--interval").map(|v| v.parse::<u64>()) {
                Ok(Ok(ms)) if ms >= 1 => interval_ms = ms,
                _ => return fail("--interval needs a positive millisecond count"),
            },
            "--cycles" => match value("--cycles").map(|v| v.parse::<u64>()) {
                Ok(Ok(n)) => cycles = Some(n),
                _ => return fail("--cycles needs an integer"),
            },
            "--hysteresis" => match value("--hysteresis").map(|v| v.parse::<u32>()) {
                Ok(Ok(m)) if m >= 1 => cfg.hysteresis = m,
                _ => return fail("--hysteresis needs a positive integer"),
            },
            "--ttl" => match value("--ttl").map(|v| v.parse::<u64>()) {
                Ok(Ok(s)) if s >= 1 => cfg.ttl = TimeSpan::from_secs(s),
                _ => return fail("--ttl needs a positive whole-second count"),
            },
            "--max-rules" => match value("--max-rules").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) if n >= 1 => cfg.max_rules = n,
                _ => return fail("--max-rules needs a positive integer"),
            },
            "--json" => json = true,
            other => return fail(&format!("unknown argument `{other}`\n{USAGE}")),
        }
    }

    let Some(addr) = daemon_http else {
        return fail(&format!("--daemon-http is required\n{USAGE}"));
    };

    match command.as_str() {
        "rules" => {
            let path = if json { "/rules" } else { "/rules?text=1" };
            match http_get(&addr, path) {
                Ok((200, body)) => {
                    print!("{body}");
                    ExitCode::SUCCESS
                }
                Ok((status, body)) => fail(&format!("{path} -> {status}: {}", body.trim_end())),
                Err(e) => fail(&e),
            }
        }
        "watch" => watch(&addr, kind, threshold, interval_ms, cycles, cfg),
        other => fail(&format!("unknown command `{other}`\n{USAGE}")),
    }
}

fn watch(
    addr: &str,
    kind: Option<String>,
    threshold: Option<f64>,
    interval_ms: u64,
    cycles: Option<u64>,
    cfg: PolicyConfig,
) -> ExitCode {
    let mut path = String::from("/hhh?all=1");
    if let Some(k) = &kind {
        path.push_str("&kind=");
        path.push_str(k);
    }
    if let Some(t) = threshold {
        path.push_str(&format!("&threshold={t}"));
    }

    let mut engine = PolicyEngine::new(cfg);
    // Ingested-up-to watermark: windows ending at or before this have
    // been fed, so each poll only replays the tail.
    let mut seen_through = Nanos::ZERO;
    let mut polls = 0u64;
    loop {
        match http_get(addr, &path) {
            Ok((200, body)) => match parse_policy_windows(&body) {
                Ok(windows) => {
                    let fired_before = engine.stats().fired;
                    let expired_before = engine.stats().expired;
                    let mark = seen_through;
                    for w in windows.iter().filter(|w| w.end > mark) {
                        engine.ingest(w);
                        seen_through = seen_through.max(w.end);
                    }
                    let stats = engine.stats();
                    if stats.fired != fired_before || stats.expired != expired_before {
                        let table = engine.table();
                        let table = table.lock().expect("rule table lock");
                        print!("{}", rules_text(&table));
                    }
                }
                Err(e) => eprintln!("hhh-mitigate: {e}"),
            },
            Ok((status, body)) => {
                eprintln!("hhh-mitigate: {path} -> {status}: {}", body.trim_end())
            }
            Err(e) => eprintln!("hhh-mitigate: {e}"),
        }
        polls += 1;
        if let Some(n) = cycles {
            if polls >= n {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
    let table = engine.table();
    let table = table.lock().expect("rule table lock");
    print!("{}", rules_text(&table));
    ExitCode::SUCCESS
}
