//! The policy engine: window-by-window HHH reports in, rule-table
//! edits out.
//!
//! Two paths lead to a rule, both gated by consecutive-window
//! hysteresis so a single noisy report never fires anything:
//!
//! * **Surge path** — a prefix whose traffic share jumps well above
//!   its own frozen pre-surge baseline (or that was never seen before)
//!   and stays over the watch share for `hysteresis` consecutive
//!   windows. This is the DDoS-onset detector: it reacts in a couple
//!   of windows without ever firing on a *steadily* heavy legitimate
//!   network, because a steady network's baseline is its own share.
//!   A surge from a prefix *never seen at all* — traffic materializing
//!   out of nothing — is the strongest attack signature the engine
//!   has, and escalates its graded action one tier at fire time.
//!   Surge fires on *host-like* prefixes (longer than `aggregate_len`)
//!   are capped at `Watch`: single hosts routinely blink on and off,
//!   and a two-window blip must never null-route a customer address.
//! * **Dominance path** — a prefix holding an outright-dominant share
//!   (`dominance_share`) for the longer `dominance_hysteresis`,
//!   surge or not. This catches attacks already in progress when the
//!   engine starts, at the price of a deliberately high bar.
//!
//! Baselines are EWMA shares learned during `warmup_windows` (and ever
//! after, *except* while a surge streak is running — the baseline is
//! frozen at its pre-surge value so a sustained attack cannot launder
//! itself into the baseline and de-escalate).
//!
//! Once fired, a rule lives `ttl` and renews two ways: the detector
//! re-asserting the prefix over the watch share, or the data plane
//! still dropping bytes under the rule. The second matters because a
//! *blocked* prefix vanishes from upstream detectors — the rule must
//! not oscillate out and let the flood through to be re-detected.

use crate::rule::{Action, Rule};
use crate::table::RuleTable;
use hhh_nettypes::{Ipv4Prefix, Nanos, TimeSpan};
use hhh_window::WindowReport;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Everything tunable about the policy. `Default` is tuned for the
/// loadgen scenario suite (5 s windows, percent-scale thresholds) and
/// documented per knob.
#[derive(Clone, Debug)]
pub struct PolicyConfig {
    /// Consecutive over-watch windows before a *surging* prefix fires.
    pub hysteresis: u32,
    /// Consecutive over-dominance windows before a non-surging prefix
    /// fires (the always-on-attack path; deliberately slower).
    pub dominance_hysteresis: u32,
    /// Rule lifetime from fire/renewal.
    pub ttl: TimeSpan,
    /// EWMA smoothing factor for shares and byte estimates, in
    /// `(0, 1]`; higher tracks faster.
    pub ewma_alpha: f64,
    /// Hard cap on installed rules (deterministic eviction beyond it).
    pub max_rules: usize,
    /// Share of window bytes at which a prefix is *watchable* — the
    /// streak condition, and the floor action when a rule fires.
    pub watch_share: f64,
    /// Share at which a firing rule rate-limits instead of watching.
    pub limit_share: f64,
    /// Share at which a firing rule blocks outright.
    pub block_share: f64,
    /// Share that fires via the dominance path regardless of surge.
    pub dominance_share: f64,
    /// A share must exceed `surge_factor x` its frozen baseline to
    /// count as surging.
    pub surge_factor: f64,
    /// Windows spent learning baselines before any streak counts.
    pub warmup_windows: u32,
    /// The rate handed to `RateLimit` rules, bits per second.
    pub limit_bps: u64,
    /// Ignore report entries shorter than this prefix length (a /0 or
    /// /8 rule would be a self-inflicted outage).
    pub min_len: u8,
    /// Longest prefix the surge path will *drop* traffic for. A surge
    /// fire on a more-specific (host-like) prefix is capped at `Watch`:
    /// a single host briefly over the watch share is a new elephant
    /// flow until proven otherwise, and null-routing one address off a
    /// two-window blip is exactly the collateral damage this engine is
    /// scored on. The dominance path is exempt — an outright-dominant
    /// host is an attack whatever its length.
    pub aggregate_len: u8,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            hysteresis: 2,
            dominance_hysteresis: 3,
            ttl: TimeSpan::from_secs(15),
            ewma_alpha: 0.5,
            max_rules: 256,
            watch_share: 0.02,
            limit_share: 0.05,
            block_share: 0.10,
            dominance_share: 0.35,
            surge_factor: 3.0,
            warmup_windows: 2,
            limit_bps: 2_000_000,
            min_len: 12,
            aggregate_len: 24,
        }
    }
}

/// Per-prefix tracking state between windows.
#[derive(Clone, Debug, Default)]
struct Track {
    /// Consecutive windows at/over the watch share.
    streak: u32,
    /// Did the current streak begin as a surge over baseline?
    surged: bool,
    /// Did the current streak begin on a never-before-seen prefix?
    fresh: bool,
    /// EWMA share; frozen while a surge streak runs.
    ewma_share: f64,
    /// EWMA per-window bytes (feeds rule eviction weight).
    ewma_bytes: f64,
    /// Ordinal of the last window this prefix appeared in.
    last_seen: u64,
    /// Has this prefix ever been seen before?
    seen: bool,
}

/// A fired-rule event, kept for time-to-mitigate scoring.
#[derive(Clone, Copy, Debug)]
pub struct FiredRule {
    /// The prefix the rule covers.
    pub prefix: Ipv4Prefix,
    /// When it fired (end of the deciding window, trace time).
    pub at: Nanos,
    /// The action it fired with.
    pub action: Action,
}

/// Monotonic policy counters (distinct from the table's own churn
/// counters: these survive rule expiry).
#[derive(Clone, Copy, Debug, Default)]
pub struct PolicyStats {
    /// Windows ingested.
    pub windows: u64,
    /// Rules fired (fresh installs, not renewals).
    pub fired: u64,
    /// Renewals granted (detector re-assertion or data-plane hits).
    pub renewed: u64,
    /// Rules that aged out.
    pub expired: u64,
    /// Escalations (an installed rule's action got more severe).
    pub escalated: u64,
}

/// The engine. Owns the tracking state; *shares* the rule table
/// (behind `Arc<Mutex>`) so a data-plane gate on another thread can
/// consult it per packet while the engine edits it per window.
pub struct PolicyEngine {
    cfg: PolicyConfig,
    table: Arc<Mutex<RuleTable>>,
    tracks: BTreeMap<Ipv4Prefix, Track>,
    /// Last observed `dropped_bytes` per rule, to detect fresh hits.
    hit_marks: BTreeMap<Ipv4Prefix, u64>,
    stats: PolicyStats,
    fired_log: Vec<FiredRule>,
}

impl PolicyEngine {
    /// A fresh engine with its own empty table.
    pub fn new(cfg: PolicyConfig) -> Self {
        let cap = cfg.max_rules;
        PolicyEngine {
            cfg,
            table: Arc::new(Mutex::new(RuleTable::with_cap(cap))),
            tracks: BTreeMap::new(),
            hit_marks: BTreeMap::new(),
            stats: PolicyStats::default(),
            fired_log: Vec::new(),
        }
    }

    /// The shared rule table, for wiring a data-plane gate.
    pub fn table(&self) -> Arc<Mutex<RuleTable>> {
        Arc::clone(&self.table)
    }

    /// The config in force.
    pub fn config(&self) -> &PolicyConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> PolicyStats {
        self.stats
    }

    /// Every rule fired so far, in fire order.
    pub fn fired_log(&self) -> &[FiredRule] {
        &self.fired_log
    }

    /// Ingest one window's HHH report and update the rule table.
    /// Reports must arrive in window order; `report.end` is "now" for
    /// TTL purposes.
    pub fn ingest(&mut self, report: &WindowReport<Ipv4Prefix>) {
        let ordinal = self.stats.windows;
        self.stats.windows += 1;
        let now = report.end;
        let total = report.total;
        let in_warmup = ordinal < self.cfg.warmup_windows as u64;
        let alpha = self.cfg.ewma_alpha;

        let mut table = self.table.lock().expect("rule table lock poisoned");

        if total > 0 {
            for hhh in &report.hhhs {
                if hhh.prefix.len() < self.cfg.min_len {
                    continue;
                }
                let share = hhh.discounted as f64 / total as f64;
                let bytes = hhh.discounted as f64;
                let track = self.tracks.entry(hhh.prefix).or_default();
                let contiguous = track.seen && track.last_seen + 1 == ordinal;

                if in_warmup {
                    // Learn baselines only; no streaks, no rules.
                    track.ewma_share = if track.seen {
                        alpha * share + (1.0 - alpha) * track.ewma_share
                    } else {
                        share
                    };
                    track.ewma_bytes = if track.seen {
                        alpha * bytes + (1.0 - alpha) * track.ewma_bytes
                    } else {
                        bytes
                    };
                    track.streak = 0;
                    track.surged = false;
                    track.seen = true;
                    track.last_seen = ordinal;
                    continue;
                }

                if share >= self.cfg.watch_share {
                    if contiguous && track.streak > 0 {
                        track.streak += 1;
                    } else {
                        // A streak starts; decide *now* whether it is a
                        // surge, against the baseline frozen hereafter.
                        track.streak = 1;
                        track.fresh = !track.seen;
                        track.surged =
                            track.fresh || share >= self.cfg.surge_factor * track.ewma_share;
                    }
                } else {
                    track.streak = 0;
                    track.surged = false;
                    track.fresh = false;
                }

                let surge_fire = track.surged && track.streak >= self.cfg.hysteresis;
                let dominance_fire = share >= self.cfg.dominance_share
                    && track.streak >= self.cfg.dominance_hysteresis;

                // Baseline learning pauses during a surge streak (the
                // freeze), continues otherwise.
                if !(track.surged && track.streak > 0) {
                    track.ewma_share = if track.seen {
                        alpha * share + (1.0 - alpha) * track.ewma_share
                    } else {
                        share
                    };
                }
                track.ewma_bytes = if track.seen {
                    alpha * bytes + (1.0 - alpha) * track.ewma_bytes
                } else {
                    bytes
                };
                track.seen = true;
                track.last_seen = ordinal;

                if surge_fire || dominance_fire {
                    let ewma_bytes = track.ewma_bytes;
                    let mut action = Self::graded_action(&self.cfg, share);
                    if surge_fire && track.fresh {
                        action = Self::escalated(&self.cfg, action);
                    }
                    if !dominance_fire && hhh.prefix.len() > self.cfg.aggregate_len {
                        action = Action::Watch;
                    }
                    Self::assert_rule(
                        &mut table,
                        &mut self.stats,
                        &mut self.fired_log,
                        &self.cfg,
                        hhh.prefix,
                        action,
                        now,
                        ewma_bytes,
                    );
                }
            }
        }

        // Decay prefixes absent from this window: their share is ~0.
        // (Also drops negligible idle tracks so state stays bounded.)
        let track_floor = self.cfg.watch_share / 64.0;
        self.tracks.retain(|_, track| {
            if track.last_seen != ordinal {
                track.streak = 0;
                track.surged = false;
                track.ewma_share *= 1.0 - alpha;
                track.ewma_bytes *= 1.0 - alpha;
                track.ewma_share >= track_floor
            } else {
                true
            }
        });

        // Renewal by data-plane hits: a rule still absorbing traffic
        // stays, even though the detector can no longer see the flood.
        let live: Vec<Ipv4Prefix> = table.iter().map(|r| r.prefix).collect();
        for prefix in live {
            let rule = table.get_mut(prefix).expect("just listed");
            let mark = self.hit_marks.get(&prefix).copied().unwrap_or(0);
            if rule.dropped_bytes > mark {
                rule.expires_at = now + self.cfg.ttl;
                rule.renewals += 1;
                self.stats.renewed += 1;
            }
            self.hit_marks.insert(prefix, rule.dropped_bytes);
        }

        let lapsed = table.expire(now);
        self.stats.expired += lapsed.len() as u64;
        for rule in &lapsed {
            self.hit_marks.remove(&rule.prefix);
        }
    }

    /// Graduated response: the floor is `Watch`; heavier shares limit
    /// or block.
    fn graded_action(cfg: &PolicyConfig, share: f64) -> Action {
        if share >= cfg.block_share {
            Action::Block
        } else if share >= cfg.limit_share {
            Action::RateLimit { bps: cfg.limit_bps }
        } else {
            Action::Watch
        }
    }

    /// One tier up — applied to fresh-prefix surges, where "suddenly a
    /// meaningful share, from an aggregate that never existed" warrants
    /// a harder response than the share alone grades to.
    fn escalated(cfg: &PolicyConfig, action: Action) -> Action {
        match action {
            Action::Watch => Action::RateLimit { bps: cfg.limit_bps },
            Action::RateLimit { .. } | Action::Block => Action::Block,
        }
    }

    /// Install-or-renew: fresh prefixes insert (subject to the cap);
    /// installed prefixes renew their TTL, refresh their eviction
    /// weight, and escalate (never de-escalate — a rule keeps its
    /// severity until it expires).
    #[allow(clippy::too_many_arguments)]
    fn assert_rule(
        table: &mut RuleTable,
        stats: &mut PolicyStats,
        fired_log: &mut Vec<FiredRule>,
        cfg: &PolicyConfig,
        prefix: Ipv4Prefix,
        action: Action,
        now: Nanos,
        ewma_bytes: f64,
    ) {
        match table.get_mut(prefix) {
            Some(rule) => {
                if action.severity() > rule.action.severity() {
                    rule.action = action;
                    stats.escalated += 1;
                }
                rule.expires_at = now + cfg.ttl;
                rule.renewals += 1;
                rule.ewma_bytes = ewma_bytes;
                stats.renewed += 1;
            }
            None => {
                let rule = Rule::new(prefix, action, now, now + cfg.ttl, ewma_bytes);
                if table.insert(rule) {
                    stats.fired += 1;
                    fired_log.push(FiredRule { prefix, at: now, action });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_core::HhhReport;

    const WINDOW: TimeSpan = TimeSpan::from_secs(5);

    fn report(index: u64, total: u64, hhhs: Vec<(Ipv4Prefix, u64)>) -> WindowReport<Ipv4Prefix> {
        WindowReport {
            index,
            start: Nanos::ZERO + TimeSpan::from_nanos(index * WINDOW.as_nanos()),
            end: Nanos::ZERO + TimeSpan::from_nanos((index + 1) * WINDOW.as_nanos()),
            total,
            hhhs: hhhs
                .into_iter()
                .map(|(prefix, bytes)| HhhReport {
                    prefix,
                    level: prefix.len() as usize,
                    estimate: bytes,
                    discounted: bytes,
                    lower_bound: bytes,
                })
                .collect(),
        }
    }

    fn p16(a: u8, b: u8) -> Ipv4Prefix {
        Ipv4Prefix::new(u32::from_be_bytes([a, b, 0, 0]), 16)
    }

    #[test]
    fn new_surging_prefix_fires_after_hysteresis_not_before() {
        let mut eng = PolicyEngine::new(PolicyConfig::default());
        let atk = p16(38, 2);
        // Warmup with quiet traffic.
        eng.ingest(&report(0, 1000, vec![]));
        eng.ingest(&report(1, 1000, vec![]));
        // New prefix surges to 30% share.
        eng.ingest(&report(2, 1000, vec![(atk, 300)]));
        assert!(eng.table().lock().unwrap().get(atk).is_none(), "one window must not fire");
        eng.ingest(&report(3, 1000, vec![(atk, 300)]));
        let table = eng.table();
        let table = table.lock().unwrap();
        let rule = table.get(atk).expect("second consecutive window fires");
        assert_eq!(rule.action, Action::Block);
        assert_eq!(eng.fired_log().len(), 1);
    }

    #[test]
    fn host_length_surge_caps_at_watch() {
        let mut eng = PolicyEngine::new(PolicyConfig::default());
        let host = Ipv4Prefix::new(u32::from_be_bytes([9, 1, 2, 3]), 32);
        eng.ingest(&report(0, 1000, vec![]));
        eng.ingest(&report(1, 1000, vec![]));
        // A fresh /32 surging at block-tier share: the surge path may
        // notice it, but only ever with a Watch rule.
        eng.ingest(&report(2, 1000, vec![(host, 150)]));
        eng.ingest(&report(3, 1000, vec![(host, 150)]));
        let table = eng.table();
        let table = table.lock().unwrap();
        let rule = table.get(host).expect("surge still fires on a host prefix");
        assert_eq!(rule.action, Action::Watch, "host-length surge must cap at Watch");
    }

    #[test]
    fn dominant_host_still_blocks() {
        let cfg = PolicyConfig::default();
        let mut eng = PolicyEngine::new(cfg.clone());
        let host = Ipv4Prefix::new(u32::from_be_bytes([9, 1, 2, 3]), 32);
        eng.ingest(&report(0, 1000, vec![]));
        eng.ingest(&report(1, 1000, vec![]));
        // An outright-dominant host rides the dominance path, which the
        // aggregate cap exempts — but the first surge fire (window 3)
        // installs a Watch rule, and installed rules only escalate, so
        // drive past dominance_hysteresis and check the escalation.
        for i in 2..(2 + cfg.dominance_hysteresis as u64 + 1) {
            eng.ingest(&report(i, 1000, vec![(host, 500)]));
        }
        let table = eng.table();
        let table = table.lock().unwrap();
        let rule = table.get(host).expect("dominant host fires");
        assert_eq!(rule.action, Action::Block, "dominance fire must keep its graded action");
    }

    #[test]
    fn steady_heavy_prefix_never_fires_via_surge() {
        let mut eng = PolicyEngine::new(PolicyConfig::default());
        let heavy = p16(1, 0);
        // A legitimate 20%-share network, present from the start.
        for i in 0..10 {
            eng.ingest(&report(i, 1000, vec![(heavy, 200)]));
        }
        assert!(
            eng.table().lock().unwrap().is_empty(),
            "steady share below dominance must never fire"
        );
    }

    #[test]
    fn broken_streak_resets_hysteresis() {
        let mut eng = PolicyEngine::new(PolicyConfig { hysteresis: 3, ..Default::default() });
        let atk = p16(38, 2);
        eng.ingest(&report(0, 1000, vec![]));
        eng.ingest(&report(1, 1000, vec![]));
        eng.ingest(&report(2, 1000, vec![(atk, 300)]));
        eng.ingest(&report(3, 1000, vec![(atk, 300)]));
        eng.ingest(&report(4, 1000, vec![])); // gap
        eng.ingest(&report(5, 1000, vec![(atk, 300)]));
        eng.ingest(&report(6, 1000, vec![(atk, 300)]));
        assert!(eng.table().lock().unwrap().is_empty(), "streak must restart after a gap");
    }

    #[test]
    fn rules_expire_without_renewal() {
        let cfg = PolicyConfig { ttl: TimeSpan::from_secs(8), ..Default::default() };
        let mut eng = PolicyEngine::new(cfg);
        let atk = p16(38, 2);
        eng.ingest(&report(0, 1000, vec![]));
        eng.ingest(&report(1, 1000, vec![]));
        eng.ingest(&report(2, 1000, vec![(atk, 300)]));
        eng.ingest(&report(3, 1000, vec![(atk, 300)]));
        assert!(eng.table().lock().unwrap().get(atk).is_some());
        // Attack stops; no data-plane hits; TTL 8 s < 2 windows.
        eng.ingest(&report(4, 1000, vec![]));
        eng.ingest(&report(5, 1000, vec![]));
        assert!(eng.table().lock().unwrap().is_empty(), "unrenewed rule must lapse");
        assert_eq!(eng.stats().expired, 1);
    }

    #[test]
    fn data_plane_hits_renew_a_blocked_prefix() {
        let cfg = PolicyConfig { ttl: TimeSpan::from_secs(8), ..Default::default() };
        let mut eng = PolicyEngine::new(cfg);
        let atk = p16(38, 2);
        eng.ingest(&report(0, 1000, vec![]));
        eng.ingest(&report(1, 1000, vec![]));
        eng.ingest(&report(2, 1000, vec![(atk, 300)]));
        eng.ingest(&report(3, 1000, vec![(atk, 300)]));
        let table = eng.table();
        // Blocked traffic vanishes from reports, but the data plane
        // keeps crediting drops — the rule must persist.
        for i in 4..8 {
            table.lock().unwrap().credit_drop(atk, 10_000);
            eng.ingest(&report(i, 1000, vec![]));
            assert!(table.lock().unwrap().get(atk).is_some(), "hit-renewed rule must stay");
        }
        // Hits stop; two unrenewed windows outlive the 8 s TTL.
        eng.ingest(&report(8, 1000, vec![]));
        eng.ingest(&report(9, 1000, vec![]));
        assert!(table.lock().unwrap().get(atk).is_none());
    }

    #[test]
    fn dominance_path_catches_always_on_attack() {
        let mut eng = PolicyEngine::new(PolicyConfig::default());
        let atk = p16(38, 2);
        // Present from window 0 at 40% share: no surge ever, but the
        // dominance path fires after its (longer) hysteresis.
        for i in 0..16 {
            eng.ingest(&report(i, 1000, vec![(atk, 400)]));
        }
        let table = eng.table();
        let table = table.lock().unwrap();
        let rule = table.get(atk).expect("dominant share must fire eventually");
        assert_eq!(rule.action, Action::Block);
    }

    #[test]
    fn short_prefixes_are_ignored() {
        let mut eng = PolicyEngine::new(PolicyConfig::default());
        let wide = Ipv4Prefix::new(0, 0);
        let slash8 = Ipv4Prefix::new(0x0A00_0000, 8);
        for i in 0..8 {
            eng.ingest(&report(i, 1000, vec![(wide, 900), (slash8, 700)]));
        }
        assert!(eng.table().lock().unwrap().is_empty(), "/0 and /8 must never fire");
    }

    #[test]
    fn escalation_raises_but_never_lowers_severity() {
        let mut eng = PolicyEngine::new(PolicyConfig::default());
        let atk = p16(38, 2);
        // Seen during warmup at 1% — a known prefix, so no fresh-surge
        // escalation; its later 6% is a 6x surge over that baseline.
        eng.ingest(&report(0, 1000, vec![(atk, 10)]));
        eng.ingest(&report(1, 1000, vec![(atk, 10)]));
        // Fires at limit-tier share.
        eng.ingest(&report(2, 1000, vec![(atk, 60)]));
        eng.ingest(&report(3, 1000, vec![(atk, 60)]));
        let table = eng.table();
        assert!(matches!(table.lock().unwrap().get(atk).unwrap().action, Action::RateLimit { .. }));
        // Grows to block tier: escalates.
        eng.ingest(&report(4, 1000, vec![(atk, 300)]));
        assert_eq!(table.lock().unwrap().get(atk).unwrap().action, Action::Block);
        // Sinks back to limit tier: stays blocked.
        eng.ingest(&report(5, 1000, vec![(atk, 60)]));
        assert_eq!(table.lock().unwrap().get(atk).unwrap().action, Action::Block);
        assert_eq!(eng.stats().escalated, 1);
    }

    #[test]
    fn fresh_surge_escalates_one_tier() {
        let mut eng = PolicyEngine::new(PolicyConfig::default());
        let (limitish, watchish) = (p16(38, 2), p16(39, 2));
        eng.ingest(&report(0, 1000, vec![]));
        eng.ingest(&report(1, 1000, vec![]));
        // Both prefixes materialize out of nothing: limit-tier share
        // fires as Block, watch-tier share fires as RateLimit.
        eng.ingest(&report(2, 1000, vec![(limitish, 80), (watchish, 30)]));
        eng.ingest(&report(3, 1000, vec![(limitish, 80), (watchish, 30)]));
        let table = eng.table();
        let table = table.lock().unwrap();
        assert_eq!(table.get(limitish).expect("fired").action, Action::Block);
        assert!(matches!(table.get(watchish).expect("fired").action, Action::RateLimit { .. }));
    }
}
