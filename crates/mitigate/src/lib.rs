//! # hhh-mitigate
//!
//! The closed-loop mitigation control plane: from detected HHH
//! prefixes to filter rules, scored for collateral damage.
//!
//! Detection alone doesn't defend anything. This crate turns the
//! repo's HHH reports — polled from `hhh-aggd`'s `/hhh` endpoint or
//! teed in-process off a pipeline via [`PolicySink`] — into a live
//! table of per-prefix actions, and applies that table to packets
//! *upstream* of the detectors through `hhh_window::RuleFilter`:
//!
//! ```text
//!            reports (/hhh or ReportSink)
//!                      |
//!                      v
//!   packets --> [PolicyEngine] --edits--> [RuleTable] <--LPM-- [TableGate]
//!      |                                                           |
//!      +----------------------> RuleFilter(gate) ------------------+--> shards
//!                                     |
//!                              dropped bytes, classed
//!                              attack/legit vs ground truth
//! ```
//!
//! The moving parts, each with its own module and property tests:
//!
//! * [`Action`] / [`Rule`] ([`rule`]) — block, rate-limit-to-N-bps,
//!   or watch, with TTL, renewal count, and data-plane drop counters.
//! * [`RuleTable`] ([`table`]) — capped, longest-prefix-match, with
//!   deterministic eviction (severity, then EWMA weight).
//! * [`PolicyEngine`] ([`policy`]) — onset hysteresis (M consecutive
//!   over-threshold windows), surge-vs-baseline discrimination so
//!   steady heavy legitimate prefixes never fire, EWMA damping, TTL +
//!   renewal (detector re-assertion *or* data-plane hits).
//! * [`TableGate`] ([`gate`]) — the per-packet data plane: token
//!   buckets in trace time, drop crediting, ground-truth byte
//!   classification for collateral scoring.
//! * [`ingest`] / [`render`] — the `/hhh` wire format in, the
//!   `/rules` JSON and CLI table out.
//!
//! `hhh-loadgen --mitigate` drives the whole loop against the planted
//! scenario suite and scores attack bytes dropped vs legitimate
//! collateral per detector kind.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod ingest;
pub mod policy;
pub mod render;
pub mod rule;
pub mod table;

pub use gate::{GateTotals, TableGate};
pub use ingest::{parse_policy_windows, PolicySink};
pub use policy::{FiredRule, PolicyConfig, PolicyEngine, PolicyStats};
pub use render::{rules_json, rules_text};
pub use rule::{Action, Rule};
pub use table::RuleTable;
