//! The data plane: a [`PacketGate`] over the shared rule table,
//! pluggable into `hhh_window::RuleFilter` upstream of the shards.
//!
//! Per packet: longest-prefix-match on the source address, then act.
//! `Block` drops; `RateLimit` runs a per-rule token bucket in *trace
//! time* (timestamps are non-decreasing by the gate contract); `Watch`
//! admits. Drops are credited back to the rule's counters — that
//! credit is what keeps a fully-blocked prefix's rule renewed after
//! the flood disappears from the detectors.
//!
//! When ground truth is attached (the loadgen suite's planted attack
//! prefixes), every offered and dropped byte is also classed
//! attack/legit, giving the true-positive/collateral split the bench
//! scores — and `take_totals()` harvests per window.

use crate::table::RuleTable;
use hhh_nettypes::{Ipv4Prefix, Nanos, PacketRecord};
use hhh_window::PacketGate;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Offered/dropped byte and packet totals, split by ground-truth
/// class. Without ground truth everything counts as legit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GateTotals {
    /// Bytes offered from planted attack prefixes.
    pub attack_offered_bytes: u64,
    /// Attack bytes the gate dropped (true-positive bytes).
    pub attack_dropped_bytes: u64,
    /// Bytes offered from everything else.
    pub legit_offered_bytes: u64,
    /// Legit bytes the gate dropped (collateral damage).
    pub legit_dropped_bytes: u64,
    /// All packets offered.
    pub packets_offered: u64,
    /// All packets dropped.
    pub packets_dropped: u64,
}

impl GateTotals {
    /// Fold another totals into this one.
    pub fn absorb(&mut self, other: GateTotals) {
        self.attack_offered_bytes += other.attack_offered_bytes;
        self.attack_dropped_bytes += other.attack_dropped_bytes;
        self.legit_offered_bytes += other.legit_offered_bytes;
        self.legit_dropped_bytes += other.legit_dropped_bytes;
        self.packets_offered += other.packets_offered;
        self.packets_dropped += other.packets_dropped;
    }
}

/// Token-bucket state for one rate-limit rule.
#[derive(Clone, Copy, Debug)]
struct Bucket {
    /// Spendable bytes.
    tokens: f64,
    /// Last refill instant (trace time).
    last: Nanos,
}

/// The rule-table gate. One per filtered stream; the table is shared
/// with the [`PolicyEngine`](crate::PolicyEngine) that edits it.
pub struct TableGate {
    table: Arc<Mutex<RuleTable>>,
    /// Planted attack prefixes for offered/dropped classification
    /// (empty = no ground truth, everything is "legit").
    truth: Vec<Ipv4Prefix>,
    buckets: BTreeMap<Ipv4Prefix, Bucket>,
    totals: GateTotals,
}

/// Burst allowance for rate limiters: 100 ms at line rate, floored at
/// one full-size frame so a limiter can always pass at least one MTU.
fn burst_bytes(bps: u64) -> f64 {
    (bps as f64 / 8.0 / 10.0).max(1500.0)
}

impl TableGate {
    /// A gate over `table` with no ground truth attached.
    pub fn new(table: Arc<Mutex<RuleTable>>) -> Self {
        TableGate {
            table,
            truth: Vec::new(),
            buckets: BTreeMap::new(),
            totals: GateTotals::default(),
        }
    }

    /// Attach planted attack prefixes for byte classification.
    pub fn with_truth(mut self, truth: Vec<Ipv4Prefix>) -> Self {
        self.truth = truth;
        self
    }

    /// Running totals since the last [`TableGate::take_totals`].
    pub fn totals(&self) -> GateTotals {
        self.totals
    }

    /// Harvest and reset the totals (the per-window accounting hook).
    pub fn take_totals(&mut self) -> GateTotals {
        std::mem::take(&mut self.totals)
    }

    fn is_attack(&self, src: u32) -> bool {
        self.truth.iter().any(|p| p.contains_addr(src))
    }
}

impl PacketGate for TableGate {
    fn admit(&mut self, packet: &PacketRecord) -> bool {
        let bytes = packet.wire_len as u64;
        let attack = self.is_attack(packet.src);
        self.totals.packets_offered += 1;
        if attack {
            self.totals.attack_offered_bytes += bytes;
        } else {
            self.totals.legit_offered_bytes += bytes;
        }

        let mut table = self.table.lock().expect("rule table lock poisoned");
        let verdict = table.lookup(packet.src).map(|rule| (rule.prefix, rule.action));
        let dropped = match verdict {
            None | Some((_, crate::Action::Watch)) => false,
            Some((prefix, crate::Action::Block)) => {
                table.credit_drop(prefix, bytes);
                true
            }
            Some((prefix, crate::Action::RateLimit { bps })) => {
                let bucket = self
                    .buckets
                    .entry(prefix)
                    .or_insert(Bucket { tokens: burst_bytes(bps), last: packet.ts });
                let dt = (packet.ts.saturating_sub(bucket.last)).as_secs_f64();
                bucket.last = packet.ts;
                bucket.tokens = (bucket.tokens + dt * bps as f64 / 8.0).min(burst_bytes(bps));
                if bucket.tokens >= bytes as f64 {
                    bucket.tokens -= bytes as f64;
                    false
                } else {
                    table.credit_drop(prefix, bytes);
                    true
                }
            }
        };
        drop(table);

        if dropped {
            self.totals.packets_dropped += 1;
            if attack {
                self.totals.attack_dropped_bytes += bytes;
            } else {
                self.totals.legit_dropped_bytes += bytes;
            }
        }
        !dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Action, Rule};

    fn table_with(rules: Vec<Rule>) -> Arc<Mutex<RuleTable>> {
        let mut t = RuleTable::with_cap(16);
        for r in rules {
            assert!(t.insert(r));
        }
        Arc::new(Mutex::new(t))
    }

    fn rule(addr: u32, len: u8, action: Action) -> Rule {
        Rule::new(Ipv4Prefix::new(addr, len), action, Nanos::ZERO, Nanos::from_secs(1_000), 1.0)
    }

    fn pkt(ts_ms: u64, src: u32, len: u32) -> PacketRecord {
        PacketRecord::new(Nanos::from_millis(ts_ms), src, 1, len)
    }

    #[test]
    fn block_drops_and_credits_the_rule() {
        let table = table_with(vec![rule(0x2602_0000, 16, Action::Block)]);
        let mut gate =
            TableGate::new(Arc::clone(&table)).with_truth(vec![Ipv4Prefix::new(0x2602_0000, 16)]);
        assert!(!gate.admit(&pkt(0, 0x2602_0001, 500)));
        assert!(gate.admit(&pkt(1, 0x0100_0001, 700)));
        let totals = gate.take_totals();
        assert_eq!(totals.attack_offered_bytes, 500);
        assert_eq!(totals.attack_dropped_bytes, 500);
        assert_eq!(totals.legit_offered_bytes, 700);
        assert_eq!(totals.legit_dropped_bytes, 0);
        assert_eq!(totals.packets_dropped, 1);
        let t = table.lock().unwrap();
        let r = t.get(Ipv4Prefix::new(0x2602_0000, 16)).unwrap();
        assert_eq!(r.dropped_bytes, 500);
        assert_eq!(r.dropped_packets, 1);
        // take_totals reset the running counters.
        assert_eq!(gate.totals(), GateTotals::default());
    }

    #[test]
    fn rate_limit_admits_roughly_bps_over_time() {
        // 8 Mbit/s = 1 MB/s. Offer 2 MB over one second in 1 kB
        // packets: about half must survive (plus the 100 kB burst).
        let bps = 8_000_000u64;
        let table = table_with(vec![rule(0x2602_0000, 16, Action::RateLimit { bps })]);
        let mut gate = TableGate::new(table);
        let n = 2_000u64;
        let mut admitted_bytes = 0u64;
        for i in 0..n {
            let ts = Nanos::from_nanos(i * 1_000_000_000 / n);
            let p = PacketRecord::new(ts, 0x2602_0001, 2, 1_000);
            if gate.admit(&p) {
                admitted_bytes += 1_000;
            }
        }
        let line = bps as f64 / 8.0; // bytes in the second
        assert!(
            (admitted_bytes as f64) >= 0.9 * line && (admitted_bytes as f64) <= 1.3 * line,
            "admitted {admitted_bytes} bytes, expected about {line}"
        );
    }

    #[test]
    fn no_rule_means_everything_passes() {
        let table = Arc::new(Mutex::new(RuleTable::with_cap(4)));
        let mut gate = TableGate::new(table);
        for i in 0..100u64 {
            assert!(gate.admit(&pkt(i, i as u32, 100)));
        }
        let totals = gate.totals();
        assert_eq!(totals.packets_offered, 100);
        assert_eq!(totals.packets_dropped, 0);
        assert_eq!(totals.legit_offered_bytes, 10_000);
    }

    #[test]
    fn watch_rules_admit_but_lpm_block_inside_still_drops() {
        let table = table_with(vec![
            rule(0x2602_0000, 16, Action::Watch),
            rule(0x2602_0100, 24, Action::Block),
        ]);
        let mut gate = TableGate::new(table);
        assert!(gate.admit(&pkt(0, 0x2602_0001, 100)), "watch /16 admits");
        assert!(!gate.admit(&pkt(1, 0x2602_0101, 100)), "block /24 inside drops");
    }

    #[test]
    fn burst_floor_passes_single_mtu() {
        assert!(burst_bytes(8) >= 1500.0);
    }
}
