//! Rendering the rule table outward: the `/rules` JSON document and
//! the aligned text table the CLI prints. One definition of each,
//! shared by the daemon endpoint and the `hhh-mitigate` binary.

use crate::rule::Action;
use crate::table::RuleTable;

/// The `/rules` JSON document: the installed rules (prefix order)
/// plus the table's occupancy and churn counters.
///
/// `ewma_bytes` is rounded to a whole byte count — it is an eviction
/// weight, not a measurement, and whole numbers keep the hand-rolled
/// JSON trivially parseable.
pub fn rules_json(table: &RuleTable) -> String {
    let mut out = String::from("{\"rules\":[");
    for (i, rule) in table.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"prefix\":\"{}\",\"action\":\"{}\"",
            rule.prefix,
            rule.action.label()
        ));
        if let Action::RateLimit { bps } = rule.action {
            out.push_str(&format!(",\"limit_bps\":{bps}"));
        }
        out.push_str(&format!(
            ",\"fired_at_ns\":{},\"expires_at_ns\":{},\"renewals\":{},\"ewma_bytes\":{},\
             \"dropped_bytes\":{},\"dropped_packets\":{}}}",
            rule.fired_at.as_nanos(),
            rule.expires_at.as_nanos(),
            rule.renewals,
            rule.ewma_bytes.round().max(0.0) as u64,
            rule.dropped_bytes,
            rule.dropped_packets,
        ));
    }
    out.push_str(&format!(
        "],\"active\":{},\"cap\":{},\"inserts\":{},\"evictions\":{},\"expirations\":{},\
         \"churn\":{}}}",
        table.len(),
        table.cap(),
        table.inserts(),
        table.evictions(),
        table.expirations(),
        table.churn(),
    ));
    out
}

/// The aligned text render (`hhh-mitigate rules`, and
/// `/rules?text=1`). Trace-time stamps are printed in seconds.
pub fn rules_text(table: &RuleTable) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<20} {:<12} {:>9} {:>10} {:>8} {:>13} {:>14} {:>12}\n",
        "PREFIX",
        "ACTION",
        "FIRED_S",
        "EXPIRES_S",
        "RENEWALS",
        "EWMA_BYTES",
        "DROPPED_BYTES",
        "DROPPED_PKTS"
    ));
    for rule in table.iter() {
        let action = match rule.action {
            Action::RateLimit { bps } => format!("limit:{bps}bps"),
            other => other.label().to_string(),
        };
        out.push_str(&format!(
            "{:<20} {:<12} {:>9.1} {:>10.1} {:>8} {:>13} {:>14} {:>12}\n",
            rule.prefix.to_string(),
            action,
            rule.fired_at.as_secs_f64(),
            rule.expires_at.as_secs_f64(),
            rule.renewals,
            rule.ewma_bytes.round().max(0.0) as u64,
            rule.dropped_bytes,
            rule.dropped_packets,
        ));
    }
    out.push_str(&format!(
        "{} rule(s), cap {}, churn {} (inserts {}, evictions {}, expirations {})\n",
        table.len(),
        table.cap(),
        table.churn(),
        table.inserts(),
        table.evictions(),
        table.expirations(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Rule;
    use hhh_core::snapshot::json::Json;
    use hhh_nettypes::{Ipv4Prefix, Nanos};

    fn sample() -> RuleTable {
        let mut t = RuleTable::with_cap(8);
        t.insert(Rule::new(
            Ipv4Prefix::new(u32::from_be_bytes([38, 2, 0, 0]), 16),
            Action::Block,
            Nanos::from_secs(15),
            Nanos::from_secs(30),
            123_456.7,
        ));
        t.insert(Rule::new(
            Ipv4Prefix::new(u32::from_be_bytes([11, 4, 1, 0]), 24),
            Action::RateLimit { bps: 2_000_000 },
            Nanos::from_secs(20),
            Nanos::from_secs(35),
            999.2,
        ));
        t
    }

    #[test]
    fn json_round_trips_through_the_parser() {
        let table = sample();
        let doc = Json::parse(&rules_json(&table)).expect("valid JSON");
        assert_eq!(doc.get("active").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("cap").and_then(Json::as_u64), Some(8));
        assert_eq!(doc.get("churn").and_then(Json::as_u64), Some(2));
        let rules = doc.get("rules").and_then(Json::as_arr).expect("rules array");
        assert_eq!(rules.len(), 2);
        // Prefix order: the /16 sorts before the /24 (shorter first).
        assert_eq!(rules[0].get("prefix").and_then(Json::as_str), Some("38.2.0.0/16"));
        assert_eq!(rules[0].get("action").and_then(Json::as_str), Some("block"));
        assert!(rules[0].get("limit_bps").is_none());
        assert_eq!(rules[1].get("action").and_then(Json::as_str), Some("limit"));
        assert_eq!(rules[1].get("limit_bps").and_then(Json::as_u64), Some(2_000_000));
        assert_eq!(rules[0].get("ewma_bytes").and_then(Json::as_u64), Some(123_457));
        assert_eq!(rules[0].get("expires_at_ns").and_then(Json::as_u64), Some(30_000_000_000));
    }

    #[test]
    fn text_render_lists_every_rule() {
        let table = sample();
        let text = rules_text(&table);
        assert!(text.contains("38.2.0.0/16"));
        assert!(text.contains("limit:2000000bps"));
        assert!(text.contains("2 rule(s), cap 8"));
    }

    #[test]
    fn empty_table_renders_cleanly() {
        let table = RuleTable::with_cap(4);
        assert!(Json::parse(&rules_json(&table)).is_ok());
        assert!(rules_text(&table).contains("0 rule(s)"));
    }
}
