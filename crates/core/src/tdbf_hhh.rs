//! TDBF-HHH: the windowless detector the paper's §3 proposes.
//!
//! One [`OnDemandTdbf`] per hierarchy level holds exponentially decayed
//! per-prefix counts; a scalar [`DecayedCounter`] holds the decayed
//! total. Because Bloom-style filters cannot enumerate keys, each level
//! also keeps a small *candidate table* of prefixes whose decayed
//! estimate has ever crossed an admission fraction of the decayed total
//! — the "on-demand" companion structure from Bianchi et al. 2011,
//! where the filter answers "how much?" and the table remembers "who".
//!
//! A report can be requested at **any instant**: the decayed counts are
//! exact functions of time, so there is no window boundary for a burst
//! to straddle — the property the paper's Fig. 2 shows disjoint windows
//! lack. Comparability with an `w`-long window comes from choosing
//! `half_life ≈ w/2` (see [`DecayRate::from_half_life`]): both forget
//! traffic on the same time scale.
//!
//! ## Error model
//!
//! Estimates inherit CMS-style one-sided error from the filter
//! (collisions only inflate), plus an admission lag: a prefix's traffic
//! before it entered the candidate table is invisible to the *report*
//! (though still in the filter). With the default admission fraction of
//! one tenth of the smallest threshold of interest, the lag bias is
//! bounded by that fraction of the total.

use crate::detector::{ContinuousDetector, MergeableDetector};
use crate::exact::discount_bottom_up;
use crate::report::{HhhReport, Threshold};
use hhh_hierarchy::Hierarchy;
use hhh_nettypes::{Nanos, TimeSpan};
use hhh_sketches::{DecayRate, DecayedCounter, OnDemandTdbf};
use std::collections::HashMap;

/// Configuration for [`TdbfHhh`].
#[derive(Clone, Debug)]
pub struct TdbfHhhConfig {
    /// Cells per level filter.
    pub cells_per_level: usize,
    /// Hash functions per filter.
    pub hashes: usize,
    /// Decay half-life (choose ≈ half the window length you are
    /// replacing).
    pub half_life: TimeSpan,
    /// Candidate table capacity per level.
    pub candidates_per_level: usize,
    /// A prefix is admitted to the candidate table when its decayed
    /// estimate reaches this fraction of the decayed total. Set it
    /// below the smallest threshold you intend to query (a tenth is
    /// comfortable).
    pub admit_fraction: f64,
    /// Hash seed.
    pub seed: u64,
}

impl Default for TdbfHhhConfig {
    fn default() -> Self {
        TdbfHhhConfig {
            cells_per_level: 4096,
            hashes: 4,
            half_life: TimeSpan::from_secs(5),
            candidates_per_level: 512,
            admit_fraction: 0.001,
            seed: 0x7DBF,
        }
    }
}

/// The windowless TDBF-based HHH detector.
#[derive(Clone, Debug)]
pub struct TdbfHhh<H: Hierarchy> {
    hierarchy: H,
    cfg: TdbfHhhConfig,
    rate: DecayRate,
    filters: Vec<OnDemandTdbf<H::Prefix>>,
    /// Per level: prefixes worth reporting on, with their last-touch
    /// time (for eviction tie-breaks).
    candidates: Vec<HashMap<H::Prefix, Nanos>>,
    total: DecayedCounter,
    observed: u64,
}

impl<H: Hierarchy> TdbfHhh<H> {
    /// Build from a hierarchy and configuration.
    pub fn new(hierarchy: H, cfg: TdbfHhhConfig) -> Self {
        assert!(cfg.admit_fraction > 0.0 && cfg.admit_fraction < 1.0, "admit_fraction in (0,1)");
        let rate = DecayRate::from_half_life(cfg.half_life);
        let levels = hierarchy.levels();
        TdbfHhh {
            hierarchy,
            rate,
            filters: (0..levels)
                .map(|l| {
                    OnDemandTdbf::new(
                        cfg.cells_per_level,
                        cfg.hashes,
                        rate,
                        cfg.seed.wrapping_add(l as u64),
                    )
                })
                .collect(),
            candidates: vec![HashMap::new(); levels],
            total: DecayedCounter::new(),
            observed: 0,
            cfg,
        }
    }

    /// The decay rate in use.
    pub fn rate(&self) -> DecayRate {
        self.rate
    }

    /// Raw (undecayed) weight observed over the detector's lifetime.
    pub fn observed_weight(&self) -> u64 {
        self.observed
    }

    /// Candidate count per level (diagnostics).
    pub fn candidate_counts(&self) -> Vec<usize> {
        self.candidates.iter().map(|c| c.len()).collect()
    }

    /// The configuration in use.
    pub fn config(&self) -> &TdbfHhhConfig {
        &self.cfg
    }

    /// A comparable digest of every behavior-relevant configuration
    /// field — what the fold path checks before merging two restored
    /// detectors (the in-process merge asserts instead).
    pub fn config_fingerprint(&self) -> (usize, usize, u64, usize, u64, u64) {
        (
            self.cfg.cells_per_level,
            self.cfg.hashes,
            self.cfg.half_life.as_nanos(),
            self.cfg.candidates_per_level,
            self.cfg.admit_fraction.to_bits(),
            self.cfg.seed,
        )
    }

    fn admit(&mut self, level: usize, p: H::Prefix, ts: Nanos, est: f64, total_now: f64) {
        let table = &mut self.candidates[level];
        if let Some(last) = table.get_mut(&p) {
            *last = ts;
            return;
        }
        if est < self.cfg.admit_fraction * total_now {
            return;
        }
        if table.len() >= self.cfg.candidates_per_level {
            // Evict the candidate with the smallest current estimate,
            // and opportunistically drop everything that has decayed
            // below half the admission bar. O(capacity), runs only when
            // the table is full and a new key qualifies.
            let bar = self.cfg.admit_fraction * total_now * 0.5;
            let filter = &self.filters[level];
            let mut weakest: Option<(H::Prefix, f64)> = None;
            let mut stale: Vec<H::Prefix> = Vec::new();
            for (&q, _) in table.iter() {
                let e = filter.estimate(&q, ts);
                if e < bar {
                    stale.push(q);
                }
                if weakest.as_ref().is_none_or(|(_, we)| e < *we) {
                    weakest = Some((q, e));
                }
            }
            for q in stale {
                table.remove(&q);
            }
            if table.len() >= self.cfg.candidates_per_level {
                let (weak_key, weak_est) = weakest.expect("table non-empty");
                if weak_est >= est {
                    return; // newcomer is weaker than everything present
                }
                table.remove(&weak_key);
            }
        }
        table.insert(p, ts);
    }
}

impl<H: Hierarchy> ContinuousDetector<H> for TdbfHhh<H> {
    fn observe(&mut self, ts: Nanos, item: H::Item, weight: u64) {
        self.observed += weight;
        self.total.add(self.rate, ts, weight as f64);
        let total_now = self.total.peek(self.rate, ts);
        for level in 0..self.filters.len() {
            let p = self.hierarchy.generalize(item, level);
            self.filters[level].insert(&p, weight as f64, ts);
            let est = self.filters[level].estimate(&p, ts);
            self.admit(level, p, ts, est, total_now);
        }
    }

    fn decayed_total(&self, now: Nanos) -> f64 {
        self.total.peek(self.rate, now)
    }

    fn report_at(&self, now: Nanos, threshold: Threshold) -> Vec<HhhReport<H::Prefix>> {
        let total = self.decayed_total(now);
        if total <= 0.0 {
            return Vec::new();
        }
        let t_abs = ((threshold.as_fraction() * total).ceil() as u64).max(1);
        let n = self.filters.len();
        let mut maps: Vec<HashMap<H::Prefix, u64>> = Vec::with_capacity(n);
        for (level, table) in self.candidates.iter().enumerate() {
            let filter = &self.filters[level];
            maps.push(
                table.keys().map(|&p| (p, filter.estimate(&p, now).round() as u64)).collect(),
            );
        }
        // Close upward (same algebraic safety as the windowed
        // detectors): every parent of a candidate is present with at
        // least its own filter estimate.
        for level in 0..n - 1 {
            let parents: Vec<H::Prefix> =
                maps[level].keys().map(|&p| self.hierarchy.parent(p).expect("non-root")).collect();
            for parent in parents {
                if !maps[level + 1].contains_key(&parent) {
                    let est = self.filters[level + 1].estimate(&parent, now);
                    let est = if est.is_finite() { est.round() as u64 } else { 0 };
                    maps[level + 1].insert(parent, est);
                }
            }
        }
        discount_bottom_up(&self.hierarchy, &maps, t_abs)
    }

    fn state_bytes(&self) -> usize {
        let filters: usize = self.filters.iter().map(|f| f.state_bytes()).sum();
        // Provisioned (not incidental) candidate capacity: the tables
        // are sized for cfg.candidates_per_level entries each.
        let per_entry = core::mem::size_of::<H::Prefix>() + 8 + 16;
        let candidates = self.candidates.len() * self.cfg.candidates_per_level * per_entry;
        filters + candidates + core::mem::size_of::<DecayedCounter>()
    }

    fn name(&self) -> &'static str {
        "tdbf-hhh"
    }
}

impl<H: Hierarchy> MergeableDetector for TdbfHhh<H> {
    /// Windowless merge: per-level filters merge cell-wise
    /// ([`OnDemandTdbf::merge`]), the decayed totals merge exactly, and
    /// candidate tables take the union (later last-touch wins), pruned
    /// back to capacity by keeping the prefixes with the largest merged
    /// decayed estimates.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.filters.len(), other.filters.len(), "hierarchy depth mismatch");
        for (a, b) in self.filters.iter_mut().zip(&other.filters) {
            a.merge(b);
        }
        self.total.merge(self.rate, &other.total);
        self.observed += other.observed;
        let (_, now) = self.total.raw();
        for (level, table) in self.candidates.iter_mut().enumerate() {
            for (&p, &ts) in &other.candidates[level] {
                let e = table.entry(p).or_insert(ts);
                *e = (*e).max(ts);
            }
            if table.len() > self.cfg.candidates_per_level {
                let filter = &self.filters[level];
                let mut ranked: Vec<(H::Prefix, f64)> =
                    table.iter().map(|(&p, _)| (p, filter.estimate(&p, now))).collect();
                ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                ranked.truncate(self.cfg.candidates_per_level);
                let keep: std::collections::HashSet<H::Prefix> =
                    ranked.into_iter().map(|(p, _)| p).collect();
                table.retain(|p, _| keep.contains(p));
            }
        }
    }

    /// Wire format: the full configuration (cell geometry, hash count,
    /// half-life, candidate capacity, admission fraction, hash seed)
    /// plus the complete decayed state — `"total"` as a raw
    /// `[value, last_ns]` counter, `"filters"` as per-level arrays of
    /// raw cells, `"candidates"` as per-level `[prefix, ts_ns]` rows
    /// sorted by prefix. Floats render in shortest round-trip form, so
    /// a restored detector ([`TdbfHhh::from_snapshot`]) is
    /// *bit-identical*: it decays, reports and merges exactly like the
    /// original.
    fn snapshot(&self) -> Option<crate::snapshot::DetectorSnapshot> {
        use crate::snapshot::json::Json;
        let counter_json = |c: &DecayedCounter| {
            let (v, last) = c.raw();
            Json::Arr(vec![Json::f64(v), Json::u64(last.as_nanos())])
        };
        let filters = Json::Arr(
            self.filters
                .iter()
                .map(|f| Json::Arr(f.cells().iter().map(counter_json).collect()))
                .collect(),
        );
        let candidates = Json::Arr(
            self.candidates
                .iter()
                .map(|table| {
                    let mut rows: Vec<(String, Nanos)> =
                        table.iter().map(|(p, &ts)| (p.to_string(), ts)).collect();
                    rows.sort_by(|a, b| a.0.cmp(&b.0));
                    Json::Arr(
                        rows.into_iter()
                            .map(|(p, ts)| Json::Arr(vec![Json::str(p), Json::u64(ts.as_nanos())]))
                            .collect(),
                    )
                })
                .collect(),
        );
        let state = Json::Obj(vec![
            ("cells_per_level".into(), Json::u64(self.cfg.cells_per_level as u64)),
            ("hashes".into(), Json::u64(self.cfg.hashes as u64)),
            ("half_life_ns".into(), Json::u64(self.cfg.half_life.as_nanos())),
            ("candidates_per_level".into(), Json::u64(self.cfg.candidates_per_level as u64)),
            ("admit_fraction".into(), Json::f64(self.cfg.admit_fraction)),
            ("seed".into(), Json::u64(self.cfg.seed)),
            ("observed".into(), Json::u64(self.observed)),
            ("total".into(), counter_json(&self.total)),
            ("filters".into(), filters),
            ("candidates".into(), candidates),
        ]);
        Some(crate::snapshot::DetectorSnapshot {
            kind: "tdbf-hhh".into(),
            total: self.observed,
            state_json: state.render(),
        })
    }

    /// Native v2 encode ([`FrameEncode`]) — byte-identical to
    /// transcoding [`snapshot`](MergeableDetector::snapshot), without
    /// rendering or parsing JSON. This is the kind the native path
    /// pays off most for: the JSON detour renders and re-parses
    /// 5 × cells_per_level × hashes float cells per report point.
    fn to_frame(&self, start: Nanos, at: Nanos) -> Option<crate::snapshot::SnapshotFrame> {
        crate::snapshot::FrameEncode::encode_frame(self, start, at).ok()
    }
}

impl<H: Hierarchy> crate::snapshot::FrameEncode for TdbfHhh<H> {
    fn frame_kind(&self) -> &'static str {
        "tdbf-hhh"
    }

    fn frame_total(&self) -> u64 {
        self.observed
    }

    fn frame_digest(&self) -> u64 {
        crate::snapshot::binary::tdbf_config_digest(
            self.cfg.cells_per_level as u64,
            self.cfg.hashes as u64,
            self.cfg.half_life.as_nanos(),
            self.cfg.candidates_per_level as u64,
            self.cfg.admit_fraction,
            self.cfg.seed,
        )
    }

    /// The v2 `tdbf-hhh` body straight from the live filters: config
    /// fields, the raw decayed total, delta-encoded cells per level
    /// (the shared [`encode_cells`](crate::snapshot::binary) recipe),
    /// and candidate rows sorted by the prefix's display form — the
    /// same order the JSON body uses.
    fn write_frame_body(&self, out: &mut Vec<u8>) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::binary::{encode_cells, put_str, put_uv};
        put_uv(out, self.cfg.cells_per_level as u64);
        put_uv(out, self.cfg.hashes as u64);
        put_uv(out, self.cfg.half_life.as_nanos());
        put_uv(out, self.cfg.candidates_per_level as u64);
        out.extend_from_slice(&self.cfg.admit_fraction.to_le_bytes());
        out.extend_from_slice(&self.cfg.seed.to_le_bytes());
        put_uv(out, self.observed);
        let (total_v, total_ns) = self.total.raw();
        out.extend_from_slice(&total_v.to_le_bytes());
        put_uv(out, total_ns.as_nanos());

        put_uv(out, self.filters.len() as u64);
        let mut cells: Vec<(f64, u64)> = Vec::new();
        for f in &self.filters {
            cells.clear();
            cells.extend(f.cells().iter().map(|c| {
                let (v, last) = c.raw();
                (v, last.as_nanos())
            }));
            encode_cells(out, &cells)?;
        }
        put_uv(out, self.candidates.len() as u64);
        for table in &self.candidates {
            let mut rows: Vec<(String, u64)> =
                table.iter().map(|(p, &ts)| (p.to_string(), ts.as_nanos())).collect();
            rows.sort_by(|a, b| a.0.cmp(&b.0));
            put_uv(out, rows.len() as u64);
            for (prefix, ts) in &rows {
                put_str(out, prefix);
                put_uv(out, *ts);
            }
        }
        Ok(())
    }
}

impl<H: Hierarchy> TdbfHhh<H>
where
    H::Prefix: std::str::FromStr,
{
    /// Rebuild a detector from a serialized
    /// [`snapshot`](MergeableDetector::snapshot) — the decode half of
    /// the round-trip codec. The snapshot carries its own
    /// configuration, so nothing but the hierarchy is needed; the
    /// restored detector is bit-identical to the original.
    pub fn from_snapshot(
        hierarchy: H,
        snap: &crate::snapshot::DetectorSnapshot,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::json::Json;
        use crate::snapshot::{req, req_arr, req_f64, req_u64, SnapshotError};

        fn counter_from_json(
            v: &Json,
            field: &'static str,
        ) -> Result<DecayedCounter, SnapshotError> {
            let pair =
                v.as_arr().ok_or(SnapshotError::Invalid { field, what: "cell is not a pair" })?;
            if pair.len() != 2 {
                return Err(SnapshotError::Invalid { field, what: "cell is not a pair" });
            }
            let value = pair[0]
                .as_f64()
                .filter(|f| f.is_finite())
                .ok_or(SnapshotError::Invalid { field, what: "cell value is not finite" })?;
            let last = pair[1].as_u64().ok_or(SnapshotError::Invalid {
                field,
                what: "cell timestamp is not an integer",
            })?;
            Ok(DecayedCounter::from_raw(value, Nanos::from_nanos(last)))
        }

        if snap.kind != "tdbf-hhh" {
            return Err(SnapshotError::Mismatch(format!(
                "expected kind `tdbf-hhh`, got `{}`",
                snap.kind
            )));
        }
        let state = snap.state()?;
        let cfg = TdbfHhhConfig {
            cells_per_level: req_u64(&state, "cells_per_level")? as usize,
            hashes: req_u64(&state, "hashes")? as usize,
            half_life: TimeSpan::from_nanos(req_u64(&state, "half_life_ns")?),
            candidates_per_level: req_u64(&state, "candidates_per_level")? as usize,
            admit_fraction: req_f64(&state, "admit_fraction")?,
            seed: req_u64(&state, "seed")?,
        };

        let filters_json = req_arr(&state, "filters")?;
        let mut filters = Vec::with_capacity(filters_json.len());
        for cells_json in filters_json {
            let cells_json = cells_json.as_arr().ok_or(SnapshotError::Invalid {
                field: "filters",
                what: "level is not an array",
            })?;
            let cells = cells_json
                .iter()
                .map(|c| counter_from_json(c, "filters"))
                .collect::<Result<Vec<_>, _>>()?;
            filters.push(cells);
        }

        let candidates_json = req_arr(&state, "candidates")?;
        let mut candidates = Vec::with_capacity(candidates_json.len());
        for rows in candidates_json {
            let rows = rows.as_arr().ok_or(SnapshotError::Invalid {
                field: "candidates",
                what: "level is not an array",
            })?;
            let mut table = Vec::with_capacity(rows.len());
            for row in rows {
                let row = row.as_arr().filter(|r| r.len() == 2).ok_or(SnapshotError::Invalid {
                    field: "candidates",
                    what: "row is not a pair",
                })?;
                let prefix = row[0]
                    .as_str()
                    .ok_or(SnapshotError::Invalid {
                        field: "candidates",
                        what: "prefix is not a string",
                    })?
                    .parse::<H::Prefix>()
                    .map_err(|_| SnapshotError::Invalid {
                        field: "candidates",
                        what: "prefix does not parse",
                    })?;
                let ts = row[1].as_u64().ok_or(SnapshotError::Invalid {
                    field: "candidates",
                    what: "timestamp is not an integer",
                })?;
                table.push((prefix, Nanos::from_nanos(ts)));
            }
            candidates.push(table);
        }

        let total = counter_from_json(req(&state, "total")?, "total")?;
        let observed = req_u64(&state, "observed")?;
        Self::from_wire(hierarchy, cfg, observed, total, filters, candidates, snap.total)
    }

    /// The validated decode core both wire formats share: build a
    /// detector from already-parsed configuration and state. Wire
    /// input is untrusted — geometry is bounded *before* it drives any
    /// allocation, cell counts must match the geometry, candidate
    /// tables must fit their capacity and carry no duplicates, every
    /// float must be finite, and the envelope total must equal the
    /// observed weight.
    pub(crate) fn from_wire(
        hierarchy: H,
        cfg: TdbfHhhConfig,
        observed: u64,
        total: DecayedCounter,
        filters: Vec<Vec<DecayedCounter>>,
        candidates: Vec<Vec<(H::Prefix, Nanos)>>,
        envelope_total: u64,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        if !(cfg.admit_fraction > 0.0 && cfg.admit_fraction < 1.0) {
            return Err(SnapshotError::Invalid {
                field: "admit_fraction",
                what: "must be in (0, 1)",
            });
        }
        if cfg.cells_per_level == 0 || cfg.hashes == 0 || cfg.half_life.is_zero() {
            return Err(SnapshotError::Invalid {
                field: "cells_per_level",
                what: "geometry and half-life must be non-zero",
            });
        }
        if cfg.cells_per_level.saturating_mul(cfg.hashes) > crate::snapshot::MAX_WIRE_CAPACITY
            || cfg.hashes > 64
            || cfg.candidates_per_level > crate::snapshot::MAX_WIRE_CAPACITY
        {
            return Err(SnapshotError::Invalid {
                field: "cells_per_level",
                what: "geometry exceeds MAX_WIRE_CAPACITY",
            });
        }
        let finite = |c: &DecayedCounter, field: &'static str| {
            if c.raw().0.is_finite() {
                Ok(())
            } else {
                Err(SnapshotError::Invalid { field, what: "cell value is not finite" })
            }
        };
        finite(&total, "total")?;

        let mut detector = TdbfHhh::new(hierarchy, cfg);
        let levels = detector.filters.len();
        if filters.len() != levels {
            return Err(SnapshotError::Mismatch(format!(
                "snapshot has {} levels, hierarchy has {levels}",
                filters.len()
            )));
        }
        for (filter, cells) in detector.filters.iter_mut().zip(filters) {
            if cells.len() != filter.cell_count() {
                return Err(SnapshotError::Invalid {
                    field: "filters",
                    what: "cell count does not match the geometry",
                });
            }
            for c in &cells {
                finite(c, "filters")?;
            }
            filter.restore_cells(cells);
        }

        if candidates.len() != levels {
            return Err(SnapshotError::Invalid {
                field: "candidates",
                what: "one table per level required",
            });
        }
        for (table, rows) in detector.candidates.iter_mut().zip(candidates) {
            if rows.len() > detector.cfg.candidates_per_level {
                return Err(SnapshotError::Invalid {
                    field: "candidates",
                    what: "more candidates than capacity",
                });
            }
            for (prefix, ts) in rows {
                if table.insert(prefix, ts).is_some() {
                    return Err(SnapshotError::Invalid {
                        field: "candidates",
                        what: "duplicate prefix",
                    });
                }
            }
        }

        detector.total = total;
        detector.observed = observed;
        if detector.observed != envelope_total {
            return Err(SnapshotError::Invalid {
                field: "total",
                what: "envelope total does not equal the observed weight",
            });
        }
        Ok(detector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_hierarchy::Ipv4Hierarchy;
    use hhh_nettypes::Ipv4Prefix;

    fn cfg() -> TdbfHhhConfig {
        TdbfHhhConfig {
            cells_per_level: 2048,
            hashes: 4,
            half_life: TimeSpan::from_secs(5),
            candidates_per_level: 128,
            admit_fraction: 0.001,
            seed: 99,
        }
    }

    fn ip(s: &str) -> u32 {
        s.parse::<Ipv4Prefix>().unwrap().addr()
    }

    /// Background: 50 sources, 100 B every 10 ms each, spread across
    /// distinct /8s.
    fn feed_background(d: &mut TdbfHhh<Ipv4Hierarchy>, from: Nanos, until: Nanos) {
        let mut t = from;
        while t < until {
            for s in 0..50u32 {
                d.observe(t, ((s % 100) << 24) | (0xAA00 + s), 100);
            }
            t += TimeSpan::from_millis(10);
        }
    }

    #[test]
    fn steady_heavy_source_reported_any_time() {
        let mut d = TdbfHhh::new(Ipv4Hierarchy::bytes(), cfg());
        let heavy = ip("10.1.1.1");
        let mut t = Nanos::ZERO;
        // Heavy source: 2000 B/ms = 40% of combined traffic.
        while t < Nanos::from_secs(30) {
            for s in 0..30u32 {
                d.observe(t, ((s % 100) << 24) | (0xAA00 + s), 100);
            }
            d.observe(t, heavy, 2000);
            t += TimeSpan::from_millis(10);
        }
        // Query at several unaligned instants.
        for probe_ms in [12_345u64, 20_001, 29_876] {
            let now = Nanos::from_millis(probe_ms);
            let r = d.report_at(now, Threshold::percent(10.0));
            assert!(
                r.iter().any(|x| x.prefix == Ipv4Prefix::host(heavy)),
                "heavy host missing at t={probe_ms}ms: {r:?}"
            );
        }
    }

    #[test]
    fn boundary_straddling_burst_is_visible() {
        // The paper's core scenario. Disjoint 5 s windows cut at t=5 s;
        // a burst on [4.5 s, 5.5 s) puts half its bytes in each window
        // and can stay below a per-window threshold in both. The
        // windowless detector, probed right after the burst, sees it
        // whole (modulo decay).
        let mut d = TdbfHhh::new(Ipv4Hierarchy::bytes(), cfg());
        let burster = ip("77.7.7.7");
        let mut t = Nanos::ZERO;
        while t < Nanos::from_secs(10) {
            for s in 0..50u32 {
                d.observe(t, ((s % 100) << 24) | (0xAA00 + s), 100);
            }
            if t >= Nanos::from_millis(4_500) && t < Nanos::from_millis(5_500) {
                d.observe(t, burster, 4000);
            }
            t += TimeSpan::from_millis(10);
        }
        // Background rate: 50×100 B / 10 ms = 500 kB/s. Burst adds
        // 400 kB/s for 1 s. Within its second, the burster is ~44% of
        // traffic; within either 5 s window, ~7.4%.
        let window_threshold = Threshold::percent(10.0);
        // A disjoint-window exact detector would miss it at 10%:
        // (verified in the hhh-window integration tests; here we check
        // the windowless side.)
        let probe = Nanos::from_millis(5_600);
        let r = d.report_at(probe, window_threshold);
        assert!(
            r.iter().any(|x| x.prefix == Ipv4Prefix::host(burster)),
            "burst invisible to the windowless detector: {r:?}"
        );
    }

    #[test]
    fn old_traffic_fades() {
        let mut d = TdbfHhh::new(Ipv4Hierarchy::bytes(), cfg());
        let noisy = ip("200.1.2.3");
        let mut t = Nanos::ZERO;
        while t < Nanos::from_secs(5) {
            d.observe(t, noisy, 1000);
            t += TimeSpan::from_millis(5);
        }
        feed_background(&mut d, Nanos::from_secs(5), Nanos::from_secs(60));
        // Ten half-lives after its last packet, the old source must be
        // gone even at a 1% threshold.
        let r = d.report_at(Nanos::from_secs(60), Threshold::percent(1.0));
        assert!(
            !r.iter().any(|x| x.prefix == Ipv4Prefix::host(noisy)),
            "stale source still reported: {r:?}"
        );
    }

    #[test]
    fn discounting_suppresses_covered_ancestors() {
        let mut d = TdbfHhh::new(Ipv4Hierarchy::bytes(), cfg());
        let heavy = ip("10.1.1.1");
        let mut t = Nanos::ZERO;
        while t < Nanos::from_secs(20) {
            for s in 0..20u32 {
                d.observe(t, ((s % 100) << 24) | (0xAA00 + s), 100);
            }
            d.observe(t, heavy, 3000);
            t += TimeSpan::from_millis(10);
        }
        let r = d.report_at(Nanos::from_secs(20), Threshold::percent(20.0));
        // The host is an HHH; its /24, /16, /8 carry (almost) nothing
        // beyond it and must be discounted away.
        assert!(r.iter().any(|x| x.prefix == Ipv4Prefix::host(heavy)));
        for level in 1..4 {
            assert!(
                !r.iter().any(|x| x.level == level && x.prefix.contains_addr(heavy)),
                "covered ancestor at level {level} leaked into the report: {r:?}"
            );
        }
    }

    #[test]
    fn decayed_total_tracks_rate() {
        let mut d = TdbfHhh::new(Ipv4Hierarchy::bytes(), cfg());
        let mut t = Nanos::ZERO;
        // 100 kB/s for 60 s (≫ half-life, converged).
        while t < Nanos::from_secs(60) {
            d.observe(t, 0x01020304, 1000);
            t += TimeSpan::from_millis(10);
        }
        let total = d.decayed_total(t);
        let expect = d.rate().steady_state(100_000.0);
        let rel = (total - expect).abs() / expect;
        assert!(rel < 0.05, "decayed total {total} vs steady state {expect}");
    }

    #[test]
    fn candidate_tables_stay_bounded() {
        let mut c = cfg();
        c.candidates_per_level = 32;
        let mut d = TdbfHhh::new(Ipv4Hierarchy::bytes(), c);
        let mut t = Nanos::ZERO;
        // Many distinct sources churning.
        for i in 0..200_000u32 {
            d.observe(t, i.wrapping_mul(2_654_435_761), 100);
            t += TimeSpan::from_micros(50);
        }
        for (l, n) in d.candidate_counts().iter().enumerate() {
            assert!(*n <= 32, "level {l} candidate table overflowed: {n}");
        }
        assert_eq!(d.observed_weight(), 200_000 * 100);
    }

    #[test]
    fn observe_batch_equals_sequential_observe() {
        // The ContinuousDetector batch entry point (default impl) must
        // be indistinguishable from the per-packet path.
        let mut seq = TdbfHhh::new(Ipv4Hierarchy::bytes(), cfg());
        let mut bat = TdbfHhh::new(Ipv4Hierarchy::bytes(), cfg());
        let batch: Vec<(Nanos, u32, u64)> = (0..5_000u64)
            .map(|i| {
                let src = if i % 5 == 0 { ip("10.1.1.1") } else { (i as u32 % 80) << 24 | 0xBB00 };
                (Nanos::from_millis(i), src, 200 + i % 700)
            })
            .collect();
        for &(ts, item, w) in &batch {
            seq.observe(ts, item, w);
        }
        bat.observe_batch(&batch);
        let now = Nanos::from_secs(5);
        assert_eq!(seq.decayed_total(now), bat.decayed_total(now));
        assert_eq!(
            seq.report_at(now, Threshold::percent(5.0)),
            bat.report_at(now, Threshold::percent(5.0))
        );
        assert_eq!(seq.observed_weight(), bat.observed_weight());
    }

    #[test]
    fn merged_shards_agree_with_single_detector() {
        // Partition a stream by key across 3 detectors, merge, and
        // compare against one detector that saw everything.
        let mut single = TdbfHhh::new(Ipv4Hierarchy::bytes(), cfg());
        let mut shards: Vec<TdbfHhh<Ipv4Hierarchy>> =
            (0..3).map(|_| TdbfHhh::new(Ipv4Hierarchy::bytes(), cfg())).collect();
        let mut t = Nanos::ZERO;
        while t < Nanos::from_secs(20) {
            for s in 0..30u32 {
                let src = ((s % 100) << 24) | (0xAA00 + s);
                single.observe(t, src, 100);
                shards[s as usize % 3].observe(t, src, 100);
            }
            single.observe(t, ip("10.1.1.1"), 2000);
            shards[0].observe(t, ip("10.1.1.1"), 2000);
            t += TimeSpan::from_millis(10);
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }
        let now = Nanos::from_secs(20);
        assert_eq!(single.observed_weight(), merged.observed_weight());
        let rel = (single.decayed_total(now) - merged.decayed_total(now)).abs()
            / single.decayed_total(now);
        assert!(rel < 1e-9, "decayed totals diverged: rel {rel}");
        // Key-partitioned filters share no cells' keys, so estimates —
        // and the reported HHH set — must coincide.
        let a = single.report_at(now, Threshold::percent(10.0));
        let b = merged.report_at(now, Threshold::percent(10.0));
        let pa: Vec<_> = a.iter().map(|r| r.prefix).collect();
        let pb: Vec<_> = b.iter().map(|r| r.prefix).collect();
        assert_eq!(pa, pb, "sharded TDBF-HHH report diverged");
    }

    #[test]
    fn empty_detector_reports_nothing() {
        let d = TdbfHhh::new(Ipv4Hierarchy::bytes(), cfg());
        assert!(d.report_at(Nanos::from_secs(1), Threshold::percent(1.0)).is_empty());
        assert_eq!(d.decayed_total(Nanos::from_secs(1)), 0.0);
        assert_eq!(d.name(), "tdbf-hhh");
        assert!(d.state_bytes() > 0);
    }
}
