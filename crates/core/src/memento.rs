//! Window-native HHH: per-level Memento-style sliding summaries.
//!
//! Every windowed detector in this crate forgets via the engine —
//! `reset()` at boundaries, or a ring of per-epoch states merged per
//! position (`SlidingExact`). This detector forgets *by itself*: each
//! hierarchy level holds a [`SlidingSummary`] over the last `window`
//! packets, so window maintenance is O(1) per packet (a global frame
//! bump, lazy expiry at query time) instead of O(window/step) detector
//! merges per report position. Reports always reflect the most recent
//! `window` packets, no matter how often they are requested — the
//! window-native schedule the Memento line of work (Ben-Basat et al.,
//! CoNEXT 2018) argues for.

use crate::detector::{HhhDetector, MergeableDetector};
use crate::exact::discount_bottom_up;
use crate::report::{HhhReport, Threshold};
use hhh_hierarchy::Hierarchy;
use hhh_sketches::SlidingSummary;
use std::collections::HashMap;

/// Per-level sliding-summary HHH detector over the last `window`
/// packets.
#[derive(Clone, Debug)]
pub struct MementoHhh<H: Hierarchy> {
    hierarchy: H,
    /// One sliding summary per level; `levels[0]` tracks exact items.
    /// All levels see the same item sequence, so their frame clocks
    /// advance in lockstep.
    levels: Vec<SlidingSummary<H::Prefix>>,
    total: u64,
    /// Reusable per-batch staging buffer for one level's prefixes —
    /// grown once, never reallocated on the steady-state hot path
    /// (the same zero-alloc pattern as
    /// [`crate::SpaceSavingHhh::observe_batch`]).
    scratch: Vec<(H::Prefix, u64)>,
}

impl<H: Hierarchy> MementoHhh<H> {
    /// A detector whose reports cover the last `window` packets, with
    /// `frames` sub-frames per window and `counters_per_level` tracked
    /// prefixes at each level. For a threshold θ,
    /// `counters_per_level ≥ 2/θ` keeps both error sides comfortable
    /// (as for [`crate::SpaceSavingHhh`]).
    pub fn new(hierarchy: H, window: usize, frames: usize, counters_per_level: usize) -> Self {
        let levels = (0..hierarchy.levels())
            .map(|_| SlidingSummary::new(window, frames, counters_per_level))
            .collect();
        MementoHhh { hierarchy, levels, total: 0, scratch: Vec::new() }
    }

    /// The window length in packets.
    pub fn window(&self) -> usize {
        self.levels[0].window()
    }

    /// Tracked prefixes per level (the construction parameter).
    pub fn capacity(&self) -> usize {
        self.levels[0].capacity()
    }

    /// The per-level summaries (read-only, for diagnostics).
    pub fn level_summaries(&self) -> &[SlidingSummary<H::Prefix>] {
        &self.levels
    }

    /// Traffic mass currently inside the window — the root level tracks
    /// a single key (the root prefix), is never under eviction
    /// pressure, and therefore carries the exact frame-aligned windowed
    /// total.
    pub fn windowed_total(&self) -> u64 {
        self.levels.last().expect("at least one level").estimate(&self.hierarchy.root())
    }

    /// Per-level estimate maps closed upward, same algebraic safety as
    /// the other per-level detectors: an ancestor of a tracked prefix
    /// gets at least the sum of its tracked children so the discount
    /// never drops a charge on a missing parent.
    fn level_maps(&self) -> Vec<HashMap<H::Prefix, u64>> {
        let n = self.levels.len();
        let mut maps: Vec<HashMap<H::Prefix, u64>> =
            self.levels.iter().map(|s| s.live_entries().collect()).collect();
        for level in 0..n - 1 {
            let mut child_sums: HashMap<H::Prefix, u64> = HashMap::new();
            for (&p, &c) in &maps[level] {
                let parent = self.hierarchy.parent(p).expect("non-root");
                *child_sums.entry(parent).or_default() += c;
            }
            for (parent, sum) in child_sums {
                let e = maps[level + 1].entry(parent).or_insert(0);
                *e = (*e).max(sum);
            }
        }
        maps
    }
}

impl<H: Hierarchy> HhhDetector<H> for MementoHhh<H> {
    fn observe(&mut self, item: H::Item, weight: u64) {
        self.total += weight;
        for level in 0..self.levels.len() {
            let p = self.hierarchy.generalize(item, level);
            self.levels[level].insert_weighted(p, weight);
        }
    }

    /// Level-major batching, same rationale as
    /// [`crate::SpaceSavingHhh::observe_batch`]: stage the level's
    /// prefixes in the reusable scratch buffer (a pure mask-and-copy
    /// with a loop-invariant mask, so it vectorizes), then sweep the
    /// level's summary over the staged batch before moving to the
    /// next level.
    fn observe_batch(&mut self, batch: &[(H::Item, u64)]) {
        for &(_, weight) in batch {
            self.total += weight;
        }
        let MementoHhh { hierarchy, levels, scratch, .. } = self;
        for (level, summary) in levels.iter_mut().enumerate() {
            scratch.clear();
            scratch.extend(batch.iter().map(|&(item, w)| (hierarchy.generalize(item, level), w)));
            for &(p, w) in scratch.iter() {
                summary.insert_weighted(p, w);
            }
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    /// The HHH set over the last `window` packets. The relative
    /// threshold applies to the *windowed* total, not the lifetime
    /// total — this detector's reports are always about the window.
    fn report(&self, threshold: Threshold) -> Vec<HhhReport<H::Prefix>> {
        let t = threshold.absolute(self.windowed_total());
        let mut reports = discount_bottom_up(&self.hierarchy, &self.level_maps(), t);
        // Estimates are under-estimates (Misra-Gries side of the
        // mirror): the reported discounted mass is itself a lower
        // bound on the frame-aligned truth.
        for r in &mut reports {
            r.lower_bound = r.discounted;
        }
        reports
    }

    fn reset(&mut self) {
        for s in &mut self.levels {
            s.clear();
        }
        self.total = 0;
    }

    fn state_bytes(&self) -> usize {
        self.levels.iter().map(|s| s.state_bytes()).sum()
    }

    fn name(&self) -> &'static str {
        "memento-hhh"
    }
}

impl<H: Hierarchy> MergeableDetector for MementoHhh<H> {
    /// Per-level [`SlidingSummary::merge`]: the other detector's live
    /// window mass folds into this detector's current frame and then
    /// expires on this detector's clock. Approximate (the shards'
    /// frame clocks are independent), estimates stay under-estimates
    /// of the combined stream. No snapshot wire format (the default
    /// `snapshot() = None`) and no retraction — sliding shard pools
    /// fall back to the ring merge for this kind.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.levels.len(), other.levels.len(), "hierarchy depth mismatch");
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b);
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactHhh;
    use hhh_hierarchy::Ipv4Hierarchy;

    /// A stream whose heavy set changes halfway: host A dominates the
    /// first phase, host B the second.
    fn two_phase(n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| {
                let heavy = if i < n / 2 { 0x0A010101 } else { 0x14020202 };
                if i % 2 == 0 {
                    heavy
                } else {
                    let j = (i as u32).wrapping_mul(2_654_435_761);
                    0x28000000 | (j & 0x00FF_FFFF)
                }
            })
            .collect()
    }

    #[test]
    fn reports_reflect_only_the_window() {
        let h = Ipv4Hierarchy::bytes();
        let n = 40_000;
        let mut m = MementoHhh::new(h, 4_000, 10, 256);
        for item in two_phase(n) {
            m.observe(item, 1);
        }
        let found: Vec<String> =
            m.report(Threshold::percent(10.0)).iter().map(|r| r.prefix.to_string()).collect();
        assert!(
            found.iter().any(|p| p == "20.2.2.2/32"),
            "current heavy host missing from {found:?}"
        );
        assert!(
            !found.iter().any(|p| p.starts_with("10.1.1.1")),
            "phase-one host should have slid out of the window: {found:?}"
        );
        // Lifetime total keeps counting; the windowed total doesn't.
        assert_eq!(m.total(), n as u64);
        let wt = m.windowed_total();
        assert!(wt <= 4_000 + 400, "windowed total {wt} exceeds window + frame slack");
    }

    /// With capacity above the distinct-key count the windowed report
    /// matches an exact detector fed only the window's packets
    /// (frame-aligned, so feed exactly the retained span).
    #[test]
    fn matches_exact_on_frame_aligned_window() {
        let h = Ipv4Hierarchy::bytes();
        let window = 1_000;
        let frames = 10;
        let mut m = MementoHhh::new(h, window, frames, 512);
        let stream = two_phase(10_000);
        for &item in &stream {
            m.observe(item, 1);
        }
        // 10_000 is a frame boundary, so the current (retained but
        // empty) frame holds nothing and the live mass is exactly the
        // last `window` packets.
        let span = window;
        let mut exact = ExactHhh::new(h);
        for &item in &stream[stream.len() - span..] {
            exact.observe(item, 1);
        }
        for pct in [5.0, 10.0] {
            let t = Threshold::percent(pct);
            let truth: std::collections::HashSet<_> =
                exact.report(t).into_iter().map(|r| r.prefix).collect();
            let found: std::collections::HashSet<_> =
                m.report(t).into_iter().map(|r| r.prefix).collect();
            assert_eq!(found, truth, "at {pct}%");
        }
        assert_eq!(m.windowed_total(), span as u64);
    }

    #[test]
    fn merge_folds_windows() {
        let h = Ipv4Hierarchy::bytes();
        let mut a = MementoHhh::new(h, 1_000, 10, 128);
        let mut b = MementoHhh::new(h, 1_000, 10, 128);
        for i in 0..500u32 {
            a.observe(0x0A010101, 1);
            b.observe(0x14020202, 1);
            let _ = i;
        }
        a.merge(&b);
        assert_eq!(a.total(), 1_000);
        let found: Vec<String> =
            a.report(Threshold::percent(20.0)).iter().map(|r| r.prefix.to_string()).collect();
        assert!(found.iter().any(|p| p == "10.1.1.1/32"), "{found:?}");
        assert!(found.iter().any(|p| p == "20.2.2.2/32"), "{found:?}");
    }

    #[test]
    fn batch_equals_scalar() {
        let h = Ipv4Hierarchy::bytes();
        let stream: Vec<(u32, u64)> = two_phase(5_000).into_iter().map(|i| (i, 1)).collect();
        let mut scalar = MementoHhh::new(h, 800, 8, 64);
        let mut batched = MementoHhh::new(h, 800, 8, 64);
        for &(item, w) in &stream {
            scalar.observe(item, w);
        }
        for chunk in stream.chunks(333) {
            batched.observe_batch(chunk);
        }
        assert_eq!(scalar.total(), batched.total());
        let t = Threshold::percent(5.0);
        assert_eq!(scalar.report(t), batched.report(t));
    }

    #[test]
    fn reset_clears_and_names() {
        let h = Ipv4Hierarchy::bytes();
        let mut m = MementoHhh::new(h, 100, 5, 16);
        m.observe(42, 9);
        assert!(m.state_bytes() > 0);
        assert_eq!(m.name(), "memento-hhh");
        assert!(m.snapshot().is_none(), "window-native kind has no wire format yet");
        m.reset();
        assert_eq!(m.total(), 0);
        assert_eq!(m.windowed_total(), 0);
        assert!(m.report(Threshold::percent(1.0)).is_empty());
    }
}
