//! **Native frame encoding**: detectors write v2 bodies straight from
//! their own state.
//!
//! PR 4 made the *decode* side of wire-format v2 binary-native
//! ([`RestoredDetector::from_frame`](super::RestoredDetector::from_frame)
//! goes frame body → live detector, no JSON anywhere), but encode still
//! went `snapshot()` → JSON body → parse → frame — the hot shard-side
//! path paid a full JSON render *and* re-parse per report point.
//! [`FrameEncode`] closes that gap: a detector appends its v2 body
//! bytes directly, and the provided [`encode_frame`](FrameEncode::encode_frame)
//! wraps them in a [`SnapshotFrame`].
//!
//! ## The byte-identity contract
//!
//! The native path is an *optimization*, never a second format: for
//! every detector kind,
//!
//! ```text
//! FrameEncode::encode_frame(d, start, at).encode()
//!     == d.snapshot().unwrap().to_frame(start, at).unwrap().encode()
//! ```
//!
//! byte for byte. The `snapshot()` → [`DetectorSnapshot::to_frame`]
//! transcode survives as the **reference implementation** the
//! differential proptests pin the native writers against
//! (`tests/snapshot_roundtrip.rs`), and the shared config-digest and
//! cell-delta helpers in [`binary`](super::binary) make divergence a
//! compile-time refactor rather than a silent drift.
//!
//! Pipelines reach the native path through the provided
//! [`MergeableDetector::to_frame`](crate::MergeableDetector::to_frame):
//! sinks that consume v2 frames (binary files, sockets, in-process
//! channels — the `SnapshotTransport` layer in `hhh-window`) advertise
//! it, and the engines hand them natively encoded frames instead of
//! JSON-bodied snapshots.

use super::binary::SnapshotFrame;
use super::SnapshotError;
use hhh_nettypes::Nanos;
use std::borrow::Cow;

/// Write a wire-format v2 state body directly from detector state — no
/// intermediate [`DetectorSnapshot`](super::DetectorSnapshot), no JSON
/// detour.
///
/// Implemented by every snapshot-capable detector (`ExactHhh`,
/// `SpaceSavingHhh`, `Rhhh`, `TdbfHhh`). Implementations must uphold
/// the byte-identity contract (module docs): the body, kind, total and
/// digest must equal what transcoding the detector's `snapshot()`
/// produces.
pub trait FrameEncode {
    /// The stable wire `kind` label of the frame header.
    fn frame_kind(&self) -> &'static str;

    /// The envelope total (undecayed weight covered by the state).
    fn frame_total(&self) -> u64;

    /// The FNV-1a-64 config digest the frame header carries — must use
    /// the same per-kind digest recipe the decoders verify.
    fn frame_digest(&self) -> u64;

    /// Append the v2 state body (layout per kind) to `out`.
    fn write_frame_body(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError>;

    /// Assemble a full [`SnapshotFrame`] carrying the report-window
    /// geometry `start..=at` (provided; built on the four methods
    /// above).
    fn encode_frame(&self, start: Nanos, at: Nanos) -> Result<SnapshotFrame, SnapshotError> {
        let mut body = Vec::with_capacity(256);
        self.write_frame_body(&mut body)?;
        Ok(SnapshotFrame {
            start,
            at,
            kind: Cow::Borrowed(self.frame_kind()),
            total: self.frame_total(),
            digest: self.frame_digest(),
            body,
        })
    }
}
