//! Snapshot wire format **version 2**: binary framing for the hot
//! aggregation path.
//!
//! Version 1 (the JSON lines in [`super`]) is self-describing and
//! diff-able, but `BENCH_pr3.json` shows it is the aggregation-tier
//! bottleneck: a `tdbf-hhh` state carries 5 × 4096 × 4 decayed cells
//! as shortest-form float text, and decoding them caps the tier at
//! ~32 snapshots/s while the shards ingest millions of packets/s.
//! Version 2 keeps the envelope self-describing but moves the bodies
//! to a compact binary form the aggregator can decode at memory speed:
//!
//! ```text
//! frame   := magic(4 = "HHF2") version(u8 = 2) len(u32 LE)  payload
//! payload := kind(varint length + UTF-8 bytes)
//!            config_digest(u64 LE)
//!            start_ns(varint) at_ns(varint) total(varint)
//!            body(remaining bytes, layout per kind)
//! ```
//!
//! * **length prefix** — `len` counts the payload bytes, so frames
//!   concatenate into streams and a reader can skip a frame without
//!   understanding its body. `len` is capped by [`MAX_FRAME_LEN`]: an
//!   oversize prefix is a typed error, never a pathological
//!   allocation.
//! * **self-describing** — the magic and version make format sniffing
//!   trivial (a JSON stream starts with `{`, a v2 stream with the
//!   magic); `kind` rides in the header; `config_digest` is an
//!   FNV-1a-64 digest of the body's configuration fields, verified on
//!   decode so a corrupt body fails loudly *before* two incompatible
//!   states fold.
//! * **window geometry** — `start_ns`/`at_ns` carry the report
//!   window's bounds (equal for windowless probes), so folded reports
//!   reconstruct exact window bounds; v1 carries the same pair as
//!   `"start_ns"`/`"at_ns"` on its state lines.
//! * **integer packing** — counts, capacities and timestamps are
//!   LEB128 varints; signed deltas are zigzag-coded. `f64` state
//!   (decayed cells, admission fractions) travels as raw little-endian
//!   IEEE-754 bits, so restored floats are **bit-identical** — the
//!   same guarantee v1's shortest-form rendering makes.
//! * **delta-encoded TDBF cells** — each filter level stores a
//!   *baseline* cell (the most common `(value, last_ns)` pair, usually
//!   the never-touched `(0.0, 0)`) and only the cells that differ, as
//!   `(index-gap varint, f64 bits, zigzag Δns)` triples. A
//!   mostly-decayed or sparsely touched filter shrinks by orders of
//!   magnitude; a saturated one pays ≤ 2 bytes/cell over the dense
//!   form.
//!
//! Report records ride in v2 streams as frames of kind `report` whose
//! body is the verbatim UTF-8 of the v1 report line — reports are
//! small, human-facing, and not worth a second schema — which makes
//! whole-stream transcoding (v1 → v2 → v1) byte-identical.
//!
//! The encoding is **medium-independent**: a frame on a socket (or an
//! in-process channel) is the same bytes as a frame in a file. Frames
//! self-delimit via the length prefix and self-describe via the
//! header, so the snapshot transports in `hhh-window` just move them —
//! and a capture of a TCP shard stream diffs clean against the same
//! shard's stream file.
//!
//! Decoding shares the typed [`SnapshotError`] surface with v1:
//! truncation, bad magic, version skew, digest mismatches and hostile
//! capacities all come back as errors, never panics or unbounded
//! allocations (the structure-aware fuzz tests pin this).

use super::{req, req_arr, req_f64, req_u64, DetectorSnapshot, SnapshotError};
use crate::snapshot::json::Json;
use crate::snapshot::MAX_WIRE_CAPACITY;
use hhh_nettypes::Nanos;
use std::borrow::Cow;
use std::collections::HashMap;

/// First bytes of every v2 frame.
pub const FRAME_MAGIC: [u8; 4] = *b"HHF2";

/// The frame-format version this build reads and writes.
pub const FRAME_VERSION: u8 = 2;

/// Bytes before the payload: magic, version, payload length.
pub const FRAME_HEADER_LEN: usize = 9;

/// Upper bound on one frame's payload. Wire input is untrusted: the
/// length prefix drives an allocation, so it is capped far above any
/// real snapshot (a maximal TDBF state is a few MiB) but low enough
/// that a hostile prefix cannot exhaust memory.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// The kind header of the report-record frames (body = the verbatim
/// v1 report line).
pub const REPORT_KIND: &str = "report";

/// The two snapshot stream encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFormat {
    /// Version 1: JSON lines (`report` / `state` objects).
    Json,
    /// Version 2: binary frames (this module).
    Binary,
}

impl WireFormat {
    /// Stable CLI label (`json` / `binary`).
    pub fn label(self) -> &'static str {
        match self {
            WireFormat::Json => "json",
            WireFormat::Binary => "binary",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<WireFormat> {
        match s {
            "json" | "v1" => Some(WireFormat::Json),
            "binary" | "v2" => Some(WireFormat::Binary),
            _ => None,
        }
    }
}

/// One decoded v2 frame: the binary counterpart of a v1 `state` line
/// (or, for [`REPORT_KIND`], a `report` line).
///
/// The body stays as raw bytes until something interprets it — the
/// hot fold path goes body → detector directly
/// ([`RestoredDetector::from_frame`](super::RestoredDetector::from_frame)),
/// bypassing JSON entirely; the transcode path goes body → canonical
/// JSON ([`DetectorSnapshot::from_frame`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotFrame {
    /// Start of the report window the state covers (== `at` for
    /// windowless probes).
    pub start: Nanos,
    /// The report point the snapshot was taken at.
    pub at: Nanos,
    /// Detector kind (`exact`, `ss-hhh`, `rhhh`, `mvpipe`,
    /// `tdbf-hhh`), or [`REPORT_KIND`].
    pub kind: Cow<'static, str>,
    /// Total weight covered by the state (report records: the window
    /// total).
    pub total: u64,
    /// FNV-1a-64 digest of the body's configuration fields (report
    /// records: of the whole body). Verified when the body is
    /// interpreted.
    pub digest: u64,
    /// The binary body, layout per `kind`.
    pub body: Vec<u8>,
}

impl SnapshotFrame {
    /// Serialize the frame (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.body.len() + 64);
        put_uv(&mut payload, self.kind.len() as u64);
        payload.extend_from_slice(self.kind.as_bytes());
        payload.extend_from_slice(&self.digest.to_le_bytes());
        put_uv(&mut payload, self.start.as_nanos());
        put_uv(&mut payload, self.at.as_nanos());
        put_uv(&mut payload, self.total);
        payload.extend_from_slice(&self.body);

        let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        out.extend_from_slice(&FRAME_MAGIC);
        out.push(FRAME_VERSION);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode one frame from the front of `buf`; returns the frame and
    /// the bytes consumed (frames concatenate into streams).
    pub fn decode(buf: &[u8]) -> Result<(SnapshotFrame, usize), SnapshotError> {
        if buf.len() < FRAME_HEADER_LEN {
            return Err(truncated(buf.len()));
        }
        let len = payload_len(&buf[..FRAME_HEADER_LEN])?;
        let end = FRAME_HEADER_LEN + len;
        if buf.len() < end {
            return Err(truncated(buf.len()));
        }
        let frame = Self::decode_payload(&buf[FRAME_HEADER_LEN..end])?;
        Ok((frame, end))
    }

    /// Decode the payload of a frame whose header
    /// ([`payload_len`]) was already read — the streaming entry point.
    pub fn decode_payload(payload: &[u8]) -> Result<SnapshotFrame, SnapshotError> {
        let mut r = ByteReader::new(payload);
        let kind = r.str_("kind")?;
        let digest = r.u64_le("config_digest")?;
        let start = Nanos::from_nanos(r.uv("start_ns")?);
        let at = Nanos::from_nanos(r.uv("at_ns")?);
        let total = r.uv("total")?;
        let body = r.rest().to_vec();
        Ok(SnapshotFrame { start, at, kind: Cow::Owned(kind), total, digest, body })
    }

    /// Build a report-record frame from a rendered v1 report line.
    pub fn report(line: &str, start: Nanos, at: Nanos, total: u64) -> SnapshotFrame {
        SnapshotFrame {
            start,
            at,
            kind: Cow::Borrowed(REPORT_KIND),
            total,
            digest: fnv1a(line.as_bytes()),
            body: line.as_bytes().to_vec(),
        }
    }

    /// The verbatim v1 report line of a [`REPORT_KIND`] frame, with
    /// its digest verified.
    pub fn report_line(&self) -> Result<&str, SnapshotError> {
        if self.kind != REPORT_KIND {
            return Err(SnapshotError::Kind(self.kind.clone().into_owned()));
        }
        if fnv1a(&self.body) != self.digest {
            return Err(digest_mismatch());
        }
        core::str::from_utf8(&self.body)
            .map_err(|_| SnapshotError::Invalid { field: "report", what: "body is not UTF-8" })
    }

    /// Decode the body per `kind`, verifying the config digest.
    pub(crate) fn decoded_body(&self) -> Result<Body, SnapshotError> {
        let mut r = ByteReader::new(&self.body);
        let (body, digest) = match &*self.kind {
            "exact" => {
                let b = ExactBody::decode(&mut r)?;
                let d = b.digest();
                (Body::Exact(b), d)
            }
            "ss-hhh" => {
                let b = SsBody::decode(&mut r)?;
                let d = b.digest("ss-hhh");
                (Body::Ss(b), d)
            }
            "rhhh" => {
                let b = RhhhBody::decode(&mut r)?;
                let d = b.ss.digest("rhhh");
                (Body::Rhhh(b), d)
            }
            "mvpipe" => {
                let b = MvPipeBody::decode(&mut r)?;
                let d = b.digest();
                (Body::MvPipe(b), d)
            }
            "tdbf-hhh" => {
                let b = TdbfBody::decode(&mut r)?;
                let d = b.digest();
                (Body::Tdbf(b), d)
            }
            other => return Err(SnapshotError::Kind(other.to_owned())),
        };
        if !r.rest().is_empty() {
            return Err(SnapshotError::Invalid {
                field: "body",
                what: "trailing bytes after the state body",
            });
        }
        if digest != self.digest {
            return Err(digest_mismatch());
        }
        Ok(body)
    }
}

/// Validate a frame header (magic, version, length cap) and return the
/// payload length that follows it.
pub fn payload_len(header: &[u8]) -> Result<usize, SnapshotError> {
    if header.len() < FRAME_HEADER_LEN {
        return Err(truncated(header.len()));
    }
    if header[..4] != FRAME_MAGIC {
        return Err(SnapshotError::Parse { offset: 0, what: "bad frame magic" });
    }
    let version = header[4];
    if version != FRAME_VERSION {
        return Err(SnapshotError::Version(version as u64));
    }
    let len = u32::from_le_bytes([header[5], header[6], header[7], header[8]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(SnapshotError::Invalid {
            field: "frame_len",
            what: "length prefix exceeds MAX_FRAME_LEN",
        });
    }
    Ok(len)
}

fn truncated(offset: usize) -> SnapshotError {
    SnapshotError::Parse { offset, what: "truncated frame" }
}

fn digest_mismatch() -> SnapshotError {
    SnapshotError::Invalid { field: "config_digest", what: "digest does not match the body" }
}

// ---------------------------------------------------------------------
// Integer packing
// ---------------------------------------------------------------------

/// Append a LEB128 varint.
#[inline]
pub fn put_uv(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Zigzag-encode a signed value (small magnitudes → small varints).
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Invert [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a-64 — the config-digest hash (stable, dependency-free).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Cursor over untrusted frame bytes: every read is bounds-checked and
/// fails as a typed [`SnapshotError`] carrying the byte offset.
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Invalid { field, what: "truncated body" });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn uv(&mut self, field: &'static str) -> Result<u64, SnapshotError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = *self
                .buf
                .get(self.pos)
                .ok_or(SnapshotError::Invalid { field, what: "truncated varint" })?;
            self.pos += 1;
            if shift == 63 && byte > 1 {
                return Err(SnapshotError::Invalid { field, what: "varint overflows u64" });
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(SnapshotError::Invalid { field, what: "varint overflows u64" });
            }
        }
    }

    /// A claimed element count: rejected up front when the claim
    /// exceeds the bytes left (each element costs ≥ `min_bytes`), so a
    /// hostile count can never drive an allocation past the input
    /// size.
    fn count(&mut self, field: &'static str, min_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.uv(field)?;
        let cap = (self.remaining() / min_bytes.max(1)) as u64;
        if n > cap {
            return Err(SnapshotError::Invalid { field, what: "count exceeds the body size" });
        }
        Ok(n as usize)
    }

    fn f64_(&mut self, field: &'static str) -> Result<f64, SnapshotError> {
        let b = self.take(8, field)?;
        Ok(f64::from_le_bytes(b.try_into().expect("take(8) returns 8 bytes")))
    }

    fn u64_le(&mut self, field: &'static str) -> Result<u64, SnapshotError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes(b.try_into().expect("take(8) returns 8 bytes")))
    }

    fn str_(&mut self, field: &'static str) -> Result<String, SnapshotError> {
        let n = self.count(field, 1)?;
        let bytes = self.take(n, field)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Invalid { field, what: "string is not UTF-8" })
    }
}

/// Append a length-prefixed UTF-8 string (shared with the native
/// [`FrameEncode`](crate::snapshot::FrameEncode) body writers).
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_uv(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

// ---------------------------------------------------------------------
// Config digests
// ---------------------------------------------------------------------
//
// One definition per kind, shared between the transcode bodies below
// and the native `FrameEncode` implementations in the detector
// modules — the two encode paths can never disagree on the digest.

/// The `exact` kind's config digest (no configuration beyond the kind).
pub(crate) fn exact_config_digest() -> u64 {
    fnv1a(b"exact")
}

/// The `ss-hhh` / `rhhh` config digest: kind label + capacity.
pub(crate) fn ss_config_digest(kind: &str, capacity: u64) -> u64 {
    let mut cfg = Vec::with_capacity(32);
    cfg.extend_from_slice(kind.as_bytes());
    cfg.push(0);
    put_uv(&mut cfg, capacity);
    fnv1a(&cfg)
}

/// The `mvpipe` config digest: kind label + bucket count.
pub(crate) fn mvpipe_config_digest(buckets: u64) -> u64 {
    let mut cfg = Vec::with_capacity(16);
    cfg.extend_from_slice(b"mvpipe");
    cfg.push(0);
    put_uv(&mut cfg, buckets);
    fnv1a(&cfg)
}

/// The `tdbf-hhh` config digest over the full filter geometry.
pub(crate) fn tdbf_config_digest(
    cells_per_level: u64,
    hashes: u64,
    half_life_ns: u64,
    candidates_per_level: u64,
    admit_fraction: f64,
    seed: u64,
) -> u64 {
    let mut cfg = Vec::with_capacity(64);
    cfg.extend_from_slice(b"tdbf-hhh");
    cfg.push(0);
    put_uv(&mut cfg, cells_per_level);
    put_uv(&mut cfg, hashes);
    put_uv(&mut cfg, half_life_ns);
    put_uv(&mut cfg, candidates_per_level);
    cfg.extend_from_slice(&admit_fraction.to_le_bytes());
    cfg.extend_from_slice(&seed.to_le_bytes());
    fnv1a(&cfg)
}

// ---------------------------------------------------------------------
// Per-kind bodies
// ---------------------------------------------------------------------

/// A decoded state body, one variant per detector kind. Keys stay as
/// wire strings; they parse into hierarchy items/prefixes only at
/// restore time (exactly like the JSON path).
pub(crate) enum Body {
    Exact(ExactBody),
    Ss(SsBody),
    Rhhh(RhhhBody),
    MvPipe(MvPipeBody),
    Tdbf(TdbfBody),
}

pub(crate) struct ExactBody {
    pub rows: Vec<(String, u64)>,
}

impl ExactBody {
    fn digest(&self) -> u64 {
        exact_config_digest()
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_uv(out, self.rows.len() as u64);
        for (key, count) in &self.rows {
            put_str(out, key);
            put_uv(out, *count);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.count("counts", 2)?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let key = r.str_("counts")?;
            let count = r.uv("counts")?;
            rows.push((key, count));
        }
        Ok(ExactBody { rows })
    }

    fn from_json(state: &Json) -> Result<Self, SnapshotError> {
        let rows = req_arr(state, "counts")?;
        let mut out = Vec::with_capacity(rows.len());
        for row in rows {
            let row = row
                .as_arr()
                .filter(|r| r.len() == 2)
                .ok_or(SnapshotError::Invalid { field: "counts", what: "row is not a pair" })?;
            let key = row[0]
                .as_str()
                .ok_or(SnapshotError::Invalid { field: "counts", what: "key is not a string" })?;
            let count = row[1].as_u64().ok_or(SnapshotError::Invalid {
                field: "counts",
                what: "count is not an unsigned integer",
            })?;
            out.push((key.to_owned(), count));
        }
        Ok(ExactBody { rows: out })
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![(
            "counts".into(),
            Json::Arr(
                self.rows
                    .iter()
                    .map(|(k, c)| Json::Arr(vec![Json::str(k.clone()), Json::u64(*c)]))
                    .collect(),
            ),
        )])
    }
}

pub(crate) struct SsLevelBody {
    pub total: u64,
    /// `(prefix, count, error)` rows, in wire order.
    pub entries: Vec<(String, u64, u64)>,
}

pub(crate) struct SsBody {
    pub capacity: u64,
    pub levels: Vec<SsLevelBody>,
}

impl SsBody {
    fn digest(&self, kind: &str) -> u64 {
        ss_config_digest(kind, self.capacity)
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_uv(out, self.capacity);
        put_uv(out, self.levels.len() as u64);
        for level in &self.levels {
            put_uv(out, level.total);
            put_uv(out, level.entries.len() as u64);
            for (prefix, count, error) in &level.entries {
                put_str(out, prefix);
                put_uv(out, *count);
                put_uv(out, *error);
            }
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, SnapshotError> {
        let capacity = r.uv("capacity")?;
        let n_levels = r.count("levels", 2)?;
        let mut levels = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            let total = r.uv("levels")?;
            let n = r.count("entries", 3)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let prefix = r.str_("entries")?;
                let count = r.uv("entries")?;
                let error = r.uv("entries")?;
                entries.push((prefix, count, error));
            }
            levels.push(SsLevelBody { total, entries });
        }
        Ok(SsBody { capacity, levels })
    }

    fn from_json(state: &Json) -> Result<Self, SnapshotError> {
        let capacity = req_u64(state, "capacity")?;
        let levels_json = req_arr(state, "levels")?;
        let mut levels = Vec::with_capacity(levels_json.len());
        for lv in levels_json {
            let total = req_u64(lv, "total")?;
            let rows = req_arr(lv, "entries")?;
            let mut entries = Vec::with_capacity(rows.len());
            for row in rows {
                let row = row.as_arr().filter(|r| r.len() == 3).ok_or(SnapshotError::Invalid {
                    field: "entries",
                    what: "row is not a triple",
                })?;
                let prefix = row[0].as_str().ok_or(SnapshotError::Invalid {
                    field: "entries",
                    what: "prefix is not a string",
                })?;
                let count = row[1].as_u64().ok_or(SnapshotError::Invalid {
                    field: "entries",
                    what: "count is not an unsigned integer",
                })?;
                let error = row[2].as_u64().ok_or(SnapshotError::Invalid {
                    field: "entries",
                    what: "error is not an unsigned integer",
                })?;
                entries.push((prefix.to_owned(), count, error));
            }
            levels.push(SsLevelBody { total, entries });
        }
        Ok(SsBody { capacity, levels })
    }

    fn to_json(&self) -> Vec<(String, Json)> {
        vec![
            ("capacity".into(), Json::u64(self.capacity)),
            (
                "levels".into(),
                Json::Arr(
                    self.levels
                        .iter()
                        .map(|lv| {
                            Json::Obj(vec![
                                ("total".into(), Json::u64(lv.total)),
                                (
                                    "entries".into(),
                                    Json::Arr(
                                        lv.entries
                                            .iter()
                                            .map(|(p, c, e)| {
                                                Json::Arr(vec![
                                                    Json::str(p.clone()),
                                                    Json::u64(*c),
                                                    Json::u64(*e),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]
    }
}

pub(crate) struct RhhhBody {
    pub ss: SsBody,
    pub updates: Vec<u64>,
}

impl RhhhBody {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ss.encode(out);
        put_uv(out, self.updates.len() as u64);
        for u in &self.updates {
            put_uv(out, *u);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, SnapshotError> {
        let ss = SsBody::decode(r)?;
        let n = r.count("updates", 1)?;
        let mut updates = Vec::with_capacity(n);
        for _ in 0..n {
            updates.push(r.uv("updates")?);
        }
        Ok(RhhhBody { ss, updates })
    }

    fn from_json(state: &Json) -> Result<Self, SnapshotError> {
        let ss = SsBody::from_json(state)?;
        let updates_json = req_arr(state, "updates")?;
        let updates = updates_json
            .iter()
            .map(|u| {
                u.as_u64().ok_or(SnapshotError::Invalid {
                    field: "updates",
                    what: "not an unsigned integer",
                })
            })
            .collect::<Result<Vec<u64>, _>>()?;
        Ok(RhhhBody { ss, updates })
    }

    fn to_json(&self) -> Json {
        let mut fields = self.ss.to_json();
        fields.push((
            "updates".into(),
            Json::Arr(self.updates.iter().map(|&u| Json::u64(u)).collect()),
        ));
        Json::Obj(fields)
    }
}

pub(crate) struct MvPipeBody {
    pub buckets: u64,
    /// `(prefix, count, vote)` rows, in wire order.
    pub rows: Vec<(String, u64, u64)>,
}

impl MvPipeBody {
    fn digest(&self) -> u64 {
        mvpipe_config_digest(self.buckets)
    }

    fn encode(&self, out: &mut Vec<u8>) {
        put_uv(out, self.buckets);
        put_uv(out, self.rows.len() as u64);
        for (prefix, count, vote) in &self.rows {
            put_str(out, prefix);
            put_uv(out, *count);
            put_uv(out, *vote);
        }
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, SnapshotError> {
        let buckets = r.uv("buckets")?;
        let n = r.count("entries", 3)?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let prefix = r.str_("entries")?;
            let count = r.uv("entries")?;
            let vote = r.uv("entries")?;
            rows.push((prefix, count, vote));
        }
        Ok(MvPipeBody { buckets, rows })
    }

    fn from_json(state: &Json) -> Result<Self, SnapshotError> {
        let buckets = req_u64(state, "buckets")?;
        let rows_json = req_arr(state, "entries")?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for row in rows_json {
            let row = row
                .as_arr()
                .filter(|r| r.len() == 3)
                .ok_or(SnapshotError::Invalid { field: "entries", what: "row is not a triple" })?;
            let prefix = row[0].as_str().ok_or(SnapshotError::Invalid {
                field: "entries",
                what: "prefix is not a string",
            })?;
            let count = row[1].as_u64().ok_or(SnapshotError::Invalid {
                field: "entries",
                what: "count is not an unsigned integer",
            })?;
            let vote = row[2].as_u64().ok_or(SnapshotError::Invalid {
                field: "entries",
                what: "vote is not an unsigned integer",
            })?;
            rows.push((prefix.to_owned(), count, vote));
        }
        Ok(MvPipeBody { buckets, rows })
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("buckets".into(), Json::u64(self.buckets)),
            (
                "entries".into(),
                Json::Arr(
                    self.rows
                        .iter()
                        .map(|(p, c, v)| {
                            Json::Arr(vec![Json::str(p.clone()), Json::u64(*c), Json::u64(*v)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

pub(crate) struct TdbfBody {
    pub cells_per_level: u64,
    pub hashes: u64,
    pub half_life_ns: u64,
    pub candidates_per_level: u64,
    pub admit_fraction: f64,
    pub seed: u64,
    pub observed: u64,
    /// `(raw value, last-touch ns)` — the scalar decayed total.
    pub total: (f64, u64),
    /// Per level, the full reconstructed cell arrays.
    pub filters: Vec<Vec<(f64, u64)>>,
    /// Per level, `(prefix, last-touch ns)` candidate rows.
    pub candidates: Vec<Vec<(String, u64)>>,
}

impl TdbfBody {
    fn digest(&self) -> u64 {
        tdbf_config_digest(
            self.cells_per_level,
            self.hashes,
            self.half_life_ns,
            self.candidates_per_level,
            self.admit_fraction,
            self.seed,
        )
    }

    fn encode(&self, out: &mut Vec<u8>) -> Result<(), SnapshotError> {
        put_uv(out, self.cells_per_level);
        put_uv(out, self.hashes);
        put_uv(out, self.half_life_ns);
        put_uv(out, self.candidates_per_level);
        out.extend_from_slice(&self.admit_fraction.to_le_bytes());
        out.extend_from_slice(&self.seed.to_le_bytes());
        put_uv(out, self.observed);
        out.extend_from_slice(&self.total.0.to_le_bytes());
        put_uv(out, self.total.1);

        put_uv(out, self.filters.len() as u64);
        for cells in &self.filters {
            encode_cells(out, cells)?;
        }
        put_uv(out, self.candidates.len() as u64);
        for table in &self.candidates {
            put_uv(out, table.len() as u64);
            for (prefix, ts) in table {
                put_str(out, prefix);
                put_uv(out, *ts);
            }
        }
        Ok(())
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, SnapshotError> {
        let cells_per_level = r.uv("cells_per_level")?;
        let hashes = r.uv("hashes")?;
        let half_life_ns = r.uv("half_life_ns")?;
        let candidates_per_level = r.uv("candidates_per_level")?;
        let admit_fraction = r.f64_("admit_fraction")?;
        let seed = r.u64_le("seed")?;
        let observed = r.uv("observed")?;
        let total = (r.f64_("total")?, r.uv("total")?);

        // The per-level cell arrays are the one place a tiny frame can
        // legitimately expand into a large allocation (delta-encoded
        // cells reconstruct a full array), so the expansion is bounded
        // *here*, before any level allocates: the claimed geometry must
        // fit MAX_WIRE_CAPACITY — per level and summed across levels —
        // and every level must claim exactly the configured cell count.
        let expected_cells = cells_per_level.saturating_mul(hashes);
        if expected_cells > MAX_WIRE_CAPACITY as u64 {
            return Err(SnapshotError::Invalid {
                field: "cells_per_level",
                what: "geometry exceeds MAX_WIRE_CAPACITY",
            });
        }
        let n_levels = r.count("filters", 3)?;
        if (n_levels as u64).saturating_mul(expected_cells) > MAX_WIRE_CAPACITY as u64 {
            return Err(SnapshotError::Invalid {
                field: "filters",
                what: "total cell count exceeds MAX_WIRE_CAPACITY",
            });
        }
        let mut filters = Vec::with_capacity(n_levels);
        for _ in 0..n_levels {
            filters.push(decode_cells(r, expected_cells as usize)?);
        }
        let n_cand = r.count("candidates", 1)?;
        let mut candidates = Vec::with_capacity(n_cand);
        for _ in 0..n_cand {
            let n = r.count("candidates", 2)?;
            let mut table = Vec::with_capacity(n);
            for _ in 0..n {
                let prefix = r.str_("candidates")?;
                let ts = r.uv("candidates")?;
                table.push((prefix, ts));
            }
            candidates.push(table);
        }
        Ok(TdbfBody {
            cells_per_level,
            hashes,
            half_life_ns,
            candidates_per_level,
            admit_fraction,
            seed,
            observed,
            total,
            filters,
            candidates,
        })
    }

    fn from_json(state: &Json) -> Result<Self, SnapshotError> {
        let cell_pair = |v: &Json, field: &'static str| -> Result<(f64, u64), SnapshotError> {
            let pair = v
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or(SnapshotError::Invalid { field, what: "cell is not a pair" })?;
            let value = pair[0]
                .as_f64()
                .ok_or(SnapshotError::Invalid { field, what: "cell value is not a number" })?;
            let last = pair[1].as_u64().ok_or(SnapshotError::Invalid {
                field,
                what: "cell timestamp is not an integer",
            })?;
            Ok((value, last))
        };
        let filters_json = req_arr(state, "filters")?;
        let mut filters = Vec::with_capacity(filters_json.len());
        for level in filters_json {
            let cells_json = level.as_arr().ok_or(SnapshotError::Invalid {
                field: "filters",
                what: "level is not an array",
            })?;
            let cells = cells_json
                .iter()
                .map(|c| cell_pair(c, "filters"))
                .collect::<Result<Vec<_>, _>>()?;
            filters.push(cells);
        }
        let candidates_json = req_arr(state, "candidates")?;
        let mut candidates = Vec::with_capacity(candidates_json.len());
        for level in candidates_json {
            let rows = level.as_arr().ok_or(SnapshotError::Invalid {
                field: "candidates",
                what: "level is not an array",
            })?;
            let mut table = Vec::with_capacity(rows.len());
            for row in rows {
                let row = row.as_arr().filter(|r| r.len() == 2).ok_or(SnapshotError::Invalid {
                    field: "candidates",
                    what: "row is not a pair",
                })?;
                let prefix = row[0].as_str().ok_or(SnapshotError::Invalid {
                    field: "candidates",
                    what: "prefix is not a string",
                })?;
                let ts = row[1].as_u64().ok_or(SnapshotError::Invalid {
                    field: "candidates",
                    what: "timestamp is not an integer",
                })?;
                table.push((prefix.to_owned(), ts));
            }
            candidates.push(table);
        }
        Ok(TdbfBody {
            cells_per_level: req_u64(state, "cells_per_level")?,
            hashes: req_u64(state, "hashes")?,
            half_life_ns: req_u64(state, "half_life_ns")?,
            candidates_per_level: req_u64(state, "candidates_per_level")?,
            admit_fraction: req_f64(state, "admit_fraction")?,
            seed: req_u64(state, "seed")?,
            observed: req_u64(state, "observed")?,
            total: cell_pair(req(state, "total")?, "total")?,
            filters,
            candidates,
        })
    }

    fn to_json(&self) -> Json {
        let cell = |&(v, ns): &(f64, u64)| Json::Arr(vec![Json::f64(v), Json::u64(ns)]);
        Json::Obj(vec![
            ("cells_per_level".into(), Json::u64(self.cells_per_level)),
            ("hashes".into(), Json::u64(self.hashes)),
            ("half_life_ns".into(), Json::u64(self.half_life_ns)),
            ("candidates_per_level".into(), Json::u64(self.candidates_per_level)),
            ("admit_fraction".into(), Json::f64(self.admit_fraction)),
            ("seed".into(), Json::u64(self.seed)),
            ("observed".into(), Json::u64(self.observed)),
            ("total".into(), cell(&self.total)),
            (
                "filters".into(),
                Json::Arr(
                    self.filters
                        .iter()
                        .map(|cells| Json::Arr(cells.iter().map(cell).collect()))
                        .collect(),
                ),
            ),
            (
                "candidates".into(),
                Json::Arr(
                    self.candidates
                        .iter()
                        .map(|table| {
                            Json::Arr(
                                table
                                    .iter()
                                    .map(|(p, ts)| {
                                        Json::Arr(vec![Json::str(p.clone()), Json::u64(*ts)])
                                    })
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Delta-encode one filter level's cells against a baseline: the most
/// common `(value bits, last_ns)` pair is stored once, then only the
/// cells that differ, as `(index gap, f64 bits, zigzag Δns)` triples.
/// Shared with the native `FrameEncode` path in `TdbfHhh`.
pub(crate) fn encode_cells(out: &mut Vec<u8>, cells: &[(f64, u64)]) -> Result<(), SnapshotError> {
    put_uv(out, cells.len() as u64);
    // First-encountered most-common pair: deterministic regardless of
    // hash-map iteration order.
    let mut counts: HashMap<(u64, u64), u32> = HashMap::with_capacity(cells.len().min(1024));
    for &(v, ns) in cells {
        *counts.entry((v.to_bits(), ns)).or_insert(0) += 1;
    }
    let max = counts.values().copied().max().unwrap_or(0);
    let baseline = cells
        .iter()
        .copied()
        .find(|&(v, ns)| counts[&(v.to_bits(), ns)] == max)
        .unwrap_or((0.0, 0));
    out.extend_from_slice(&baseline.0.to_le_bytes());
    put_uv(out, baseline.1);

    let explicit: Vec<(usize, f64, u64)> = cells
        .iter()
        .enumerate()
        .filter(|&(_, &(v, ns))| v.to_bits() != baseline.0.to_bits() || ns != baseline.1)
        .map(|(i, &(v, ns))| (i, v, ns))
        .collect();
    put_uv(out, explicit.len() as u64);
    let mut prev = 0usize;
    for (rank, &(i, v, ns)) in explicit.iter().enumerate() {
        let gap = if rank == 0 { i } else { i - prev };
        prev = i;
        put_uv(out, gap as u64);
        out.extend_from_slice(&v.to_le_bytes());
        let delta = i64::try_from(ns as i128 - baseline.1 as i128).map_err(|_| {
            SnapshotError::Invalid { field: "filters", what: "timestamp delta overflows" }
        })?;
        put_uv(out, zigzag(delta));
    }
    Ok(())
}

/// Invert [`encode_cells`]: rebuild the full cell array. `expected` is
/// the cell count the frame's own configuration implies — the caller
/// has already bounded it, so a hostile claimed count can never drive
/// an allocation past the configured geometry.
fn decode_cells(r: &mut ByteReader<'_>, expected: usize) -> Result<Vec<(f64, u64)>, SnapshotError> {
    let n_cells = r.uv("filters")? as usize;
    if n_cells != expected {
        return Err(SnapshotError::Invalid {
            field: "filters",
            what: "cell count does not match the geometry",
        });
    }
    let base_v = r.f64_("filters")?;
    let base_ns = r.uv("filters")?;
    let mut cells = vec![(base_v, base_ns); n_cells];
    let n_explicit = r.count("filters", 10)?;
    if n_explicit > n_cells {
        return Err(SnapshotError::Invalid {
            field: "filters",
            what: "more explicit cells than cells",
        });
    }
    let mut idx = 0usize;
    for rank in 0..n_explicit {
        let gap = r.uv("filters")? as usize;
        idx = if rank == 0 { gap } else { idx.saturating_add(gap) };
        if rank > 0 && gap == 0 {
            return Err(SnapshotError::Invalid {
                field: "filters",
                what: "explicit cell indexes must be strictly increasing",
            });
        }
        if idx >= n_cells {
            return Err(SnapshotError::Invalid {
                field: "filters",
                what: "explicit cell index out of range",
            });
        }
        let v = r.f64_("filters")?;
        let delta = unzigzag(r.uv("filters")?);
        let ns = u64::try_from(base_ns as i128 + delta as i128).map_err(|_| {
            SnapshotError::Invalid { field: "filters", what: "cell timestamp out of range" }
        })?;
        cells[idx] = (v, ns);
    }
    Ok(cells)
}

// ---------------------------------------------------------------------
// DetectorSnapshot <-> SnapshotFrame (the transcode surface)
// ---------------------------------------------------------------------

impl DetectorSnapshot {
    /// Transcode this (JSON-bodied) snapshot into a v2 frame carrying
    /// the report-window geometry `start..=at`. Unknown kinds are
    /// [`SnapshotError::Kind`].
    pub fn to_frame(&self, start: Nanos, at: Nanos) -> Result<SnapshotFrame, SnapshotError> {
        let state = self.state()?;
        let mut body = Vec::with_capacity(self.state_json.len() / 4 + 64);
        let digest = match &*self.kind {
            "exact" => {
                let b = ExactBody::from_json(&state)?;
                b.encode(&mut body);
                b.digest()
            }
            "ss-hhh" => {
                let b = SsBody::from_json(&state)?;
                b.encode(&mut body);
                b.digest("ss-hhh")
            }
            "rhhh" => {
                let b = RhhhBody::from_json(&state)?;
                b.encode(&mut body);
                b.ss.digest("rhhh")
            }
            "mvpipe" => {
                let b = MvPipeBody::from_json(&state)?;
                b.encode(&mut body);
                b.digest()
            }
            "tdbf-hhh" => {
                let b = TdbfBody::from_json(&state)?;
                b.encode(&mut body)?;
                b.digest()
            }
            other => return Err(SnapshotError::Kind(other.to_owned())),
        };
        Ok(SnapshotFrame { start, at, kind: self.kind.clone(), total: self.total, digest, body })
    }

    /// Transcode a v2 frame back into the canonical JSON-bodied
    /// snapshot — for any frame [`to_frame`](Self::to_frame) wrote,
    /// `from_frame(to_frame(s)) == s` byte-for-byte.
    pub fn from_frame(frame: &SnapshotFrame) -> Result<DetectorSnapshot, SnapshotError> {
        let state_json = match frame.decoded_body()? {
            Body::Exact(b) => b.to_json().render(),
            Body::Ss(b) => Json::Obj(b.to_json()).render(),
            Body::Rhhh(b) => b.to_json().render(),
            Body::MvPipe(b) => b.to_json().render(),
            Body::Tdbf(b) => b.to_json().render(),
        };
        Ok(DetectorSnapshot { kind: frame.kind.clone(), total: frame.total, state_json })
    }
}

// ---------------------------------------------------------------------
// SnapshotFrame -> live detector (the hot fold path)
// ---------------------------------------------------------------------

impl<H> super::RestoredDetector<H>
where
    H: hhh_hierarchy::Hierarchy,
    H::Item: core::str::FromStr,
    H::Prefix: core::str::FromStr,
{
    /// Rebuild a live detector straight from a v2 frame — no JSON
    /// anywhere on the path, which is what buys the aggregation tier
    /// its decode speedup. Shares every validation with the JSON
    /// decoders (the part-constructors are common), plus the frame's
    /// config-digest check.
    pub fn from_frame(h: &H, frame: &SnapshotFrame) -> Result<Self, SnapshotError> {
        use super::RestoredDetector;
        let parse_item = |s: &str| {
            s.parse::<H::Item>().map_err(|_| SnapshotError::Invalid {
                field: "counts",
                what: "row key does not parse",
            })
        };
        let parse_prefix = |s: &str, field: &'static str| {
            s.parse::<H::Prefix>()
                .map_err(|_| SnapshotError::Invalid { field, what: "row key does not parse" })
        };
        let parse_levels = |levels: Vec<SsLevelBody>| {
            levels
                .into_iter()
                .map(|lv| {
                    let entries = lv
                        .entries
                        .iter()
                        .map(|(p, c, e)| Ok((parse_prefix(p, "entries")?, *c, *e)))
                        .collect::<Result<Vec<_>, SnapshotError>>()?;
                    Ok((lv.total, entries))
                })
                .collect::<Result<Vec<_>, SnapshotError>>()
        };
        match frame.decoded_body()? {
            Body::Exact(b) => {
                let rows = b.rows.iter().map(|(k, c)| Ok((parse_item(k)?, *c))).collect::<Result<
                    Vec<_>,
                    SnapshotError,
                >>(
                )?;
                crate::ExactHhh::from_wire_rows(h.clone(), rows, frame.total)
                    .map(RestoredDetector::Exact)
            }
            Body::Ss(b) => crate::SpaceSavingHhh::from_wire_levels(
                h.clone(),
                b.capacity,
                parse_levels(b.levels)?,
                frame.total,
            )
            .map(RestoredDetector::SpaceSaving),
            Body::Rhhh(b) => crate::Rhhh::from_wire_levels(
                h.clone(),
                b.ss.capacity,
                parse_levels(b.ss.levels)?,
                b.updates,
                frame.total,
            )
            .map(RestoredDetector::Rhhh),
            Body::MvPipe(b) => {
                let rows = b
                    .rows
                    .iter()
                    .map(|(p, c, v)| Ok((parse_prefix(p, "entries")?, *c, *v)))
                    .collect::<Result<Vec<_>, SnapshotError>>()?;
                crate::MvPipeHhh::from_wire_rows(h.clone(), b.buckets, rows, frame.total)
                    .map(RestoredDetector::MvPipe)
            }
            Body::Tdbf(b) => {
                let cfg = crate::TdbfHhhConfig {
                    cells_per_level: b.cells_per_level as usize,
                    hashes: b.hashes as usize,
                    half_life: hhh_nettypes::TimeSpan::from_nanos(b.half_life_ns),
                    candidates_per_level: b.candidates_per_level as usize,
                    admit_fraction: b.admit_fraction,
                    seed: b.seed,
                };
                let counter = |(v, ns): (f64, u64)| {
                    hhh_sketches::DecayedCounter::from_raw(v, Nanos::from_nanos(ns))
                };
                let filters = b
                    .filters
                    .into_iter()
                    .map(|cells| cells.into_iter().map(counter).collect())
                    .collect();
                let candidates = b
                    .candidates
                    .iter()
                    .map(|table| {
                        table
                            .iter()
                            .map(|(p, ts)| {
                                Ok((parse_prefix(p, "candidates")?, Nanos::from_nanos(*ts)))
                            })
                            .collect::<Result<Vec<_>, SnapshotError>>()
                    })
                    .collect::<Result<Vec<_>, SnapshotError>>()?;
                crate::TdbfHhh::from_wire(
                    h.clone(),
                    cfg,
                    b.observed,
                    counter(b.total),
                    filters,
                    candidates,
                    frame.total,
                )
                .map(RestoredDetector::Tdbf)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_roundtrip() {
        let mut buf = Vec::new();
        let vals = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &vals {
            put_uv(&mut buf, v);
        }
        let mut r = ByteReader::new(&buf);
        for &v in &vals {
            assert_eq!(r.uv("x").unwrap(), v);
        }
        assert!(r.rest().is_empty());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "{v}");
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn hostile_varint_rejected() {
        // 11 continuation bytes overflow u64.
        let buf = [0xFFu8; 11];
        let mut r = ByteReader::new(&buf);
        assert!(matches!(r.uv("x"), Err(SnapshotError::Invalid { .. })));
    }

    #[test]
    fn frame_roundtrips() {
        let f = SnapshotFrame {
            start: Nanos::from_secs(5),
            at: Nanos::from_secs(10),
            kind: Cow::Borrowed("exact"),
            total: 1234,
            digest: 99,
            body: vec![1, 2, 3],
        };
        let bytes = f.encode();
        let (back, used) = SnapshotFrame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(back, f);
    }

    #[test]
    fn header_errors_are_typed() {
        let f = SnapshotFrame {
            start: Nanos::ZERO,
            at: Nanos::ZERO,
            kind: Cow::Borrowed("exact"),
            total: 0,
            digest: 0,
            body: Vec::new(),
        };
        let good = f.encode();

        let mut bad_magic = good.clone();
        bad_magic[..4].copy_from_slice(b"NOPE");
        assert_eq!(
            SnapshotFrame::decode(&bad_magic).unwrap_err(),
            SnapshotError::Parse { offset: 0, what: "bad frame magic" }
        );

        let mut skew = good.clone();
        skew[4] = 3;
        assert_eq!(SnapshotFrame::decode(&skew).unwrap_err(), SnapshotError::Version(3));

        assert!(matches!(
            SnapshotFrame::decode(&good[..good.len() - 1]).unwrap_err(),
            SnapshotError::Parse { what: "truncated frame", .. }
        ));

        let mut oversize = good.clone();
        oversize[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            SnapshotFrame::decode(&oversize).unwrap_err(),
            SnapshotError::Invalid { field: "frame_len", .. }
        ));
    }

    #[test]
    fn cells_delta_encoding_shrinks_sparse_levels() {
        // 4096 cells, 3 touched: the encoded form is tiny.
        let mut cells = vec![(0.0f64, 0u64); 4096];
        cells[7] = (1.5, 1_000_000);
        cells[8] = (2.5, 2_000_000);
        cells[4000] = (0.25, 3_000_000);
        let mut out = Vec::new();
        encode_cells(&mut out, &cells).unwrap();
        assert!(out.len() < 100, "sparse level must shrink, got {} bytes", out.len());
        let mut r = ByteReader::new(&out);
        let back = decode_cells(&mut r, cells.len()).unwrap();
        assert_eq!(back, cells);
    }

    #[test]
    fn cells_baseline_is_the_most_common_pair() {
        // A mostly-saturated level whose dominant pair is NOT (0, 0).
        let mut cells = vec![(9.75f64, 5_000u64); 64];
        cells[0] = (0.0, 0);
        cells[63] = (1.0, 9_000);
        let mut out = Vec::new();
        encode_cells(&mut out, &cells).unwrap();
        // 2 explicit cells only.
        let mut r = ByteReader::new(&out);
        let back = decode_cells(&mut r, cells.len()).unwrap();
        assert_eq!(back, cells);
        assert!(out.len() < 64, "baseline must absorb the common pair, got {}", out.len());
    }

    #[test]
    fn report_frames_carry_the_line_verbatim() {
        let line = "{\"type\":\"report\",\"series\":0}";
        let f = SnapshotFrame::report(line, Nanos::ZERO, Nanos::from_secs(5), 42);
        let bytes = f.encode();
        let (back, _) = SnapshotFrame::decode(&bytes).unwrap();
        assert_eq!(back.report_line().unwrap(), line);
        let mut tampered = back.clone();
        tampered.body[2] ^= 1;
        assert!(matches!(
            tampered.report_line().unwrap_err(),
            SnapshotError::Invalid { field: "config_digest", .. }
        ));
    }
}
