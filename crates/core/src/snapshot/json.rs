//! A minimal hand-rolled JSON value model: parse, inspect, render.
//!
//! This workspace is fully offline (no serde), and the snapshot wire
//! format is small and regular, so the codec carries its own JSON
//! layer: a recursive-descent parser into [`Json`], and a renderer
//! whose output is *canonical* — object keys keep insertion order,
//! integers render via `Display`, floats via Rust's shortest
//! round-trip formatting (`{:?}`). Every state body this crate emits
//! is produced by (or is byte-identical to) this renderer, so
//! `render(parse(x)) == x` for any line the snapshot sinks write —
//! the property the round-trip tests pin.
//!
//! Numbers distinguish unsigned, signed and float lexemes
//! ([`Number`]): `u64` counts must round-trip bit-exactly (an `f64`
//! detour would corrupt counts above 2⁵³), and decayed `f64` state
//! must round-trip bit-exactly too (shortest-form float printing
//! guarantees it).

use super::SnapshotError;
use core::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any numeric lexeme; see [`Number`].
    Num(Number),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (the canonical renderer preserves
    /// key order, which is what makes rendering deterministic).
    Obj(Vec<(String, Json)>),
}

/// A JSON number, classified by lexeme so integers never take a lossy
/// `f64` detour: `12` parses as `U(12)`, `-3` as `I(-3)`, and anything
/// with a fraction or exponent as `F`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer lexeme that fits `u64`.
    U(u64),
    /// A negative integer lexeme that fits `i64`.
    I(i64),
    /// A fractional or exponent lexeme (or an integer too large for 64
    /// bits), as `f64`.
    F(f64),
}

impl Number {
    /// The value as `u64`, when the lexeme was a non-negative integer.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as `i64`, when the lexeme was an integer in range.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(_) => None,
        }
    }

    /// The value as `f64` (always available, lossy above 2⁵³).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }
}

impl Json {
    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(text: &str) -> Result<Json, SnapshotError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Render canonically (see the module docs).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(Number::U(u)) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(Number::I(i)) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(Number::F(f)) => {
                if f.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form.
                    let _ = write!(out, "{f:?}");
                } else {
                    out.push_str("null"); // JSON has no Inf/NaN
                }
            }
            Json::Str(s) => out.push_str(&super::json_string(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&super::json_string(k));
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The fields of an object, or `None`.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up a field of an object (first match), or `None`.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The elements of an array, or `None`.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, or `None`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a signed integer, or `None`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a float (any numeric lexeme), or `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// An unsigned-integer value node.
    pub fn u64(v: u64) -> Json {
        Json::Num(Number::U(v))
    }

    /// A float value node.
    pub fn f64(v: f64) -> Json {
        Json::Num(Number::F(v))
    }

    /// A string value node.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }
}

/// Maximum container nesting the parser accepts. Wire input is
/// untrusted; without a bound, a line of repeated `[` would recurse
/// the thread stack into an abort instead of a typed parse error. The
/// snapshot format nests a handful of levels deep.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, what: &'static str) -> SnapshotError {
        SnapshotError::Parse { offset: self.pos, what }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &'static str) -> Result<(), SnapshotError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &'static str, what: &'static str) -> Result<(), SnapshotError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<Json, SnapshotError> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true", "expected `true`").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false", "expected `false`").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null", "expected `null`").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn nested(
        &mut self,
        container: fn(&mut Self) -> Result<Json, SnapshotError>,
    ) -> Result<Json, SnapshotError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        self.depth += 1;
        let v = container(self);
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Json, SnapshotError> {
        self.eat(b'{', "expected `{`")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:` after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, SnapshotError> {
        self.eat(b'[', "expected `[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, SnapshotError> {
        self.eat(b'"', "expected `\"`")?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low half.
                                self.eat(b'\\', "expected low surrogate")?;
                                self.eat(b'u', "expected low surrogate")?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                0x00..=0x1F => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    out.push_str(core::str::from_utf8(&self.bytes[start..self.pos]).expect(
                        "slice boundaries follow UTF-8 continuation bytes of a valid &str",
                    ));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, SnapshotError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => (b - b'0') as u32,
                b'a'..=b'f' => (b - b'a' + 10) as u32,
                b'A'..=b'F' => (b - b'A' + 10) as u32,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, SnapshotError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            core::str::from_utf8(&self.bytes[start..self.pos]).expect("number lexemes are ASCII");
        let n = if integral && !negative {
            text.parse::<u64>().map(Number::U).or_else(|_| text.parse().map(Number::F))
        } else if integral {
            text.parse::<i64>().map(Number::I).or_else(|_| text.parse().map(Number::F))
        } else {
            text.parse().map(Number::F)
        };
        match n {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => {
                self.pos = start;
                Err(self.err("malformed number"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(text: &str) {
        let v = Json::parse(text).unwrap();
        assert_eq!(v.render(), text, "canonical text must round-trip unchanged");
    }

    #[test]
    fn scalars_parse_and_render() {
        roundtrip("null");
        roundtrip("true");
        roundtrip("false");
        roundtrip("0");
        roundtrip("18446744073709551615"); // u64::MAX, bit-exact
        roundtrip("-42");
        roundtrip("1.5");
        roundtrip("\"hi\"");
    }

    #[test]
    fn integer_lexemes_stay_integers() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        assert_eq!(Json::parse("-9223372036854775808").unwrap().as_i64(), Some(i64::MIN));
        assert_eq!(Json::parse("1.0").unwrap().as_u64(), None, "float lexeme is not an integer");
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for f in [0.5, 1.0 / 3.0, 1e-300, 123456.789, f64::MIN_POSITIVE] {
            let text = Json::f64(f).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} via {text}");
        }
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip("[]");
        roundtrip("{}");
        roundtrip("[1,2,[3,\"x\"],{\"a\":null}]");
        roundtrip("{\"kind\":\"exact\",\"total\":42,\"state\":{\"counts\":[[\"7\",300]]}}");
    }

    #[test]
    fn whitespace_tolerated_on_parse() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.render(), "{\"a\":[1,2]}");
    }

    #[test]
    fn string_escapes_decode() {
        let v = Json::parse("\"a\\\"b\\\\c\\nd\\u0041\\u00e9\"").unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair (🎵 U+1F3B5).
        let v = Json::parse("\"\\ud83c\\udfb5\"").unwrap();
        assert_eq!(v.as_str(), Some("🎵"));
    }

    #[test]
    fn object_lookup_helpers() {
        let v = Json::parse("{\"a\":1,\"b\":\"x\",\"c\":[true]}").unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn garbage_rejected_with_offsets() {
        for bad in ["", "{", "[1,]", "{\"a\"}", "tru", "\"\\x\"", "1 2", "nan", "--1"] {
            let e = Json::parse(bad);
            assert!(e.is_err(), "{bad:?} must not parse");
        }
        match Json::parse("[1, garbage]") {
            Err(SnapshotError::Parse { offset, .. }) => assert_eq!(offset, 4),
            other => panic!("expected a parse error with offset, got {other:?}"),
        }
    }
}
