//! Detector state snapshots: the **round-trip wire codec** for
//! distributed aggregation.
//!
//! [`MergeableDetector::merge`](crate::MergeableDetector::merge) makes
//! sharded ingestion work *inside* one process. To merge across
//! processes or hosts, shard states must cross a wire — this module
//! defines the serialized form **and** the decode + fold path back:
//!
//! * **encode** — [`DetectorSnapshot`] is a small self-describing
//!   envelope (`v`, `kind`, `total`, JSON state body) rendered by
//!   [`DetectorSnapshot::to_json`]; the JSON sinks in `hhh-window`
//!   emit one per report point.
//! * **decode** — [`DetectorSnapshot::from_json`] parses a line back
//!   (hand-rolled [`json`] layer; this workspace is fully offline, no
//!   serde), with typed [`SnapshotError`]s instead of silent `None`s.
//! * **fold** — [`RestoredDetector`] rebuilds a live detector from a
//!   snapshot (`ExactHhh`, `SpaceSavingHhh`, `Rhhh`, `MvPipeHhh`,
//!   `TdbfHhh` all support it) and folds further snapshots in with the
//!   *same* in-process merge recipes — Space-Saving union-then-prune
//!   per level, RHHH sampled levels, MVPipe bucket-wise majority
//!   votes, TDBF cell-wise decayed sums — so
//!   cross-process aggregation is the in-process algebra, lifted onto
//!   the wire. The `hhh-agg` crate drives this over JSONL streams.
//!
//! State bodies are *self-contained*: they carry the detector
//! configuration (capacities, seeds, decay rates) alongside the state,
//! so an aggregator needs nothing but the hierarchy to restore and
//! merge. Rendering is deterministic (rows sorted, canonical JSON), so
//! equal states serialize identically and goldens can diff snapshots.
//!
//! ## Wire format (version 1)
//!
//! ```json
//! {"v":1,"kind":"exact","total":1234,"state":{…}}
//! ```
//!
//! | `kind` | state body |
//! |--------|------------|
//! | `exact` | `{"counts":[[item,count],…]}`, rows sorted by item rendering |
//! | `ss-hhh` | `{"capacity":C,"levels":[{"total":N,"entries":[[prefix,count,error],…]},…]}` |
//! | `rhhh` | the `ss-hhh` body plus `"updates":[u₀,…]` |
//! | `mvpipe` | `{"buckets":B,"entries":[[prefix,count,vote],…]}`, rows sorted by prefix rendering (bucket indexes re-derived from the keys) |
//! | `tdbf-hhh` | config fields plus `"total":[v,last_ns]`, `"filters"` (per-level `[v,last_ns]` cell arrays) and `"candidates"` (per-level `[prefix,ts_ns]` rows) |
//!
//! A missing `"v"` is read as version 1; unknown versions are
//! rejected, never guessed at. State lines also carry the report
//! window's geometry (`"start_ns"`, alongside `"at_ns"`); a missing
//! `start_ns` reads as `at_ns` (pre-geometry lines), so v1 streams
//! from older writers still decode.
//!
//! ## Wire format (version 2)
//!
//! The [`binary`] module defines the binary **frame** format for the
//! hot aggregation path — same envelope semantics (versioned,
//! self-describing, typed errors), bodies in varint/zigzag-packed
//! binary with delta-encoded TDBF cells. [`DetectorSnapshot::to_frame`]
//! / [`DetectorSnapshot::from_frame`] transcode between the two;
//! [`RestoredDetector::from_frame`] decodes a frame straight into a
//! live detector without touching JSON.

use core::fmt::Write as _;
use core::fmt::{self, Display};
use core::str::FromStr;
use hhh_hierarchy::Hierarchy;
use hhh_nettypes::Nanos;
use std::borrow::Cow;

pub mod binary;
pub mod encode;
pub mod json;

pub use binary::{SnapshotFrame, WireFormat};
pub use encode::FrameEncode;

use crate::report::{HhhReport, Threshold};
use crate::{
    ContinuousDetector, ExactHhh, HhhDetector, MergeableDetector, MvPipeHhh, Rhhh, SpaceSavingHhh,
    TdbfHhh,
};
use json::Json;

/// The wire-format version this crate reads and writes.
pub const WIRE_VERSION: u64 = 1;

/// Upper bound on any wire-supplied capacity or geometry count.
///
/// Wire input is untrusted: a corrupt or hostile line must come back
/// as a typed [`SnapshotError`], never drive a pathological
/// allocation that aborts the aggregator. Real configurations sit
/// orders of magnitude below this (hundreds to tens of thousands of
/// counters).
pub const MAX_WIRE_CAPACITY: usize = 1 << 20;

/// A serialized snapshot of a detector's mergeable state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectorSnapshot {
    /// Stable wire-format discriminator (the detector's `name()`).
    /// Borrowed for snapshots a detector emits, owned for parsed ones.
    pub kind: Cow<'static, str>,
    /// Total weight covered by the state (undecayed, since reset).
    pub total: u64,
    /// The state body: a JSON object string, format per `kind`.
    pub state_json: String,
}

impl DetectorSnapshot {
    /// Render the whole envelope as one JSON object (one line, no
    /// trailing newline) — the unit the snapshot sinks write.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"v\":{WIRE_VERSION},\"kind\":{},\"total\":{},\"state\":{}}}",
            json_string(&self.kind),
            self.total,
            self.state_json
        )
    }

    /// Parse an envelope previously rendered by
    /// [`to_json`](Self::to_json). The state body is re-rendered
    /// canonically, so for any line this crate wrote,
    /// `from_json(to_json(s)) == s`.
    pub fn from_json(line: &str) -> Result<Self, SnapshotError> {
        let v = Json::parse(line)?;
        Self::from_value(&v)
    }

    /// Decode an envelope from an already-parsed JSON value (the form
    /// aggregators meet inside `{"type":"state",…}` lines).
    pub fn from_value(v: &Json) -> Result<Self, SnapshotError> {
        if v.as_obj().is_none() {
            return Err(SnapshotError::Invalid { field: "snapshot", what: "not a JSON object" });
        }
        let version = match v.get("v") {
            None => WIRE_VERSION, // pre-versioning lines are version 1
            Some(j) => j
                .as_u64()
                .ok_or(SnapshotError::Invalid { field: "v", what: "not an unsigned integer" })?,
        };
        if version != WIRE_VERSION {
            return Err(SnapshotError::Version(version));
        }
        let kind = req_str(v, "kind")?.to_owned();
        let total = req_u64(v, "total")?;
        let state = req(v, "state")?;
        if state.as_obj().is_none() {
            return Err(SnapshotError::Invalid { field: "state", what: "not a JSON object" });
        }
        Ok(DetectorSnapshot { kind: Cow::Owned(kind), total, state_json: state.render() })
    }

    /// Parse the state body.
    pub fn state(&self) -> Result<Json, SnapshotError> {
        Json::parse(&self.state_json)
    }
}

/// Why a snapshot could not be decoded, restored, or folded.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotError {
    /// The text is not well-formed JSON.
    Parse {
        /// Byte offset of the failure.
        offset: usize,
        /// What the parser expected.
        what: &'static str,
    },
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but has the wrong type or an invalid value.
    Invalid {
        /// The offending field.
        field: &'static str,
        /// What is wrong with it.
        what: &'static str,
    },
    /// The envelope declares a wire-format version this build cannot
    /// read.
    Version(u64),
    /// The `kind` names a detector this build cannot restore.
    Kind(String),
    /// Two snapshots that cannot be folded together (different kinds
    /// or incompatible configurations).
    Mismatch(String),
    /// A transport-level I/O failure (socket, pipe, file) surfaced
    /// through a decode path. Carries the [`std::io::ErrorKind`] and a
    /// rendered detail (`std::io::Error` itself is neither `Clone` nor
    /// `PartialEq`); the full error object with its `source()` chain
    /// lives in `hhh_window::transport::TransportError`.
    Transport {
        /// What the transport was doing (`read`, `write`, `connect`,
        /// `accept`).
        op: &'static str,
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// The rendered I/O error.
        detail: String,
    },
}

impl Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Parse { offset, what } => {
                write!(f, "malformed input at byte {offset}: {what}")
            }
            SnapshotError::Missing(field) => write!(f, "missing field `{field}`"),
            SnapshotError::Invalid { field, what } => write!(f, "invalid field `{field}`: {what}"),
            SnapshotError::Version(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {WIRE_VERSION})")
            }
            SnapshotError::Kind(k) => write!(f, "unknown detector kind `{k}`"),
            SnapshotError::Mismatch(what) => write!(f, "snapshots cannot be folded: {what}"),
            SnapshotError::Transport { op, kind, detail } => {
                write!(f, "transport {op} failed ({kind:?}): {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotError {
    /// Build a [`SnapshotError::Transport`] from an I/O error (the
    /// lossy-but-`Clone` form decode paths can carry).
    pub fn transport(op: &'static str, e: &std::io::Error) -> Self {
        SnapshotError::Transport { op, kind: e.kind(), detail: e.to_string() }
    }
}

/// Fetch a required field of a JSON object.
pub fn req<'a>(v: &'a Json, field: &'static str) -> Result<&'a Json, SnapshotError> {
    v.get(field).ok_or(SnapshotError::Missing(field))
}

/// Fetch a required unsigned-integer field.
pub fn req_u64(v: &Json, field: &'static str) -> Result<u64, SnapshotError> {
    req(v, field)?.as_u64().ok_or(SnapshotError::Invalid { field, what: "not an unsigned integer" })
}

/// Fetch a required float field (any numeric lexeme).
pub fn req_f64(v: &Json, field: &'static str) -> Result<f64, SnapshotError> {
    req(v, field)?.as_f64().ok_or(SnapshotError::Invalid { field, what: "not a number" })
}

/// Fetch a required string field.
pub fn req_str<'a>(v: &'a Json, field: &'static str) -> Result<&'a str, SnapshotError> {
    req(v, field)?.as_str().ok_or(SnapshotError::Invalid { field, what: "not a string" })
}

/// Fetch a required array field.
pub fn req_arr<'a>(v: &'a Json, field: &'static str) -> Result<&'a [Json], SnapshotError> {
    req(v, field)?.as_arr().ok_or(SnapshotError::Invalid { field, what: "not an array" })
}

/// Escape a string as a JSON string literal (with quotes).
pub fn json_string(s: impl Display) -> String {
    let raw = s.to_string();
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render `[[key, v1, v2, …], …]` rows as a JSON array of arrays with
/// the key as a JSON string. Rows must already be sorted by the caller
/// (snapshots are deterministic by contract).
pub fn json_keyed_rows<K: Display>(rows: &[(K, Vec<u64>)]) -> String {
    let mut out = String::from("[");
    for (i, (key, vals)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&json_string(key));
        for v in vals {
            let _ = write!(out, ",{v}");
        }
        out.push(']');
    }
    out.push(']');
    out
}

/// Decode `[[key, v…], …]` rows (the [`json_keyed_rows`] shape) into
/// `(parsed key, values)` pairs. `expect_vals` is the per-row value
/// count (excluding the key).
pub fn parse_keyed_rows<K: FromStr>(
    rows: &Json,
    field: &'static str,
    expect_vals: usize,
) -> Result<Vec<(K, Vec<u64>)>, SnapshotError> {
    let rows =
        rows.as_arr().ok_or(SnapshotError::Invalid { field, what: "rows are not an array" })?;
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let row =
            row.as_arr().ok_or(SnapshotError::Invalid { field, what: "row is not an array" })?;
        if row.len() != expect_vals + 1 {
            return Err(SnapshotError::Invalid { field, what: "row has the wrong arity" });
        }
        let key = row[0]
            .as_str()
            .ok_or(SnapshotError::Invalid { field, what: "row key is not a string" })?;
        let key = key
            .parse::<K>()
            .map_err(|_| SnapshotError::Invalid { field, what: "row key does not parse" })?;
        let vals = row[1..]
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or(SnapshotError::Invalid { field, what: "row value is not an integer" })
            })
            .collect::<Result<Vec<u64>, _>>()?;
        out.push((key, vals));
    }
    Ok(out)
}

/// A snapshot tagged with its report point and window geometry, as
/// read back from the JSON-lines stream a snapshot sink (in
/// `hhh-window`) wrote.
#[derive(Clone, Debug, PartialEq)]
pub struct StampedSnapshot {
    /// The report point the snapshot was taken at.
    pub at: Nanos,
    /// Start of the report window the state covers. Windowless probes
    /// (and pre-geometry v1 lines, which did not carry `start_ns`) use
    /// `start == at`.
    pub start: Nanos,
    /// The serialized detector state.
    pub snapshot: DetectorSnapshot,
}

impl StampedSnapshot {
    /// Render as the `{"type":"state",…}` JSON line shape.
    pub fn to_json(&self) -> String {
        Self::render(self.start, self.at, &self.snapshot)
    }

    /// Render a state line from borrowed parts — the one definition of
    /// the line shape, shared with the `hhh-window` sink so writer and
    /// aggregator output can never diverge byte-wise (and the hot sink
    /// path never clones the state body).
    pub fn render(start: Nanos, at: Nanos, snapshot: &DetectorSnapshot) -> String {
        format!(
            "{{\"type\":\"state\",\"at_ns\":{},\"start_ns\":{},\"snapshot\":{}}}",
            at.as_nanos(),
            start.as_nanos(),
            snapshot.to_json()
        )
    }

    /// Transcode into a v2 frame carrying the same geometry.
    pub fn to_frame(&self) -> Result<SnapshotFrame, SnapshotError> {
        self.snapshot.to_frame(self.start, self.at)
    }
}

/// Parse one line of a snapshot JSONL stream. Returns `Ok(Some(_))`
/// for a `state` line, `Ok(None)` for any other well-formed line
/// (`report` lines ride in the same stream), and an error for garbage.
pub fn parse_state_line(line: &str) -> Result<Option<StampedSnapshot>, SnapshotError> {
    let v = Json::parse(line)?;
    match v.get("type").and_then(Json::as_str) {
        Some("state") => {
            let at = Nanos::from_nanos(req_u64(&v, "at_ns")?);
            // Pre-geometry writers did not emit start_ns; default to
            // the report point (backward compatible).
            let start = match v.get("start_ns") {
                None => at,
                Some(j) => Nanos::from_nanos(j.as_u64().ok_or(SnapshotError::Invalid {
                    field: "start_ns",
                    what: "not an unsigned integer",
                })?),
            };
            let snapshot = DetectorSnapshot::from_value(req(&v, "snapshot")?)?;
            Ok(Some(StampedSnapshot { at, start, snapshot }))
        }
        Some(_) => Ok(None),
        None => Err(SnapshotError::Missing("type")),
    }
}

/// A state record off either wire: a v1 JSON line or a v2 binary
/// frame. The fold path ([`RestoredDetector::from_wire`] /
/// [`RestoredDetector::fold_wire`]) dispatches on the variant, so
/// aggregators accept both formats without transcoding — the binary
/// body decodes straight into a detector.
#[derive(Clone, Debug, PartialEq)]
pub enum WireSnapshot {
    /// A v1 `{"type":"state",…}` line.
    Json(StampedSnapshot),
    /// A v2 binary frame (body undecoded until folded).
    Binary(SnapshotFrame),
}

impl WireSnapshot {
    /// The report point the snapshot was taken at.
    pub fn at(&self) -> Nanos {
        match self {
            WireSnapshot::Json(s) => s.at,
            WireSnapshot::Binary(f) => f.at,
        }
    }

    /// Start of the report window the state covers.
    pub fn start(&self) -> Nanos {
        match self {
            WireSnapshot::Json(s) => s.start,
            WireSnapshot::Binary(f) => f.start,
        }
    }

    /// The detector kind label.
    pub fn kind(&self) -> &str {
        match self {
            WireSnapshot::Json(s) => &s.snapshot.kind,
            WireSnapshot::Binary(f) => &f.kind,
        }
    }

    /// Total (undecayed) weight covered by the state.
    pub fn total(&self) -> u64 {
        match self {
            WireSnapshot::Json(s) => s.snapshot.total,
            WireSnapshot::Binary(f) => f.total,
        }
    }

    /// The JSON-envelope view: pass-through for v1, a body transcode
    /// for v2 (used off the hot path — folding never needs it).
    pub fn to_stamped(&self) -> Result<StampedSnapshot, SnapshotError> {
        match self {
            WireSnapshot::Json(s) => Ok(s.clone()),
            WireSnapshot::Binary(f) => Ok(StampedSnapshot {
                at: f.at,
                start: f.start,
                snapshot: DetectorSnapshot::from_frame(f)?,
            }),
        }
    }
}

/// A detector rebuilt from a [`DetectorSnapshot`] — the **fold**
/// target of cross-process aggregation.
///
/// One variant per snapshot-capable detector; the dispatcher hides
/// which one a stream contains. Folding decodes the incoming snapshot
/// into a second restored detector and applies the in-process
/// [`MergeableDetector::merge`] — so the distributed result is, by
/// construction, the same algebra the sharded pipelines run, with
/// configuration mismatches reported as [`SnapshotError::Mismatch`]
/// instead of the panics the in-process path reserves for programmer
/// error.
#[derive(Clone, Debug)]
pub enum RestoredDetector<H: Hierarchy> {
    /// An [`ExactHhh`] (kind `exact`).
    Exact(ExactHhh<H>),
    /// A [`SpaceSavingHhh`] (kind `ss-hhh`).
    SpaceSaving(SpaceSavingHhh<H>),
    /// An [`Rhhh`] (kind `rhhh`).
    Rhhh(Rhhh<H>),
    /// An [`MvPipeHhh`] (kind `mvpipe`).
    MvPipe(MvPipeHhh<H>),
    /// A [`TdbfHhh`] (kind `tdbf-hhh`).
    Tdbf(TdbfHhh<H>),
}

impl<H> RestoredDetector<H>
where
    H: Hierarchy,
    H::Item: FromStr,
    H::Prefix: FromStr,
{
    /// Rebuild a live detector from a snapshot, dispatching on `kind`.
    pub fn from_snapshot(h: &H, snap: &DetectorSnapshot) -> Result<Self, SnapshotError> {
        match &*snap.kind {
            "exact" => ExactHhh::from_snapshot(h.clone(), snap).map(RestoredDetector::Exact),
            "ss-hhh" => {
                SpaceSavingHhh::from_snapshot(h.clone(), snap).map(RestoredDetector::SpaceSaving)
            }
            "rhhh" => Rhhh::from_snapshot(h.clone(), snap).map(RestoredDetector::Rhhh),
            "mvpipe" => MvPipeHhh::from_snapshot(h.clone(), snap).map(RestoredDetector::MvPipe),
            "tdbf-hhh" => TdbfHhh::from_snapshot(h.clone(), snap).map(RestoredDetector::Tdbf),
            other => Err(SnapshotError::Kind(other.to_owned())),
        }
    }

    /// Rebuild a live detector from either wire encoding.
    pub fn from_wire(h: &H, snap: &WireSnapshot) -> Result<Self, SnapshotError> {
        match snap {
            WireSnapshot::Json(s) => Self::from_snapshot(h, &s.snapshot),
            WireSnapshot::Binary(f) => Self::from_frame(h, f),
        }
    }

    /// Decode `snap` and merge it into this detector (the in-process
    /// merge recipe, behind the wire). Errors on kind or configuration
    /// mismatch; `self` is unchanged on error.
    pub fn fold(&mut self, h: &H, snap: &DetectorSnapshot) -> Result<(), SnapshotError> {
        let other = Self::from_snapshot(h, snap)?;
        self.fold_restored(other)
    }

    /// [`fold`](Self::fold) over either wire encoding — the v2 path
    /// decodes the binary body straight into a detector, which is what
    /// makes the aggregation tier fast.
    pub fn fold_wire(&mut self, h: &H, snap: &WireSnapshot) -> Result<(), SnapshotError> {
        let other = Self::from_wire(h, snap)?;
        self.fold_restored(other)
    }

    /// Merge an already-restored detector in (shared by every fold
    /// flavor). Errors on kind or configuration mismatch; `self` is
    /// unchanged on error.
    pub fn fold_restored(&mut self, other: Self) -> Result<(), SnapshotError> {
        match (self, other) {
            (RestoredDetector::Exact(a), RestoredDetector::Exact(b)) => {
                a.merge(&b);
                Ok(())
            }
            (RestoredDetector::SpaceSaving(a), RestoredDetector::SpaceSaving(b)) => {
                if a.capacity() != b.capacity() {
                    return Err(SnapshotError::Mismatch(format!(
                        "ss-hhh capacities differ: {} vs {}",
                        a.capacity(),
                        b.capacity()
                    )));
                }
                a.merge(&b);
                Ok(())
            }
            (RestoredDetector::Rhhh(a), RestoredDetector::Rhhh(b)) => {
                if a.capacity() != b.capacity() {
                    return Err(SnapshotError::Mismatch(format!(
                        "rhhh capacities differ: {} vs {}",
                        a.capacity(),
                        b.capacity()
                    )));
                }
                a.merge(&b);
                Ok(())
            }
            (RestoredDetector::MvPipe(a), RestoredDetector::MvPipe(b)) => {
                if a.buckets() != b.buckets() {
                    return Err(SnapshotError::Mismatch(format!(
                        "mvpipe bucket counts differ: {} vs {}",
                        a.buckets(),
                        b.buckets()
                    )));
                }
                a.merge(&b);
                Ok(())
            }
            (RestoredDetector::Tdbf(a), RestoredDetector::Tdbf(b)) => {
                if a.config_fingerprint() != b.config_fingerprint() {
                    return Err(SnapshotError::Mismatch(
                        "tdbf-hhh configurations differ".to_owned(),
                    ));
                }
                a.merge(&b);
                Ok(())
            }
            (a, b) => Err(SnapshotError::Mismatch(format!(
                "kinds differ: `{}` vs `{}`",
                a.kind(),
                b.kind()
            ))),
        }
    }

    /// The wire `kind` of the restored detector.
    pub fn kind(&self) -> &'static str {
        match self {
            RestoredDetector::Exact(_) => "exact",
            RestoredDetector::SpaceSaving(_) => "ss-hhh",
            RestoredDetector::Rhhh(_) => "rhhh",
            RestoredDetector::MvPipe(_) => "mvpipe",
            RestoredDetector::Tdbf(_) => "tdbf-hhh",
        }
    }

    /// Total (undecayed) weight covered by the state.
    pub fn total(&self) -> u64 {
        match self {
            RestoredDetector::Exact(d) => d.total(),
            RestoredDetector::SpaceSaving(d) => d.total(),
            RestoredDetector::Rhhh(d) => d.total(),
            RestoredDetector::MvPipe(d) => d.total(),
            RestoredDetector::Tdbf(d) => d.observed_weight(),
        }
    }

    /// Re-serialize the (merged) state — byte-identical to what the
    /// same state would emit in-process, so aggregator output can feed
    /// another aggregation tier.
    pub fn snapshot(&self) -> DetectorSnapshot {
        let snap = match self {
            RestoredDetector::Exact(d) => d.snapshot(),
            RestoredDetector::SpaceSaving(d) => d.snapshot(),
            RestoredDetector::Rhhh(d) => d.snapshot(),
            RestoredDetector::MvPipe(d) => d.snapshot(),
            RestoredDetector::Tdbf(d) => d.snapshot(),
        };
        snap.expect("every restorable detector serializes")
    }

    /// Natively encode the (merged) state as a v2 frame carrying the
    /// window geometry `start..=at` — the [`FrameEncode`] path, byte-
    /// identical to `snapshot().to_frame(start, at)` without the JSON
    /// detour. This is what lets a binary aggregation tier re-emit
    /// states as cheaply as it decodes them.
    pub fn to_frame(&self, start: Nanos, at: Nanos) -> Result<SnapshotFrame, SnapshotError> {
        match self {
            RestoredDetector::Exact(d) => d.encode_frame(start, at),
            RestoredDetector::SpaceSaving(d) => d.encode_frame(start, at),
            RestoredDetector::Rhhh(d) => d.encode_frame(start, at),
            RestoredDetector::MvPipe(d) => d.encode_frame(start, at),
            RestoredDetector::Tdbf(d) => d.encode_frame(start, at),
        }
    }

    /// The HHH report of the merged state. Windowed detectors report
    /// their whole (since-reset) window; the continuous TDBF detector
    /// reports as of `at` — pass the report point the snapshots were
    /// taken at.
    pub fn report(&self, at: Nanos, threshold: Threshold) -> Vec<HhhReport<H::Prefix>> {
        match self {
            RestoredDetector::Exact(d) => d.report(threshold),
            RestoredDetector::SpaceSaving(d) => d.report(threshold),
            RestoredDetector::Rhhh(d) => d.report(threshold),
            RestoredDetector::MvPipe(d) => d.report(threshold),
            RestoredDetector::Tdbf(d) => d.report_at(at, threshold),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_renders_stably() {
        let s = DetectorSnapshot {
            kind: Cow::Borrowed("exact"),
            total: 42,
            state_json: "{\"counts\":[]}".to_string(),
        };
        assert_eq!(
            s.to_json(),
            "{\"v\":1,\"kind\":\"exact\",\"total\":42,\"state\":{\"counts\":[]}}"
        );
    }

    #[test]
    fn envelope_roundtrips() {
        let s = DetectorSnapshot {
            kind: Cow::Borrowed("exact"),
            total: 42,
            state_json: "{\"counts\":[[\"7\",42]]}".to_string(),
        };
        let back = DetectorSnapshot::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_json(), s.to_json());
    }

    #[test]
    fn missing_version_reads_as_v1() {
        let back = DetectorSnapshot::from_json(
            "{\"kind\":\"exact\",\"total\":7,\"state\":{\"counts\":[]}}",
        )
        .unwrap();
        assert_eq!(back.total, 7);
        assert_eq!(back.kind, "exact");
    }

    #[test]
    fn unknown_version_rejected() {
        let e =
            DetectorSnapshot::from_json("{\"v\":99,\"kind\":\"exact\",\"total\":7,\"state\":{}}");
        assert_eq!(e, Err(SnapshotError::Version(99)));
    }

    #[test]
    fn missing_fields_are_typed_errors() {
        assert_eq!(
            DetectorSnapshot::from_json("{\"v\":1,\"total\":7,\"state\":{}}"),
            Err(SnapshotError::Missing("kind"))
        );
        assert_eq!(
            DetectorSnapshot::from_json("{\"v\":1,\"kind\":\"exact\",\"state\":{}}"),
            Err(SnapshotError::Missing("total"))
        );
        assert!(matches!(
            DetectorSnapshot::from_json("{\"v\":1,\"kind\":\"exact\",\"total\":7,\"state\":3}"),
            Err(SnapshotError::Invalid { field: "state", .. })
        ));
    }

    #[test]
    fn state_line_roundtrip_and_skip() {
        let s = StampedSnapshot {
            at: Nanos::from_secs(3),
            start: Nanos::from_secs(1),
            snapshot: DetectorSnapshot {
                kind: Cow::Borrowed("exact"),
                total: 300,
                state_json: "{\"counts\":[[\"7\",300]]}".into(),
            },
        };
        let parsed = parse_state_line(&s.to_json()).unwrap();
        assert_eq!(parsed, Some(s));
        // Report lines in the same stream are skipped, not errors.
        assert_eq!(parse_state_line("{\"type\":\"report\",\"series\":0}"), Ok(None));
        assert!(parse_state_line("{\"series\":0}").is_err());
        assert!(parse_state_line("not json").is_err());
    }

    #[test]
    fn state_line_without_start_ns_defaults_to_at() {
        // Pre-geometry v1 writers did not emit start_ns.
        let line = "{\"type\":\"state\",\"at_ns\":5000000000,\"snapshot\":{\"v\":1,\
                    \"kind\":\"exact\",\"total\":7,\"state\":{\"counts\":[[\"7\",7]]}}}";
        let parsed = parse_state_line(line).unwrap().unwrap();
        assert_eq!(parsed.at, Nanos::from_secs(5));
        assert_eq!(parsed.start, Nanos::from_secs(5), "missing start_ns reads as at");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("10.0.0.0/8"), "\"10.0.0.0/8\"");
    }

    #[test]
    fn keyed_rows_render_and_parse() {
        let rows = vec![("a", vec![1, 2]), ("b", vec![3])];
        assert_eq!(json_keyed_rows(&rows), "[[\"a\",1,2],[\"b\",3]]");
        let back: Vec<(String, Vec<u64>)> =
            parse_keyed_rows(&Json::parse("[[\"a\",1,2]]").unwrap(), "rows", 2).unwrap();
        assert_eq!(back, vec![("a".to_string(), vec![1, 2])]);
        // Arity mismatch is a typed error.
        assert!(matches!(
            parse_keyed_rows::<String>(&Json::parse("[[\"a\",1,2],[\"b\",3]]").unwrap(), "rows", 2),
            Err(SnapshotError::Invalid { field: "rows", .. })
        ));
    }
}
