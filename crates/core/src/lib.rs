//! # hhh-core
//!
//! Hierarchical heavy hitter (HHH) detection: the algorithms the paper
//! studies, the baselines it cites, and the windowless detector its §3
//! proposes.
//!
//! ## The problem
//!
//! A *heavy hitter* (HH) is a flow key whose traffic exceeds a fraction
//! θ of the total in some measurement interval. A *hierarchical* heavy
//! hitter generalizes keys along a prefix hierarchy (e.g. IPv4
//! /32→/24→/16→/8→/0) and asks for prefixes whose traffic exceeds θ·N
//! **after excluding the contribution of their HHH descendants** — the
//! discount is what makes the problem non-trivial: without it every
//! ancestor of a heavy host would trivially be "heavy" too.
//!
//! ## What's here
//!
//! | Type | Kind | Role in the paper |
//! |------|------|-------------------|
//! | [`ExactHhh`] | exact, windowed | ground truth for every experiment (the paper's own analysis is offline/exact) |
//! | [`SpaceSavingHhh`] | approximate, windowed | the classic per-level streaming HHH (full ancestry) |
//! | [`Rhhh`] | approximate, windowed | randomized constant-time HHH (Ben Basat et al., SIGCOMM 2017) — the state of the art the calibration note positions this poster against |
//! | [`MementoHhh`] | approximate, **window-native** | per-level Memento-style sliding summaries (Ben-Basat et al., CoNEXT 2018): the detector maintains its own packet window with O(1) slide, so reports always cover the last `W` packets without engine resets or per-position merges |
//! | [`MvPipeHhh`] | approximate, windowed | single bottom-level pipe of majority-vote buckets (MVPipe, Tang et al., 2021): deterministic O(1) per packet regardless of hierarchy depth, ancestors aggregated lazily at report time |
//! | [`TdbfHhh`] | approximate, **windowless** | the paper's §3 proposal: per-level on-demand time-decaying Bloom filters + decayed candidate tables |
//! | [`HashPipe`] | HH baseline | "Heavy-Hitter Detection Entirely in the Data Plane" (SOSR 2017), the paper's ref. \[5\] |
//! | [`UnivMonLite`] | HH baseline | UnivMon-style universal sketch (SIGCOMM 2016), the paper's ref. \[4\] |
//! | [`TwoDimExactHhh`] | exact, 2-D | (src, dst) lattice HHH with full descendant exclusion |
//!
//! Windowed detectors implement [`HhhDetector`]; the windowless one
//! implements [`ContinuousDetector`]. The window engine in `hhh-window`
//! drives either.
//!
//! ## Semantics (normative)
//!
//! All detectors in this crate use the *exclude-all-HHH-descendants*
//! discount (the definition quoted in the paper's introduction):
//! bottom-up over levels, a prefix is an HHH iff its count minus the
//! counts of its maximal HHH descendants reaches the threshold. The
//! exact reference implementation is [`ExactHhh::report`]; every
//! approximate detector is tested against it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod detector;
mod exact;
mod hashpipe;
mod memento;
mod mvpipe;
mod report;
mod rhhh;
pub mod snapshot;
mod ss_hhh;
mod tdbf_hhh;
mod twodim;
mod univmon;

pub use detector::{ContinuousDetector, HhhDetector, MergeableDetector};
pub use exact::{discount_bottom_up, ExactHhh};
pub use hashpipe::HashPipe;
pub use memento::MementoHhh;
pub use mvpipe::{MvBucket, MvPipeHhh};
pub use report::{HhhReport, Threshold};
pub use rhhh::Rhhh;
pub use snapshot::{
    parse_state_line, DetectorSnapshot, FrameEncode, RestoredDetector, SnapshotError,
    SnapshotFrame, StampedSnapshot, WireFormat, WireSnapshot,
};
pub use ss_hhh::SpaceSavingHhh;
pub use tdbf_hhh::{TdbfHhh, TdbfHhhConfig};
pub use twodim::TwoDimExactHhh;
pub use univmon::UnivMonLite;
