//! UnivMon-style universal monitoring (Liu, Manousis, Vorsanger, Sekar,
//! Braverman, SIGCOMM 2016): the paper's reference [4], the other
//! disjoint-window system it measures against.
//!
//! Universal sketching maintains `L` nested substreams — level `i`
//! contains the keys whose hash has `i` trailing zero bits, i.e. a
//! `2^-i` sample — each summarized by a Count Sketch plus a top-k
//! candidate table. From those one structure answers many G-sum
//! queries (L2, entropy, counts) via the recursive unbiased estimator,
//! and heavy hitters fall out of level 0's candidate table.
//!
//! This is a faithful but *lite* rendition: candidate tables are exact
//! top-k by current estimate (the paper uses a heap; same content), and
//! the G-sum recursion is implemented exactly as in the paper. The
//! omissions are documented in DESIGN.md (no sketch merging across
//! switches, no per-5-tuple app-level metrics).

use hhh_sketches::hash::{hash_of, mix64};
use hhh_sketches::CountSketch;
use std::collections::HashMap;
use std::hash::Hash;

/// One sampling level: a Count Sketch plus its candidate table.
#[derive(Clone, Debug)]
struct Level<K> {
    sketch: CountSketch<K>,
    /// Current top candidates with their latest estimates.
    candidates: HashMap<K, u64>,
    top_k: usize,
}

impl<K: Hash + Eq + Copy> Level<K> {
    fn update(&mut self, key: K, weight: u64) {
        self.sketch.update(&key, weight);
        let est = self.sketch.estimate(&key);
        if let std::collections::hash_map::Entry::Occupied(mut e) = self.candidates.entry(key) {
            e.insert(est);
            return;
        }
        if self.candidates.len() < self.top_k {
            self.candidates.insert(key, est);
            return;
        }
        // Replace the weakest candidate if this key now beats it.
        if let Some((&weak_k, &weak_e)) =
            self.candidates.iter().min_by_key(|(k, e)| (**e, hash_of(*k, 0)))
        {
            if est > weak_e {
                self.candidates.remove(&weak_k);
                self.candidates.insert(key, est);
            }
        }
    }
}

/// The universal sketch.
#[derive(Clone, Debug)]
pub struct UnivMonLite<K> {
    levels: Vec<Level<K>>,
    sample_seed: u64,
    total: u64,
}

impl<K: Hash + Eq + Copy> UnivMonLite<K> {
    /// Build with `levels` nested substreams, Count Sketches of
    /// `width × depth`, and `top_k` candidates per level.
    pub fn new(levels: usize, width: usize, depth: usize, top_k: usize, seed: u64) -> Self {
        assert!(levels > 0 && top_k > 0, "levels and top_k must be non-zero");
        UnivMonLite {
            levels: (0..levels)
                .map(|i| Level {
                    sketch: CountSketch::new(width, depth, seed.wrapping_add(i as u64 * 7919)),
                    candidates: HashMap::with_capacity(top_k * 2),
                    top_k,
                })
                .collect(),
            sample_seed: mix64(seed ^ 0x00AB_CDEF),
            total: 0,
        }
    }

    /// Number of sampling levels.
    pub fn levels(&self) -> usize {
        self.levels.len()
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate memory footprint in bytes.
    pub fn state_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.sketch.state_bytes() + l.top_k * (core::mem::size_of::<K>() + 24))
            .sum()
    }

    /// The deepest sampling level a key belongs to (trailing-zeros
    /// nesting: level `i` requires `i` trailing zero bits).
    fn depth_of(&self, key: &K) -> usize {
        let h = hash_of(key, self.sample_seed);
        (h.trailing_zeros() as usize).min(self.levels.len() - 1)
    }

    /// Observe `weight` for `key`.
    pub fn observe(&mut self, key: K, weight: u64) {
        self.total += weight;
        let depth = self.depth_of(&key);
        for level in &mut self.levels[..=depth] {
            level.update(key, weight);
        }
    }

    /// Level-0 point estimate (unbiased, Count Sketch median).
    pub fn estimate(&self, key: &K) -> u64 {
        self.levels[0].sketch.estimate(key)
    }

    /// Heavy hitters: level-0 candidates at or above `threshold`,
    /// descending by estimate.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)> {
        let mut out: Vec<(K, u64)> = self.levels[0]
            .candidates
            .keys()
            .map(|&k| (k, self.levels[0].sketch.estimate(&k)))
            .filter(|(_, e)| *e >= threshold)
            .collect();
        out.sort_by_key(|e| core::cmp::Reverse(e.1));
        out
    }

    /// The recursive G-sum estimator: `Y_L = Σ g(f̂)` over the deepest
    /// level's candidates; `Y_i = 2·Y_{i+1} + Σ_{x ∈ Q_i} (1 −
    /// 2·sampled_{i+1}(x))·g(f̂_i(x))`. Returns `Y_0`, the estimate of
    /// `Σ_x g(f_x)` over the whole stream.
    pub fn gsum<G: Fn(u64) -> f64>(&self, g: G) -> f64 {
        let last = self.levels.len() - 1;
        let mut y: f64 = self.levels[last]
            .candidates
            .keys()
            .map(|k| g(self.levels[last].sketch.estimate(k)))
            .sum();
        for i in (0..last).rev() {
            let level = &self.levels[i];
            let correction: f64 = level
                .candidates
                .keys()
                .map(|k| {
                    let sampled_deeper = self.depth_of(k) > i;
                    let sign = if sampled_deeper { -1.0 } else { 1.0 };
                    sign * g(level.sketch.estimate(k))
                })
                .sum();
            y = 2.0 * y + correction;
        }
        y
    }

    /// Estimated number of distinct keys (G-sum with g = 1).
    pub fn distinct_estimate(&self) -> f64 {
        self.gsum(|f| if f > 0 { 1.0 } else { 0.0 })
    }

    /// Estimated second frequency moment `Σ f²` (G-sum with g = f²).
    pub fn l2_moment(&self) -> f64 {
        self.gsum(|f| (f as f64) * (f as f64))
    }

    /// Reset all levels.
    pub fn reset(&mut self) {
        for l in &mut self.levels {
            l.sketch.clear();
            l.candidates.clear();
        }
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn skewed_stream(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                if i % 5 < 2 {
                    (i % 5) as u64 // two keys with 20% each
                } else {
                    100 + rng.gen_range(0..5_000)
                }
            })
            .collect()
    }

    #[test]
    fn heavy_hitters_found() {
        let mut um = UnivMonLite::<u64>::new(12, 512, 5, 32, 1);
        let stream = skewed_stream(100_000, 2);
        for &k in &stream {
            um.observe(k, 1);
        }
        let hh = um.heavy_hitters(10_000);
        let keys: std::collections::HashSet<u64> = hh.iter().map(|e| e.0).collect();
        assert!(keys.contains(&0), "20% key 0 missing: {hh:?}");
        assert!(keys.contains(&1), "20% key 1 missing: {hh:?}");
        // Estimates in the right ballpark.
        for (k, e) in &hh {
            if *k < 2 {
                assert!((*e as f64 - 20_000.0).abs() / 20_000.0 < 0.2, "key {k} est {e}");
            }
        }
    }

    #[test]
    fn sampling_is_nested_and_halving() {
        let um = UnivMonLite::<u64>::new(16, 64, 3, 8, 9);
        let mut per_level = [0u64; 16];
        for k in 0..100_000u64 {
            let d = um.depth_of(&k);
            for lvl in per_level.iter_mut().take(d + 1) {
                *lvl += 1;
            }
        }
        // Level i should hold about 2^-i of keys.
        for i in 1..8 {
            let ratio = per_level[i] as f64 / per_level[i - 1] as f64;
            assert!(
                (ratio - 0.5).abs() < 0.1,
                "level {i} ratio {ratio} not ~0.5 ({} vs {})",
                per_level[i],
                per_level[i - 1]
            );
        }
    }

    #[test]
    fn distinct_estimate_ballpark() {
        let mut um = UnivMonLite::<u64>::new(14, 512, 5, 64, 3);
        let distinct = 20_000u64;
        for k in 0..distinct {
            um.observe(k, 1);
        }
        let est = um.distinct_estimate();
        let rel = (est - distinct as f64).abs() / distinct as f64;
        assert!(rel < 0.5, "distinct estimate {est} vs {distinct} (rel {rel})");
    }

    #[test]
    fn l2_moment_ballpark() {
        let mut um = UnivMonLite::<u64>::new(12, 1024, 7, 64, 5);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &k in &skewed_stream(50_000, 7) {
            um.observe(k, 1);
            *truth.entry(k).or_default() += 1;
        }
        let true_l2: f64 = truth.values().map(|&v| (v * v) as f64).sum();
        let est = um.l2_moment();
        let rel = (est - true_l2).abs() / true_l2;
        // The skew means L2 is dominated by the two 20% keys, which the
        // candidate tables capture well.
        assert!(rel < 0.3, "L2 estimate {est} vs {true_l2} (rel {rel})");
    }

    #[test]
    fn reset_clears() {
        let mut um = UnivMonLite::<u64>::new(4, 32, 3, 4, 0);
        um.observe(1, 10);
        assert_eq!(um.total(), 10);
        um.reset();
        assert_eq!(um.total(), 0);
        assert!(um.heavy_hitters(1).is_empty());
        assert!(um.state_bytes() > 0);
        assert_eq!(um.levels(), 4);
    }
}
