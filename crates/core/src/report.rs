//! Report types: what a detector says when asked for HHHs.

use core::fmt;

/// A relative threshold: the fraction θ of total traffic a prefix must
/// exceed (after discounting) to be a hierarchical heavy hitter. The
/// paper uses θ ∈ {1%, 5%, 10%}.
#[derive(Clone, Copy, Debug, PartialEq, PartialOrd)]
pub struct Threshold(f64);

impl Threshold {
    /// From a fraction in `(0, 1]`. Panics outside that range.
    pub fn fraction(f: f64) -> Self {
        assert!(
            f.is_finite() && f > 0.0 && f <= 1.0,
            "threshold fraction must be in (0,1], got {f}"
        );
        Threshold(f)
    }

    /// From percent, e.g. `Threshold::percent(5.0)` for the paper's 5%.
    pub fn percent(p: f64) -> Self {
        Self::fraction(p / 100.0)
    }

    /// The fraction θ.
    pub fn as_fraction(&self) -> f64 {
        self.0
    }

    /// The absolute threshold `⌈θ·total⌉` for a given total. The
    /// ceiling keeps the comparison strict in integer arithmetic and
    /// never lets a threshold round down to zero.
    pub fn absolute(&self, total: u64) -> u64 {
        ((self.0 * total as f64).ceil() as u64).max(1)
    }
}

impl fmt::Display for Threshold {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.0 * 100.0)
    }
}

/// One reported hierarchical heavy hitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HhhReport<P> {
    /// The reported prefix.
    pub prefix: P,
    /// Hierarchy level of the prefix (0 = most specific).
    pub level: usize,
    /// Estimated *total* traffic of the prefix (before discounting).
    pub estimate: u64,
    /// Estimated *discounted* traffic (total minus maximal HHH
    /// descendants) — the quantity compared against the threshold.
    pub discounted: u64,
    /// Lower bound on the true discounted traffic, when the detector
    /// can provide one (equal to `discounted` for exact detectors).
    pub lower_bound: u64,
}

impl<P: fmt::Display> fmt::Display for HhhReport<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (level {}): {} total, {} discounted",
            self.prefix, self.level, self.estimate, self.discounted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_constructors_agree() {
        assert_eq!(Threshold::percent(5.0).as_fraction(), 0.05);
        assert_eq!(Threshold::fraction(0.1).as_fraction(), 0.1);
    }

    #[test]
    fn absolute_rounds_up_and_never_zero() {
        let t = Threshold::percent(1.0);
        assert_eq!(t.absolute(1000), 10);
        assert_eq!(t.absolute(1001), 11); // ceil(10.01)
        assert_eq!(t.absolute(0), 1);
        assert_eq!(t.absolute(10), 1); // ceil(0.1) = 1
    }

    #[test]
    fn display_formats() {
        assert_eq!(Threshold::percent(5.0).to_string(), "5%");
        let r = HhhReport {
            prefix: "10.0.0.0/8",
            level: 3,
            estimate: 100,
            discounted: 60,
            lower_bound: 55,
        };
        assert_eq!(r.to_string(), "10.0.0.0/8 (level 3): 100 total, 60 discounted");
    }

    #[test]
    #[should_panic(expected = "must be in (0,1]")]
    fn zero_threshold_rejected() {
        let _ = Threshold::fraction(0.0);
    }

    #[test]
    #[should_panic(expected = "must be in (0,1]")]
    fn over_one_threshold_rejected() {
        let _ = Threshold::fraction(1.5);
    }
}
