//! MVPipe-style HHH: a **single bottom-level pipe** of majority-vote
//! buckets, O(1) per packet regardless of hierarchy depth.
//!
//! Every other per-level detector here pays one sketch update per
//! hierarchy level per packet (RHHH flattens that only by sampling a
//! level, trading convergence time). MVPipe (Tang et al., 2021) keeps
//! *one* array of buckets keyed by bottom-level prefixes and defers the
//! hierarchy entirely to report time: a packet hashes to exactly one
//! bucket and runs a majority-vote update there — constant work whether
//! the hierarchy has 5 levels (byte-wise IPv4) or 9 (hextet IPv6).
//! Ancestor estimates are produced lazily by generalizing the monitored
//! bottom-level candidates upward and summing, then running the shared
//! bottom-up discount.
//!
//! Per bucket the detector keeps the classic majority-vote triple:
//! the total weight hashed into the bucket (an upper bound on any key
//! monitored there), the current candidate key, and its vote margin (a
//! lower bound on the candidate's true weight in the bucket — votes
//! only accumulate on the candidate's own arrivals). Keys with true
//! weight above half their bucket's traffic are guaranteed monitored.

use crate::detector::{HhhDetector, MergeableDetector};
use crate::exact::discount_bottom_up;
use crate::report::{HhhReport, Threshold};
use hhh_hierarchy::Hierarchy;
use hhh_sketches::hash::hash_of;
use std::collections::HashMap;

/// Seed of the bucket-placement hash. Fixed so a key occupies the same
/// bucket in every process — bucket-wise merge and snapshot restore
/// depend on it.
const BUCKET_SEED: u64 = 0x4D56_5049; // "MVPI"

/// Seed of the hash that breaks vote ties during merge. Fixed so the
/// surviving candidate is identical across processes and hosts.
const MERGE_TIE_SEED: u64 = 0x4D56_7143;

/// One majority-vote bucket: the total weight hashed here, the current
/// candidate key, and its vote margin.
///
/// `repr(C)` pins the counter pair to the bucket's first 16 bytes:
/// the per-packet read-modify-write then always hits one aligned
/// 16-byte chunk, even when a wide-key bucket straddles a cache
/// line (the key is a load-only compare off the critical path).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct MvBucket<K> {
    /// Total weight hashed into this bucket; an upper bound on the
    /// candidate's true weight here.
    pub count: u64,
    /// The candidate's vote margin; a lower bound on its true weight
    /// here (votes only grow on the candidate's own arrivals).
    pub vote: u64,
    /// The current candidate key (the majority-vote winner so far).
    pub key: K,
}

/// Single-pipe majority-vote HHH detector (MVPipe).
#[derive(Clone, Debug)]
pub struct MvPipeHhh<H: Hierarchy> {
    hierarchy: H,
    /// The bottom-level pipe, keyed by raw **items** rather than
    /// level-0 prefixes — the two are bijective
    /// ([`Hierarchy::prefix_item`]), and the item is strictly narrower
    /// (an IPv6 prefix is a u128 *plus* a length byte plus alignment
    /// padding: 32 B where the item is 16 B). That keeps a slot at
    /// 24 B for IPv4 and 32 B for IPv6 and makes the hot-path key
    /// compare a bare integer compare. Placement is
    /// `hash(item_prefix(key)) % buckets.len()` — the prefix hash, so
    /// the wire decoder (which sees prefix rows) recomputes identical
    /// slots. A bucket with `count == 0` is empty (its key is an
    /// arbitrary filler) — a sentinel instead of `Option` so a slot
    /// carries no discriminant padding.
    buckets: Vec<MvBucket<H::Item>>,
    total: u64,
}

impl<H: Hierarchy> MvPipeHhh<H> {
    /// A detector with `buckets` majority-vote buckets. For a
    /// threshold θ, `buckets ≥ 2/θ` keeps the per-bucket load below
    /// the threshold so true HHH keys win their majority votes.
    pub fn new(hierarchy: H, buckets: usize) -> Self {
        assert!(buckets > 0, "MvPipeHhh bucket count must be non-zero");
        let empty = MvBucket { key: H::Item::default(), count: 0, vote: 0 };
        MvPipeHhh { hierarchy, buckets: vec![empty; buckets], total: 0 }
    }

    /// Number of buckets in the pipe (the construction parameter).
    pub fn buckets(&self) -> usize {
        self.buckets.len()
    }

    /// The occupied buckets, in pipe order (read-only, for
    /// diagnostics). Keys are raw items; generalize with
    /// [`Hierarchy::item_prefix`] for display.
    pub fn bucket_entries(&self) -> impl Iterator<Item = &MvBucket<H::Item>> {
        self.buckets.iter().filter(|b| b.count > 0)
    }

    /// Build per-level estimate maps lazily from the bottom pipe:
    /// level 0 holds the monitored candidates' bucket totals; each
    /// higher level is the previous one generalized one step and
    /// summed. This is the only place the hierarchy is touched — the
    /// update path never sees it.
    fn level_maps(&self) -> Vec<HashMap<H::Prefix, u64>> {
        let n = self.hierarchy.levels();
        let mut maps: Vec<HashMap<H::Prefix, u64>> = Vec::with_capacity(n);
        maps.push(
            self.bucket_entries().map(|b| (self.hierarchy.item_prefix(b.key), b.count)).collect(),
        );
        for level in 0..n - 1 {
            let mut parents: HashMap<H::Prefix, u64> = HashMap::with_capacity(maps[level].len());
            for (&p, &c) in &maps[level] {
                let parent = self.hierarchy.parent(p).expect("non-root");
                *parents.entry(parent).or_default() += c;
            }
            maps.push(parents);
        }
        maps
    }

    /// Sorted, self-describing `(prefix, count, vote)` rows — the
    /// serialization surface of the pipe. Rows sort by the prefix's
    /// display form, so equal pipes (as bucket sets) export identical
    /// rows; bucket indexes do not ride along because placement is
    /// recomputed from the key on restore.
    fn export_rows(&self) -> Vec<(String, u64, u64)> {
        let mut rows: Vec<(String, u64, u64)> = self
            .bucket_entries()
            .map(|b| (self.hierarchy.item_prefix(b.key).to_string(), b.count, b.vote))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows
    }
}

impl<H: Hierarchy> HhhDetector<H> for MvPipeHhh<H> {
    /// The single-packet path is the batched path on a one-element
    /// batch — one code path to maintain, identical state either way.
    #[inline]
    fn observe(&mut self, item: H::Item, weight: u64) {
        self.observe_batch(&[(item, weight)]);
    }

    /// The O(1)-per-packet hot path, fully fused and allocation-free:
    /// hash the item's bottom-level prefix (the host prefix — no mask
    /// table, no level arithmetic) and run one majority-vote bucket
    /// update keyed by the raw item, per packet. A multi-level
    /// detector stages prefixes level-major through a scratch buffer;
    /// a single-pipe detector has exactly one level, so there is
    /// nothing to stage — the hot loop's memory traffic is one
    /// sentinel-packed bucket per packet regardless of item width or
    /// hierarchy depth, and the key compare is a bare integer compare.
    fn observe_batch(&mut self, batch: &[(H::Item, u64)]) {
        let MvPipeHhh { hierarchy, buckets, total } = self;
        let n = buckets.len() as u64;
        for &(item, w) in batch {
            *total += w;
            let p = hierarchy.item_prefix(item);
            let b = &mut buckets[(hash_of(&p, BUCKET_SEED) % n) as usize];
            if b.count == 0 {
                *b = MvBucket { key: item, count: w, vote: w };
            } else {
                b.count += w;
                if b.key == item {
                    b.vote += w;
                } else if b.vote >= w {
                    b.vote -= w;
                } else {
                    // Majority flip: the challenger overcomes the
                    // incumbent's margin and takes the bucket with
                    // the remainder as its own margin.
                    b.vote = w - b.vote;
                    b.key = item;
                }
            }
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn report(&self, threshold: Threshold) -> Vec<HhhReport<H::Prefix>> {
        let t = threshold.absolute(self.total);
        let mut reports = discount_bottom_up(&self.hierarchy, &self.level_maps(), t);
        // Lower bounds: a bucket's candidate holds at least its vote
        // margin, so a report's slack is the count-minus-vote sum of
        // its monitored descendants' buckets.
        for r in &mut reports {
            let slack: u64 = self
                .bucket_entries()
                .filter(|b| self.hierarchy.contains(r.prefix, self.hierarchy.item_prefix(b.key)))
                .map(|b| b.count - b.vote)
                .sum();
            r.lower_bound = r.discounted.saturating_sub(slack);
        }
        reports
    }

    fn reset(&mut self) {
        for b in &mut self.buckets {
            b.count = 0;
            b.vote = 0;
        }
        self.total = 0;
    }

    fn state_bytes(&self) -> usize {
        self.buckets.len() * core::mem::size_of::<MvBucket<H::Item>>()
    }

    fn name(&self) -> &'static str {
        "mvpipe"
    }
}

impl<H: Hierarchy> MergeableDetector for MvPipeHhh<H> {
    /// Bucket-wise merge in the union-then-prune spirit of
    /// [`SpaceSaving`](hhh_sketches::SpaceSaving): bucket `i` of both
    /// pipes covers the same key population (placement is the fixed
    /// hash), totals add, and the candidates fight one majority vote —
    /// the larger margin wins and keeps the difference, so the winner's
    /// vote stays a lower bound over the combined stream. Vote ties
    /// resolve by a fixed key hash, never by argument internals beyond
    /// the bucket contents, so a pipe restored from a snapshot merges
    /// to the identical result — which is what makes cross-process
    /// folds reproduce in-process merges bit-for-bit.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.buckets.len(), other.buckets.len(), "mvpipe bucket count mismatch");
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            if b.count == 0 {
                continue;
            }
            if a.count == 0 {
                *a = *b;
            } else {
                a.count += b.count;
                if a.key == b.key {
                    a.vote += b.vote;
                } else {
                    let keep_a = match a.vote.cmp(&b.vote) {
                        core::cmp::Ordering::Greater => true,
                        core::cmp::Ordering::Less => false,
                        core::cmp::Ordering::Equal => {
                            (hash_of(&a.key, MERGE_TIE_SEED), a.key)
                                <= (hash_of(&b.key, MERGE_TIE_SEED), b.key)
                        }
                    };
                    if keep_a {
                        a.vote -= b.vote;
                    } else {
                        a.vote = b.vote - a.vote;
                        a.key = b.key;
                    }
                }
            }
        }
        self.total += other.total;
    }

    /// Wire format: `{"buckets":B,"entries":[[prefix, count, vote],
    /// …]}`, rows sorted by the prefix's display form. Bucket indexes
    /// are omitted — placement is the fixed hash of the key, so the
    /// decoder ([`from_snapshot`](Self::from_snapshot)) re-derives
    /// them, and folding restored pipes is the bucket-wise
    /// [`merge`](Self::merge).
    fn snapshot(&self) -> Option<crate::snapshot::DetectorSnapshot> {
        let rows: Vec<(String, Vec<u64>)> =
            self.export_rows().into_iter().map(|(k, c, v)| (k, vec![c, v])).collect();
        Some(crate::snapshot::DetectorSnapshot {
            kind: "mvpipe".into(),
            total: self.total,
            state_json: format!(
                "{{\"buckets\":{},\"entries\":{}}}",
                self.buckets.len(),
                crate::snapshot::json_keyed_rows(&rows)
            ),
        })
    }

    /// Native v2 encode ([`FrameEncode`](crate::snapshot::FrameEncode))
    /// — byte-identical to transcoding
    /// [`snapshot`](MergeableDetector::snapshot), without rendering or
    /// parsing JSON.
    fn to_frame(
        &self,
        start: hhh_nettypes::Nanos,
        at: hhh_nettypes::Nanos,
    ) -> Option<crate::snapshot::SnapshotFrame> {
        crate::snapshot::FrameEncode::encode_frame(self, start, at).ok()
    }
}

impl<H: Hierarchy> crate::snapshot::FrameEncode for MvPipeHhh<H> {
    fn frame_kind(&self) -> &'static str {
        "mvpipe"
    }

    fn frame_total(&self) -> u64 {
        self.total
    }

    fn frame_digest(&self) -> u64 {
        crate::snapshot::binary::mvpipe_config_digest(self.buckets.len() as u64)
    }

    /// The v2 `mvpipe` body straight from the pipe: bucket count, then
    /// the sorted `(prefix, count, vote)` rows — the same rows, in the
    /// same order, as the JSON body, so the two encode paths produce
    /// identical bytes.
    fn write_frame_body(&self, out: &mut Vec<u8>) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::binary::{put_str, put_uv};
        put_uv(out, self.buckets.len() as u64);
        let rows = self.export_rows();
        put_uv(out, rows.len() as u64);
        for (key, count, vote) in &rows {
            put_str(out, key);
            put_uv(out, *count);
            put_uv(out, *vote);
        }
        Ok(())
    }
}

impl<H: Hierarchy> MvPipeHhh<H>
where
    H::Prefix: std::str::FromStr,
{
    /// Rebuild a detector from a serialized
    /// [`snapshot`](MergeableDetector::snapshot) — the decode half of
    /// the round-trip codec. The restored detector reports and merges
    /// identically to the one that emitted the snapshot (bucket
    /// placement is recomputed from the keys, and every report/merge
    /// is a pure function of the bucket contents).
    pub fn from_snapshot(
        hierarchy: H,
        snap: &crate::snapshot::DetectorSnapshot,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{parse_keyed_rows, req, req_u64, SnapshotError};
        if snap.kind != "mvpipe" {
            return Err(SnapshotError::Mismatch(format!(
                "expected kind `mvpipe`, got `{}`",
                snap.kind
            )));
        }
        let state = snap.state()?;
        let buckets = req_u64(&state, "buckets")?;
        let rows: Vec<(H::Prefix, Vec<u64>)> =
            parse_keyed_rows(req(&state, "entries")?, "entries", 2)?;
        Self::from_wire_rows(
            hierarchy,
            buckets,
            rows.into_iter().map(|(k, v)| (k, v[0], v[1])).collect(),
            snap.total,
        )
    }

    /// The validated decode core both wire formats share: rebuild the
    /// pipe from already-parsed `(prefix, count, vote)` rows, rejecting
    /// hostile bucket counts, non-bottom-level prefixes, `vote >
    /// count`, duplicate prefixes, distinct prefixes colliding into
    /// one bucket (impossible in an honestly encoded pipe), and an
    /// envelope total that does not equal the sum of bucket counts.
    pub(crate) fn from_wire_rows(
        hierarchy: H,
        buckets: u64,
        rows: Vec<(H::Prefix, u64, u64)>,
        envelope_total: u64,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let buckets = crate::ss_hhh::wire_capacity(buckets)?;
        if rows.len() > buckets {
            return Err(SnapshotError::Invalid {
                field: "entries",
                what: "more entries than buckets",
            });
        }
        let empty = MvBucket { key: H::Item::default(), count: 0, vote: 0 };
        let mut pipe: Vec<MvBucket<H::Item>> = vec![empty; buckets];
        let mut total: u64 = 0;
        for (key, count, vote) in rows {
            if count == 0 {
                // An occupied bucket always carries weight; a zero-count
                // row would vanish on re-encode, so no honest encoder
                // emits one.
                return Err(SnapshotError::Invalid { field: "entries", what: "zero-count entry" });
            }
            if vote > count {
                return Err(SnapshotError::Invalid {
                    field: "entries",
                    what: "vote exceeds count",
                });
            }
            // The pipe stores raw items; only level-0 prefixes invert.
            let Some(item) = hierarchy.prefix_item(key) else {
                return Err(SnapshotError::Invalid {
                    field: "entries",
                    what: "prefix is not bottom-level",
                });
            };
            let slot = (hash_of(&key, BUCKET_SEED) % buckets as u64) as usize;
            if pipe[slot].count > 0 {
                return Err(if pipe[slot].key == item {
                    SnapshotError::Invalid { field: "entries", what: "duplicate prefix" }
                } else {
                    SnapshotError::Invalid {
                        field: "entries",
                        what: "two prefixes hash to one bucket",
                    }
                });
            }
            pipe[slot] = MvBucket { key: item, count, vote };
            total = total
                .checked_add(count)
                .ok_or(SnapshotError::Invalid { field: "entries", what: "counts overflow u64" })?;
        }
        if total != envelope_total {
            return Err(SnapshotError::Invalid {
                field: "total",
                what: "bucket counts do not sum to the envelope total",
            });
        }
        Ok(MvPipeHhh { hierarchy, buckets: pipe, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactHhh;
    use hhh_hierarchy::{Ipv4Hierarchy, Ipv6Hierarchy};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Zipf-ish deterministic stream for comparisons (the `ss_hhh`
    /// test stream).
    fn stream(n: usize, seed: u64) -> Vec<(u32, u64)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let rank = (rng.gen::<f64>().powi(3) * 200.0) as u32; // skewed
                let net = rank % 12;
                let item = (10 << 24) | (net << 16) | rank;
                (item, 40 + (rank as u64 * 7) % 1400)
            })
            .collect()
    }

    #[test]
    fn recall_is_high_with_enough_buckets() {
        let h = Ipv4Hierarchy::bytes();
        let mut exact = ExactHhh::new(h);
        let mut mv = MvPipeHhh::new(h, 4096);
        for (item, w) in stream(20_000, 5) {
            exact.observe(item, w);
            mv.observe(item, w);
        }
        assert_eq!(exact.total(), mv.total());
        for pct in [1.0, 5.0, 10.0] {
            let t = Threshold::percent(pct);
            let truth: std::collections::HashSet<_> =
                exact.report(t).into_iter().map(|r| r.prefix).collect();
            let found: std::collections::HashSet<_> =
                mv.report(t).into_iter().map(|r| r.prefix).collect();
            let missed = truth.difference(&found).count();
            // Ancestor estimates are lazy sums of monitored candidates,
            // so recall is near-perfect rather than guaranteed.
            assert!(
                missed * 10 <= truth.len(),
                "at {pct}%: missed {missed} of {} true HHHs",
                truth.len()
            );
        }
    }

    #[test]
    fn precision_reasonable() {
        let h = Ipv4Hierarchy::bytes();
        let mut exact = ExactHhh::new(h);
        let mut mv = MvPipeHhh::new(h, 4096);
        for (item, w) in stream(30_000, 9) {
            exact.observe(item, w);
            mv.observe(item, w);
        }
        let t = Threshold::percent(5.0);
        let truth: std::collections::HashSet<_> =
            exact.report(t).into_iter().map(|r| r.prefix).collect();
        let found = mv.report(t);
        let false_pos = found.iter().filter(|r| !truth.contains(&r.prefix)).count();
        assert!(false_pos <= found.len() / 2, "{false_pos} false positives of {}", found.len());
    }

    #[test]
    fn majority_flow_wins_its_bucket() {
        // A heavy flow sharing a bucket with scattered light flows must
        // end up as the bucket's candidate with a healthy vote margin.
        let h = Ipv4Hierarchy::bytes();
        let mut mv = MvPipeHhh::new(h, 1);
        for i in 0..100u32 {
            mv.observe(0x0A01_0101, 3); // heavy: weight 300
            mv.observe(0x1400_0000 | i, 1); // tail: weight 100, all distinct
        }
        let b = mv.bucket_entries().next().expect("bucket occupied");
        assert_eq!(b.key, 0x0A01_0101);
        assert_eq!(b.count, 400);
        assert!(b.vote >= 200, "vote margin {} too small", b.vote);
    }

    #[test]
    fn per_packet_work_is_one_bucket_at_any_depth() {
        // Structural "flat across depth": one observe touches exactly
        // one bucket, for H=5 (ipv4 bytes) and H=9 (ipv6 hextets)
        // alike.
        let mut v4 = MvPipeHhh::new(Ipv4Hierarchy::bytes(), 64);
        v4.observe(0x0A01_0101, 7);
        assert_eq!(v4.bucket_entries().count(), 1);
        assert_eq!(v4.bucket_entries().next().unwrap().count, 7);

        let mut v6 = MvPipeHhh::new(Ipv6Hierarchy::hextets(), 64);
        v6.observe(0x2001_0db8_0000_0000_0000_0000_0000_0001u128, 7);
        assert_eq!(v6.bucket_entries().count(), 1);
        assert_eq!(v6.bucket_entries().next().unwrap().count, 7);
    }

    #[test]
    fn batch_equals_scalar() {
        let h = Ipv4Hierarchy::bytes();
        let s = stream(5_000, 3);
        let mut scalar = MvPipeHhh::new(h, 256);
        let mut batched = MvPipeHhh::new(h, 256);
        for &(item, w) in &s {
            scalar.observe(item, w);
        }
        for chunk in s.chunks(333) {
            batched.observe_batch(chunk);
        }
        assert_eq!(scalar.total(), batched.total());
        let t = Threshold::percent(5.0);
        assert_eq!(scalar.report(t), batched.report(t));
        assert_eq!(scalar.snapshot(), batched.snapshot());
    }

    #[test]
    fn merge_is_a_pure_function_of_bucket_contents() {
        // A pipe restored from its snapshot must merge to the same
        // result as the live pipe — cross-process folds depend on it.
        let h = Ipv4Hierarchy::bytes();
        let mut a = MvPipeHhh::new(h, 64);
        let mut b = MvPipeHhh::new(h, 64);
        for (i, (item, w)) in stream(4_000, 11).into_iter().enumerate() {
            if i % 2 == 0 {
                a.observe(item, w);
            } else {
                b.observe(item, w);
            }
        }
        let restored =
            MvPipeHhh::from_snapshot(h, &a.snapshot().unwrap()).expect("snapshot restores");
        let mut live = a.clone();
        live.merge(&b);
        let mut folded = restored;
        folded.merge(&b);
        assert_eq!(live.snapshot(), folded.snapshot());
        assert_eq!(live.total(), folded.total());
    }

    #[test]
    fn merge_keeps_counts_and_bounds() {
        let h = Ipv4Hierarchy::bytes();
        let mut whole = ExactHhh::new(h);
        let mut a = MvPipeHhh::new(h, 512);
        let mut b = MvPipeHhh::new(h, 512);
        for (i, (item, w)) in stream(10_000, 17).into_iter().enumerate() {
            whole.observe(item, w);
            if i < 5_000 {
                a.observe(item, w);
            } else {
                b.observe(item, w);
            }
        }
        a.merge(&b);
        assert_eq!(a.total(), whole.total());
        // Bucket counts partition the stream: they must sum to the
        // total, and each candidate's vote stays a lower bound on its
        // true weight.
        assert_eq!(a.bucket_entries().map(|e| e.count).sum::<u64>(), whole.total());
        for e in a.bucket_entries() {
            assert!(e.vote <= e.count);
            // The vote margin survives the merge as a lower bound on
            // the candidate's true weight.
            assert!(e.vote <= whole.count_of(&e.key), "vote bound broken for item {:#x}", e.key);
        }
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_corruption() {
        let h = Ipv4Hierarchy::bytes();
        let mut mv = MvPipeHhh::new(h, 32);
        for (item, w) in stream(2_000, 7) {
            mv.observe(item, w);
        }
        let snap = mv.snapshot().unwrap();
        let back = MvPipeHhh::from_snapshot(h, &snap).expect("roundtrip");
        assert_eq!(back.snapshot().unwrap(), snap);
        assert_eq!(back.total(), mv.total());
        let t = Threshold::percent(5.0);
        assert_eq!(back.report(t), mv.report(t));

        // A tampered envelope total no longer matches the bucket sums.
        let mut bad = snap.clone();
        bad.total += 1;
        assert!(matches!(
            MvPipeHhh::from_snapshot(h, &bad),
            Err(crate::snapshot::SnapshotError::Invalid { field: "total", .. })
        ));
    }

    #[test]
    fn reset_and_state() {
        let h = Ipv4Hierarchy::bytes();
        let mut mv = MvPipeHhh::new(h, 16);
        mv.observe(1, 10);
        assert!(mv.state_bytes() > 0);
        assert_eq!(mv.name(), "mvpipe");
        assert_eq!(mv.buckets(), 16);
        mv.reset();
        assert_eq!(mv.total(), 0);
        assert!(mv.report(Threshold::percent(1.0)).is_empty());
    }
}
