//! RHHH — Randomized HHH with constant-time updates (Ben Basat,
//! Einziger, Friedman, Luizelli, Waisbard, SIGCOMM 2017).
//!
//! The full-ancestry detector pays O(levels) per packet; at 100 Gb/s
//! line rate that is the difference between feasible and not. RHHH's
//! observation: *sample* the level instead. Each packet updates exactly
//! one uniformly-chosen level's Space-Saving summary, so a level sees a
//! `1/V` Bernoulli sample of the stream (V = number of levels) and
//! per-level estimates are unbiased after multiplying by `V`.
//!
//! The price is sampling error: estimates carry an additional
//! `O(√(V·N))` additive uncertainty, reflected in this implementation's
//! `lower_bound` via a two-sigma binomial bound — heavy prefixes well
//! above threshold are still found with high probability, borderline
//! ones may flicker. That trade-off (and its win on update speed) is
//! exactly what the detector-comparison experiment (E3) measures.

use crate::detector::{HhhDetector, MergeableDetector};
use crate::exact::discount_bottom_up;
use crate::report::{HhhReport, Threshold};
use hhh_hierarchy::Hierarchy;
use hhh_sketches::SpaceSaving;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// The randomized constant-time HHH detector.
#[derive(Clone, Debug)]
pub struct Rhhh<H: Hierarchy> {
    hierarchy: H,
    levels: Vec<SpaceSaving<H::Prefix>>,
    rng: SmallRng,
    total: u64,
    updates_per_level: Vec<u64>,
    /// Reusable per-batch grouping buffers (one per level), emptied
    /// after every batch but keeping their capacity — the steady-state
    /// batched path allocates nothing.
    grouped: Vec<Vec<(H::Prefix, u64)>>,
}

impl<H: Hierarchy> Rhhh<H> {
    /// A detector with `counters_per_level` Space-Saving counters per
    /// level and a deterministic sampling seed.
    pub fn new(hierarchy: H, counters_per_level: usize, seed: u64) -> Self {
        let v = hierarchy.levels();
        Rhhh {
            hierarchy,
            levels: (0..v).map(|_| SpaceSaving::new(counters_per_level)).collect(),
            rng: SmallRng::seed_from_u64(seed),
            total: 0,
            updates_per_level: vec![0; v],
            grouped: vec![Vec::new(); v],
        }
    }

    /// Number of levels V (the scaling factor).
    pub fn v(&self) -> u64 {
        self.levels.len() as u64
    }

    /// Space-Saving counters per level (the construction parameter).
    pub fn capacity(&self) -> usize {
        self.levels[0].capacity()
    }

    /// How many updates each level has absorbed (diagnostics: should be
    /// ≈ packets/V each).
    pub fn updates_per_level(&self) -> &[u64] {
        &self.updates_per_level
    }

    fn level_maps(&self) -> Vec<HashMap<H::Prefix, u64>> {
        let v = self.v();
        let n = self.levels.len();
        let mut maps: Vec<HashMap<H::Prefix, u64>> = self
            .levels
            .iter()
            .map(|ss| ss.entries().map(|e| (e.key, e.count * v)).collect())
            .collect();
        // Close upward so charges never land on a missing parent (same
        // algebraic safety as SpaceSavingHhh).
        for level in 0..n - 1 {
            let mut child_sums: HashMap<H::Prefix, u64> = HashMap::new();
            for (&p, &c) in &maps[level] {
                let parent = self.hierarchy.parent(p).expect("non-root");
                *child_sums.entry(parent).or_default() += c;
            }
            for (parent, sum) in child_sums {
                let e = maps[level + 1].entry(parent).or_insert(0);
                *e = (*e).max(sum);
            }
        }
        maps
    }

    /// Two-sigma additive sampling uncertainty on a scaled estimate.
    fn sampling_error(&self) -> u64 {
        // Var of V·Binomial(N, 1/V) ≈ V·N for the per-level sample
        // mass; 2σ ≈ 2√(V·N).
        (2.0 * ((self.v() * self.total.max(1)) as f64).sqrt()) as u64
    }
}

impl<H: Hierarchy> HhhDetector<H> for Rhhh<H> {
    /// The single-packet path is the batched path on a one-element
    /// batch — one code path, and the RNG draws exactly one level
    /// either way, so the state sequence is identical.
    #[inline]
    fn observe(&mut self, item: H::Item, weight: u64) {
        self.observe_batch(&[(item, weight)]);
    }

    /// Batched sampling: draw every packet's level first, then apply
    /// updates level-major so each summary is swept once per batch.
    /// The level draws use the same RNG sequence as the per-packet
    /// path, and per-level update order is preserved, so the resulting
    /// state is identical to observing packet-by-packet. The grouping
    /// buffers persist across batches (cleared, capacity kept): the
    /// steady-state path is allocation-free.
    fn observe_batch(&mut self, batch: &[(H::Item, u64)]) {
        let v = self.levels.len();
        for &(item, weight) in batch {
            self.total += weight;
            let level = self.rng.gen_range(0..v);
            self.grouped[level].push((self.hierarchy.generalize(item, level), weight));
            self.updates_per_level[level] += 1;
        }
        let Rhhh { levels, grouped, .. } = self;
        for (summary, updates) in levels.iter_mut().zip(grouped.iter_mut()) {
            for &(p, weight) in updates.iter() {
                summary.update(p, weight);
            }
            updates.clear();
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn report(&self, threshold: Threshold) -> Vec<HhhReport<H::Prefix>> {
        let t = threshold.absolute(self.total);
        let mut reports = discount_bottom_up(&self.hierarchy, &self.level_maps(), t);
        let sampling = self.sampling_error();
        let v = self.v();
        for r in &mut reports {
            let ss_err =
                self.levels[r.level].estimate(&r.prefix).map(|e| e.error * v).unwrap_or(r.estimate);
            r.lower_bound = r.discounted.saturating_sub(ss_err + sampling);
        }
        reports
    }

    fn reset(&mut self) {
        for ss in &mut self.levels {
            ss.clear();
        }
        self.total = 0;
        self.updates_per_level.fill(0);
    }

    fn state_bytes(&self) -> usize {
        self.levels.iter().map(|ss| ss.state_bytes()).sum()
    }

    fn name(&self) -> &'static str {
        "rhhh"
    }
}

impl<H: Hierarchy> MergeableDetector for Rhhh<H> {
    /// Per-level [`SpaceSaving::merge`]. Each shard's level summaries
    /// hold independent `1/V` Bernoulli samples of disjoint
    /// sub-streams, so their union is a `1/V` sample of the combined
    /// stream and the scaled estimates stay unbiased; sampling
    /// variance adds across shards exactly as it would for one
    /// detector seeing the whole stream.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.levels.len(), other.levels.len(), "hierarchy depth mismatch");
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b);
        }
        self.total += other.total;
        for (a, b) in self.updates_per_level.iter_mut().zip(&other.updates_per_level) {
            *a += *b;
        }
    }

    /// Wire format: the `ss-hhh` body (capacity + per-level summary
    /// objects) plus `"updates":[u₀, …]`, the per-level update counts
    /// a merged detector carries for its sampling diagnostics. The
    /// sampling RNG state is deliberately *not* serialized: a restored
    /// detector merges and reports exactly, and redraws fresh levels
    /// if it is ever fed further observations.
    fn snapshot(&self) -> Option<crate::snapshot::DetectorSnapshot> {
        let updates: Vec<String> = self.updates_per_level.iter().map(u64::to_string).collect();
        Some(crate::snapshot::DetectorSnapshot {
            kind: "rhhh".into(),
            total: self.total,
            state_json: format!(
                "{{\"capacity\":{},\"levels\":{},\"updates\":[{}]}}",
                self.capacity(),
                crate::ss_hhh::levels_json(&self.levels),
                updates.join(",")
            ),
        })
    }

    /// Native v2 encode ([`FrameEncode`]) — byte-identical to
    /// transcoding [`snapshot`](MergeableDetector::snapshot), without
    /// rendering or parsing JSON.
    fn to_frame(
        &self,
        start: hhh_nettypes::Nanos,
        at: hhh_nettypes::Nanos,
    ) -> Option<crate::snapshot::SnapshotFrame> {
        crate::snapshot::FrameEncode::encode_frame(self, start, at).ok()
    }
}

impl<H: Hierarchy> crate::snapshot::FrameEncode for Rhhh<H> {
    fn frame_kind(&self) -> &'static str {
        "rhhh"
    }

    fn frame_total(&self) -> u64 {
        self.total
    }

    fn frame_digest(&self) -> u64 {
        crate::snapshot::binary::ss_config_digest("rhhh", self.capacity() as u64)
    }

    /// The v2 `rhhh` body: the `ss-hhh` layout (capacity + shared
    /// per-level encoding) followed by the per-level update counts.
    fn write_frame_body(&self, out: &mut Vec<u8>) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::binary::put_uv;
        put_uv(out, self.capacity() as u64);
        crate::ss_hhh::encode_levels_body(out, &self.levels);
        put_uv(out, self.updates_per_level.len() as u64);
        for &u in &self.updates_per_level {
            put_uv(out, u);
        }
        Ok(())
    }
}

impl<H: Hierarchy> Rhhh<H>
where
    H::Prefix: std::str::FromStr,
{
    /// Rebuild a detector from a serialized
    /// [`snapshot`](MergeableDetector::snapshot) — the decode half of
    /// the round-trip codec. Level summaries, totals and update counts
    /// restore exactly; the sampling RNG restarts from a fixed seed
    /// (see [`snapshot`](MergeableDetector::snapshot)), which only
    /// matters if the restored detector observes *new* packets.
    pub fn from_snapshot(
        hierarchy: H,
        snap: &crate::snapshot::DetectorSnapshot,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{req_arr, req_u64, SnapshotError};
        if snap.kind != "rhhh" {
            return Err(SnapshotError::Mismatch(format!(
                "expected kind `rhhh`, got `{}`",
                snap.kind
            )));
        }
        let state = snap.state()?;
        let capacity = crate::ss_hhh::wire_capacity(req_u64(&state, "capacity")?)?;
        let levels = crate::ss_hhh::levels_from_json(&state, capacity, hierarchy.levels())?;
        let updates_json = req_arr(&state, "updates")?;
        let updates_per_level = updates_json
            .iter()
            .map(|u| {
                u.as_u64().ok_or(SnapshotError::Invalid {
                    field: "updates",
                    what: "not an unsigned integer",
                })
            })
            .collect::<Result<Vec<u64>, _>>()?;
        Self::from_restored_parts(hierarchy, levels, updates_per_level, snap.total)
    }

    /// The validated decode core both wire formats share.
    pub(crate) fn from_wire_levels(
        hierarchy: H,
        capacity: u64,
        rows: crate::ss_hhh::WireLevelRows<H::Prefix>,
        updates_per_level: Vec<u64>,
        envelope_total: u64,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let capacity = crate::ss_hhh::wire_capacity(capacity)?;
        let levels = crate::ss_hhh::levels_from_rows(rows, capacity, hierarchy.levels())?;
        Self::from_restored_parts(hierarchy, levels, updates_per_level, envelope_total)
    }

    fn from_restored_parts(
        hierarchy: H,
        levels: Vec<hhh_sketches::SpaceSaving<H::Prefix>>,
        updates_per_level: Vec<u64>,
        total: u64,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        if updates_per_level.len() != levels.len() {
            return Err(crate::snapshot::SnapshotError::Invalid {
                field: "updates",
                what: "one entry per level required",
            });
        }
        let v = levels.len();
        Ok(Rhhh {
            hierarchy,
            levels,
            rng: SmallRng::seed_from_u64(RESTORED_SEED),
            total,
            updates_per_level,
            grouped: vec![Vec::new(); v],
        })
    }
}

/// Sampling seed of detectors rebuilt from snapshots (restored
/// detectors merge and report; fresh observations redraw from here).
const RESTORED_SEED: u64 = 0x4E57_04ED;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactHhh;
    use hhh_hierarchy::Ipv4Hierarchy;

    /// A stream with unambiguous heavies: 4 hosts with 10% of packets
    /// each, the rest spread thin across many /16s.
    fn stream(n: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let x = match i % 10 {
                0 => 0x0A010101,
                1 => 0x0A010102,
                2 => 0x14020202,
                3 => 0x1E030303,
                _ => {
                    let j = (i as u32).wrapping_mul(2_654_435_761);
                    0x28000000 | (j & 0x00FF_FFFF)
                }
            };
            out.push(x);
        }
        out
    }

    #[test]
    fn updates_spread_across_levels() {
        let h = Ipv4Hierarchy::bytes();
        let mut r = Rhhh::new(h, 64, 1);
        for item in stream(50_000) {
            r.observe(item, 1);
        }
        let per = r.updates_per_level();
        let expect = 50_000.0 / 5.0;
        for (l, &u) in per.iter().enumerate() {
            let rel = (u as f64 - expect).abs() / expect;
            assert!(rel < 0.1, "level {l} got {u} updates, expected ~{expect}");
        }
    }

    #[test]
    fn clear_heavies_are_found() {
        let h = Ipv4Hierarchy::bytes();
        let mut exact = ExactHhh::new(h);
        let mut r = Rhhh::new(h, 128, 7);
        for item in stream(200_000) {
            exact.observe(item, 1);
            r.observe(item, 1);
        }
        let t = Threshold::percent(5.0);
        let found: std::collections::HashSet<_> =
            r.report(t).into_iter().map(|x| x.prefix).collect();
        // Every exact HHH whose discounted count clears the threshold
        // with a 2× margin must be present despite sampling noise.
        let t_abs = t.absolute(exact.total());
        for truth in exact.report(t) {
            if truth.discounted >= 2 * t_abs {
                assert!(
                    found.contains(&truth.prefix),
                    "RHHH missed comfortable HHH {}",
                    truth.prefix
                );
            }
        }
    }

    #[test]
    fn estimates_are_unbiased_ballpark() {
        let h = Ipv4Hierarchy::bytes();
        let mut r = Rhhh::new(h, 128, 3);
        let n = 100_000;
        for item in stream(n) {
            r.observe(item, 1);
        }
        // Host 0x0A010101 has ~10% of the stream.
        let rep = r.report(Threshold::percent(5.0));
        let host = rep.iter().find(|x| x.prefix.to_string() == "10.1.1.1/32");
        if let Some(hst) = host {
            let truth = n as f64 / 10.0;
            let rel = (hst.estimate as f64 - truth).abs() / truth;
            assert!(rel < 0.35, "estimate {} vs truth {truth}", hst.estimate);
        } else {
            panic!("10% host not reported at 5% threshold");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let h = Ipv4Hierarchy::bytes();
        let run = |seed| {
            let mut r = Rhhh::new(h, 64, seed);
            for item in stream(20_000) {
                r.observe(item, 1);
            }
            let mut v: Vec<String> =
                r.report(Threshold::percent(5.0)).iter().map(|x| x.prefix.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn reset_clears() {
        let h = Ipv4Hierarchy::bytes();
        let mut r = Rhhh::new(h, 16, 1);
        r.observe(42, 9);
        r.reset();
        assert_eq!(r.total(), 0);
        assert!(r.updates_per_level().iter().all(|&u| u == 0));
        assert_eq!(r.name(), "rhhh");
    }
}
