//! Space-Saving-based streaming HHH ("full ancestry"): one
//! [`SpaceSaving`] summary per hierarchy level, every packet updates
//! every level.
//!
//! This is the classic deterministic streaming HHH construction
//! (Mitzenmacher, Steinke, Thaler 2012 variant of Cormode et al.): per
//! level, any prefix with true traffic above `N/capacity` is guaranteed
//! monitored, so with `capacity ≥ levels/θ` no true HHH can be missed.
//! Its weakness — and RHHH's motivation — is the O(levels) work per
//! packet.

use crate::detector::{HhhDetector, MergeableDetector};
use crate::exact::discount_bottom_up;
use crate::report::{HhhReport, Threshold};
use hhh_hierarchy::Hierarchy;
use hhh_sketches::SpaceSaving;
use std::collections::HashMap;

/// Per-level Space-Saving HHH detector.
#[derive(Clone, Debug)]
pub struct SpaceSavingHhh<H: Hierarchy> {
    hierarchy: H,
    /// One summary per level; `levels[0]` monitors exact items.
    levels: Vec<SpaceSaving<H::Prefix>>,
    total: u64,
    /// Reusable per-batch staging buffer for generalized prefixes —
    /// grown once, never reallocated on the steady-state hot path.
    scratch: Vec<(H::Prefix, u64)>,
}

impl<H: Hierarchy> SpaceSavingHhh<H> {
    /// A detector with `counters_per_level` Space-Saving counters at
    /// each level. For a threshold θ, `counters_per_level ≥ 2/θ` keeps
    /// both error sides comfortable.
    pub fn new(hierarchy: H, counters_per_level: usize) -> Self {
        let levels =
            (0..hierarchy.levels()).map(|_| SpaceSaving::new(counters_per_level)).collect();
        SpaceSavingHhh { hierarchy, levels, total: 0, scratch: Vec::new() }
    }

    /// The per-level summaries (read-only, for diagnostics).
    pub fn level_summaries(&self) -> &[SpaceSaving<H::Prefix>] {
        &self.levels
    }

    /// Space-Saving counters per level (the construction parameter).
    pub fn capacity(&self) -> usize {
        self.levels[0].capacity()
    }

    /// Build per-level estimate maps from the monitored entries, closed
    /// upward: an ancestor of a monitored prefix is guaranteed an entry
    /// with an estimate at least the sum of its monitored children (so
    /// the discount algebra never drops a charge on a missing parent).
    fn level_maps(&self) -> Vec<HashMap<H::Prefix, u64>> {
        let n = self.levels.len();
        let mut maps: Vec<HashMap<H::Prefix, u64>> = Vec::with_capacity(n);
        for ss in &self.levels {
            maps.push(ss.entries().map(|e| (e.key, e.count)).collect());
        }
        for level in 0..n - 1 {
            let mut child_sums: HashMap<H::Prefix, u64> = HashMap::new();
            for (&p, &c) in &maps[level] {
                let parent = self.hierarchy.parent(p).expect("non-root");
                *child_sums.entry(parent).or_default() += c;
            }
            for (parent, sum) in child_sums {
                let e = maps[level + 1].entry(parent).or_insert(0);
                *e = (*e).max(sum);
            }
        }
        maps
    }
}

impl<H: Hierarchy> HhhDetector<H> for SpaceSavingHhh<H> {
    /// The single-packet path is the batched path on a one-element
    /// batch — one level-major code path to maintain, identical state
    /// either way (per level, updates arrive in the same order).
    #[inline]
    fn observe(&mut self, item: H::Item, weight: u64) {
        self.observe_batch(&[(item, weight)]);
    }

    /// Level-major batching: the per-packet loop touches all `levels`
    /// summaries per packet (cache-hostile once summaries outgrow L1);
    /// per batch we instead sweep one level's summary over the whole
    /// batch before moving to the next. Each level first stages its
    /// generalized prefixes in the reusable scratch buffer — that loop
    /// is a pure mask-and-copy with a loop-invariant mask (see
    /// `Ipv4Hierarchy::generalize`), so it vectorizes — and then sweeps
    /// the summary over the staged prefixes.
    fn observe_batch(&mut self, batch: &[(H::Item, u64)]) {
        for &(_, weight) in batch {
            self.total += weight;
        }
        let SpaceSavingHhh { hierarchy, levels, scratch, .. } = self;
        for (level, summary) in levels.iter_mut().enumerate() {
            scratch.clear();
            scratch.extend(batch.iter().map(|&(item, w)| (hierarchy.generalize(item, level), w)));
            for &(p, w) in scratch.iter() {
                summary.update(p, w);
            }
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn report(&self, threshold: Threshold) -> Vec<HhhReport<H::Prefix>> {
        let t = threshold.absolute(self.total);
        let mut reports = discount_bottom_up(&self.hierarchy, &self.level_maps(), t);
        // Lower bounds: subtract the per-level Space-Saving error.
        for r in &mut reports {
            if let Some(e) = self.levels[r.level].estimate(&r.prefix) {
                r.lower_bound = r.discounted.saturating_sub(e.error);
            } else {
                r.lower_bound = 0;
            }
        }
        reports
    }

    fn reset(&mut self) {
        for ss in &mut self.levels {
            ss.clear();
        }
        self.total = 0;
    }

    fn state_bytes(&self) -> usize {
        self.levels.iter().map(|ss| ss.state_bytes()).sum()
    }

    fn name(&self) -> &'static str {
        "ss-hhh"
    }
}

impl<H: Hierarchy> MergeableDetector for SpaceSavingHhh<H> {
    /// Per-level [`SpaceSaving::merge`]: each level's summary merges
    /// under the mergeable-summaries recipe, so per-level estimates
    /// stay upper bounds with additively-combined error — recall of
    /// true HHHs of the combined stream is preserved.
    fn merge(&mut self, other: &Self) {
        assert_eq!(self.levels.len(), other.levels.len(), "hierarchy depth mismatch");
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.merge(b);
        }
        self.total += other.total;
    }

    /// Wire format:
    /// `{"capacity":C,"levels":[{"total":N,"entries":[[prefix, count,
    /// error], …]}, …]}`, one object per hierarchy level (level 0
    /// first), rows sorted by the prefix's display form. The body is
    /// self-contained — capacity and per-level totals ride along — so
    /// an aggregator can rebuild the summaries
    /// ([`from_snapshot`](Self::from_snapshot)) and fold them with the
    /// mergeable-summaries union-then-prune per level, the same recipe
    /// as [`merge`](Self::merge).
    fn snapshot(&self) -> Option<crate::snapshot::DetectorSnapshot> {
        Some(crate::snapshot::DetectorSnapshot {
            kind: "ss-hhh".into(),
            total: self.total,
            state_json: format!(
                "{{\"capacity\":{},\"levels\":{}}}",
                self.capacity(),
                levels_json(&self.levels)
            ),
        })
    }

    /// Native v2 encode ([`FrameEncode`]) — byte-identical to
    /// transcoding [`snapshot`](MergeableDetector::snapshot), without
    /// rendering or parsing JSON.
    fn to_frame(
        &self,
        start: hhh_nettypes::Nanos,
        at: hhh_nettypes::Nanos,
    ) -> Option<crate::snapshot::SnapshotFrame> {
        crate::snapshot::FrameEncode::encode_frame(self, start, at).ok()
    }
}

impl<H: Hierarchy> crate::snapshot::FrameEncode for SpaceSavingHhh<H> {
    fn frame_kind(&self) -> &'static str {
        "ss-hhh"
    }

    fn frame_total(&self) -> u64 {
        self.total
    }

    fn frame_digest(&self) -> u64 {
        crate::snapshot::binary::ss_config_digest("ss-hhh", self.capacity() as u64)
    }

    /// The v2 `ss-hhh` body straight from the level summaries:
    /// capacity, then the shared per-level encoding.
    fn write_frame_body(&self, out: &mut Vec<u8>) -> Result<(), crate::snapshot::SnapshotError> {
        crate::snapshot::binary::put_uv(out, self.capacity() as u64);
        encode_levels_body(out, &self.levels);
        Ok(())
    }
}

/// Append the v2 per-level summary encoding (level count, then each
/// level's total and `(prefix, count, error)` entries) straight from
/// live [`SpaceSaving`] summaries — the native counterpart of
/// [`levels_json`], shared with the RHHH encoder. Rows ride in
/// [`SpaceSaving::export_entries`] order (sorted by the prefix's
/// display form), exactly like the JSON body, so the two encode paths
/// produce identical bytes.
pub(crate) fn encode_levels_body<P: std::fmt::Display + Copy + Eq + std::hash::Hash>(
    out: &mut Vec<u8>,
    levels: &[SpaceSaving<P>],
) {
    use crate::snapshot::binary::{put_str, put_uv};
    put_uv(out, levels.len() as u64);
    for ss in levels {
        put_uv(out, ss.total());
        let rows = ss.export_entries(|p| p.to_string());
        put_uv(out, rows.len() as u64);
        for (key, e) in &rows {
            put_str(out, key);
            put_uv(out, e.count);
            put_uv(out, e.error);
        }
    }
}

/// Render per-level Space-Saving summaries as the snapshot `levels`
/// array (shared by the RHHH snapshot, which carries the same
/// per-level structure).
pub(crate) fn levels_json<P: std::fmt::Display + Copy + Eq + std::hash::Hash>(
    levels: &[SpaceSaving<P>],
) -> String {
    let mut out = String::from("[");
    for (i, ss) in levels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rows: Vec<(String, Vec<u64>)> = ss
            .export_entries(|p| p.to_string())
            .into_iter()
            .map(|(s, e)| (s, vec![e.count, e.error]))
            .collect();
        out.push_str(&format!(
            "{{\"total\":{},\"entries\":{}}}",
            ss.total(),
            crate::snapshot::json_keyed_rows(&rows)
        ));
    }
    out.push(']');
    out
}

/// Decode the snapshot `levels` array back into per-level summaries
/// (shared with the RHHH decoder).
pub(crate) fn levels_from_json<P>(
    state: &crate::snapshot::json::Json,
    capacity: usize,
    expected_levels: usize,
) -> Result<Vec<SpaceSaving<P>>, crate::snapshot::SnapshotError>
where
    P: std::str::FromStr + Copy + Eq + std::hash::Hash,
{
    use crate::snapshot::{parse_keyed_rows, req, req_arr, req_u64};
    let levels_json = req_arr(state, "levels")?;
    let mut rows = Vec::with_capacity(levels_json.len());
    for lv in levels_json {
        let total = req_u64(lv, "total")?;
        let entries: Vec<(P, Vec<u64>)> = parse_keyed_rows(req(lv, "entries")?, "entries", 2)?;
        rows.push((total, entries.into_iter().map(|(k, v)| (k, v[0], v[1])).collect()));
    }
    levels_from_rows(rows, capacity, expected_levels)
}

/// Wire-decoded per-level summary rows: one `(level total, [(prefix,
/// count, error)])` entry per hierarchy level.
pub(crate) type WireLevelRows<P> = Vec<(u64, Vec<(P, u64, u64)>)>;

/// The validated decode core both wire formats share: rebuild
/// per-level summaries from already-parsed `(total, [(prefix, count,
/// error)])` rows, rejecting level-count mismatches, over-capacity
/// levels, `error > count`, and duplicate prefixes.
pub(crate) fn levels_from_rows<P>(
    rows: WireLevelRows<P>,
    capacity: usize,
    expected_levels: usize,
) -> Result<Vec<SpaceSaving<P>>, crate::snapshot::SnapshotError>
where
    P: Copy + Eq + std::hash::Hash,
{
    use crate::snapshot::SnapshotError;
    use hhh_sketches::SsEntry;
    if rows.len() != expected_levels {
        return Err(SnapshotError::Mismatch(format!(
            "snapshot has {} levels, hierarchy has {expected_levels}",
            rows.len()
        )));
    }
    let mut levels = Vec::with_capacity(rows.len());
    for (total, row) in rows {
        if row.len() > capacity {
            return Err(SnapshotError::Invalid {
                field: "entries",
                what: "more entries than capacity",
            });
        }
        let mut entries = Vec::with_capacity(row.len());
        let mut seen = std::collections::HashSet::with_capacity(row.len());
        for (key, count, error) in row {
            if error > count {
                return Err(SnapshotError::Invalid {
                    field: "entries",
                    what: "error exceeds count",
                });
            }
            if !seen.insert(key) {
                return Err(SnapshotError::Invalid { field: "entries", what: "duplicate prefix" });
            }
            entries.push(SsEntry { key, count, error });
        }
        levels.push(SpaceSaving::from_parts(capacity, total, entries));
    }
    Ok(levels)
}

/// Validate a wire-supplied Space-Saving capacity (shared by the
/// `ss-hhh` and `rhhh` decoders of both formats).
pub(crate) fn wire_capacity(capacity: u64) -> Result<usize, crate::snapshot::SnapshotError> {
    if capacity == 0 || capacity > crate::snapshot::MAX_WIRE_CAPACITY as u64 {
        return Err(crate::snapshot::SnapshotError::Invalid {
            field: "capacity",
            what: "must be non-zero and within MAX_WIRE_CAPACITY",
        });
    }
    Ok(capacity as usize)
}

impl<H: Hierarchy> SpaceSavingHhh<H>
where
    H::Prefix: std::str::FromStr,
{
    /// Rebuild a detector from a serialized
    /// [`snapshot`](MergeableDetector::snapshot) — the decode half of
    /// the round-trip codec. The restored detector reports and merges
    /// identically to the one that emitted the snapshot (the summaries
    /// are set-equal; merging is heap-order independent).
    pub fn from_snapshot(
        hierarchy: H,
        snap: &crate::snapshot::DetectorSnapshot,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{req_u64, SnapshotError};
        if snap.kind != "ss-hhh" {
            return Err(SnapshotError::Mismatch(format!(
                "expected kind `ss-hhh`, got `{}`",
                snap.kind
            )));
        }
        let state = snap.state()?;
        let capacity = wire_capacity(req_u64(&state, "capacity")?)?;
        let levels = levels_from_json(&state, capacity, hierarchy.levels())?;
        Ok(SpaceSavingHhh { hierarchy, levels, total: snap.total, scratch: Vec::new() })
    }

    /// The validated decode core both wire formats share.
    pub(crate) fn from_wire_levels(
        hierarchy: H,
        capacity: u64,
        rows: WireLevelRows<H::Prefix>,
        envelope_total: u64,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        let capacity = wire_capacity(capacity)?;
        let levels = levels_from_rows(rows, capacity, hierarchy.levels())?;
        Ok(SpaceSavingHhh { hierarchy, levels, total: envelope_total, scratch: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactHhh;
    use hhh_hierarchy::Ipv4Hierarchy;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Zipf-ish deterministic stream for comparisons.
    fn stream(n: usize, seed: u64) -> Vec<(u32, u64)> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let rank = (rng.gen::<f64>().powi(3) * 200.0) as u32; // skewed
                let net = rank % 12;
                let item = (10 << 24) | (net << 16) | rank;
                (item, 40 + (rank as u64 * 7) % 1400)
            })
            .collect()
    }

    #[test]
    fn recall_is_perfect_with_enough_counters() {
        let h = Ipv4Hierarchy::bytes();
        let mut exact = ExactHhh::new(h);
        let mut ss = SpaceSavingHhh::new(h, 256);
        for (item, w) in stream(20_000, 5) {
            exact.observe(item, w);
            ss.observe(item, w);
        }
        assert_eq!(exact.total(), ss.total());
        for pct in [1.0, 5.0, 10.0] {
            let t = Threshold::percent(pct);
            let truth: std::collections::HashSet<_> =
                exact.report(t).into_iter().map(|r| r.prefix).collect();
            let found: std::collections::HashSet<_> =
                ss.report(t).into_iter().map(|r| r.prefix).collect();
            let missed: Vec<_> = truth.difference(&found).collect();
            assert!(missed.is_empty(), "at {pct}%: missed true HHHs {missed:?}");
        }
    }

    #[test]
    fn precision_reasonable() {
        let h = Ipv4Hierarchy::bytes();
        let mut exact = ExactHhh::new(h);
        let mut ss = SpaceSavingHhh::new(h, 512);
        for (item, w) in stream(30_000, 9) {
            exact.observe(item, w);
            ss.observe(item, w);
        }
        let t = Threshold::percent(5.0);
        let truth: std::collections::HashSet<_> =
            exact.report(t).into_iter().map(|r| r.prefix).collect();
        let found = ss.report(t);
        let false_pos = found.iter().filter(|r| !truth.contains(&r.prefix)).count();
        assert!(false_pos <= found.len() / 2, "{false_pos} false positives of {}", found.len());
        // Guaranteed (lower-bound) reports are all true.
        let t_abs = t.absolute(ss.total());
        for r in &found {
            if r.lower_bound >= t_abs {
                assert!(
                    truth.contains(&r.prefix),
                    "guaranteed report {} is not a true HHH",
                    r.prefix
                );
            }
        }
    }

    #[test]
    fn estimates_upper_bound_truth() {
        let h = Ipv4Hierarchy::bytes();
        let mut exact = ExactHhh::new(h);
        let mut ss = SpaceSavingHhh::new(h, 64);
        for (item, w) in stream(5_000, 2) {
            exact.observe(item, w);
            ss.observe(item, w);
        }
        for r in ss.report(Threshold::percent(5.0)) {
            let true_count = exact.prefix_count(r.prefix);
            assert!(
                r.estimate >= true_count,
                "estimate {} below truth {true_count} for {}",
                r.estimate,
                r.prefix
            );
        }
    }

    #[test]
    fn reset_and_state() {
        let h = Ipv4Hierarchy::bytes();
        let mut ss = SpaceSavingHhh::new(h, 16);
        ss.observe(1, 10);
        assert!(ss.state_bytes() > 0);
        assert_eq!(ss.name(), "ss-hhh");
        ss.reset();
        assert_eq!(ss.total(), 0);
        assert!(ss.report(Threshold::percent(1.0)).is_empty());
    }

    #[test]
    fn per_packet_work_is_levels() {
        // Structural: all 5 level summaries see each update.
        let h = Ipv4Hierarchy::bytes();
        let mut ss = SpaceSavingHhh::new(h, 8);
        ss.observe(0x0A010101, 7);
        for l in ss.level_summaries() {
            assert_eq!(l.total(), 7);
        }
    }
}
