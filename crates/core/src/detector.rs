//! Detector traits: the contract between algorithms and the window
//! engine.

use crate::report::{HhhReport, Threshold};
use crate::snapshot::{DetectorSnapshot, SnapshotFrame};
use hhh_hierarchy::Hierarchy;
use hhh_nettypes::Nanos;

/// A windowed streaming HHH detector.
///
/// The window engine (in `hhh-window`) feeds items via
/// [`observe`](Self::observe), asks for HHHs at window boundaries via
/// [`report`](Self::report), and calls [`reset`](Self::reset) between
/// disjoint windows — exactly the "reset the data structure at the end
/// of each time window" practice whose blind spots the paper
/// quantifies.
pub trait HhhDetector<H: Hierarchy> {
    /// Account `weight` (bytes or packets) to `item`.
    fn observe(&mut self, item: H::Item, weight: u64);

    /// Account a whole batch of `(item, weight)` observations.
    ///
    /// Semantically identical to calling [`observe`](Self::observe) in
    /// order; detectors override it when amortizing per-call work over
    /// the batch pays (level-major iteration, grouped sampling, fewer
    /// RNG draws). The sharded pipeline in `hhh-window` feeds shards
    /// exclusively through this entry point.
    fn observe_batch(&mut self, batch: &[(H::Item, u64)]) {
        for &(item, weight) in batch {
            self.observe(item, weight);
        }
    }

    /// Total weight observed since the last reset.
    fn total(&self) -> u64;

    /// The HHH set at a relative threshold, sorted by (level, prefix).
    fn report(&self, threshold: Threshold) -> Vec<HhhReport<H::Prefix>>;

    /// Forget everything (window boundary).
    fn reset(&mut self);

    /// Approximate memory footprint in bytes, for the resource
    /// comparisons the paper's §3 calls for.
    fn state_bytes(&self) -> usize;

    /// Short algorithm name for tables and logs.
    fn name(&self) -> &'static str;
}

/// A windowless (continuous-time) detector: the kind of algorithm the
/// paper argues the community should build.
///
/// Instead of reset + report at boundaries, observations carry
/// timestamps and a report can be requested *at any instant* — there is
/// no window to align with, so there is nothing for a burst to
/// straddle.
pub trait ContinuousDetector<H: Hierarchy> {
    /// Account `weight` to `item` at trace time `ts` (non-decreasing).
    fn observe(&mut self, ts: Nanos, item: H::Item, weight: u64);

    /// Account a whole batch of timestamped observations (timestamps
    /// non-decreasing within the batch, as on the wire).
    fn observe_batch(&mut self, batch: &[(Nanos, H::Item, u64)]) {
        for &(ts, item, weight) in batch {
            self.observe(ts, item, weight);
        }
    }

    /// Decayed total traffic as of `now`.
    fn decayed_total(&self, now: Nanos) -> f64;

    /// The HHH set at `now`: prefixes whose decayed discounted count
    /// exceeds θ × decayed total.
    fn report_at(&self, now: Nanos, threshold: Threshold) -> Vec<HhhReport<H::Prefix>>;

    /// Approximate memory footprint in bytes.
    fn state_bytes(&self) -> usize;

    /// Short algorithm name for tables and logs.
    fn name(&self) -> &'static str;
}

/// A detector whose state from two disjoint sub-streams can be
/// combined into the state of the union stream.
///
/// This is the property that makes sharded (multi-core, and later
/// distributed) ingestion possible: hash-partition the packet stream by
/// key, run one detector per shard, and [`merge`](Self::merge) at
/// report points. The contract, following the mergeable-summaries
/// framework (Agarwal et al., PODS 2012):
///
/// * **Exact detectors** must be lossless: merging the shard states of
///   any partition of a stream yields *exactly* the state of the
///   unpartitioned stream (same totals, same reports).
/// * **Approximate detectors** must preserve their error guarantees
///   under merge: for the summaries here, estimates remain upper (or
///   lower, for Misra-Gries-style) bounds on the truth of the combined
///   stream, and the per-key error grows at most additively in the
///   merged parts' errors — never faster.
///
/// Both detectors must be configured identically (same capacities,
/// seeds, decay rates); implementations panic on mismatch rather than
/// silently producing garbage.
pub trait MergeableDetector {
    /// Fold `other`'s state into `self`. `other` is unchanged.
    fn merge(&mut self, other: &Self);

    /// Serialize the mergeable state as a [`DetectorSnapshot`] — the
    /// wire format for cross-process aggregation: ship the snapshot of
    /// each process's merged shard state to an aggregator, rebuild
    /// detectors there, and [`merge`](Self::merge) them.
    ///
    /// The default says "not supported" (`None`); detectors opt in.
    /// The sharded pipeline engines in `hhh-window` forward snapshots
    /// to sinks at every report point when one is available.
    fn snapshot(&self) -> Option<DetectorSnapshot> {
        None
    }

    /// Serialize the mergeable state as a wire-format v2
    /// [`SnapshotFrame`] carrying the report-window geometry
    /// `start..=at` — what frame-consuming sinks (binary files,
    /// sockets, in-process channels) ask for at report points.
    ///
    /// The default goes through [`snapshot`](Self::snapshot) and the
    /// JSON → frame transcode (correct for any detector, and the
    /// reference the proptests pin against); detectors implementing
    /// [`FrameEncode`](crate::snapshot::FrameEncode) override it with
    /// the **native** encoder, which writes the identical bytes
    /// without rendering or parsing JSON. Returns `None` when the
    /// detector does not snapshot (or its snapshot has no v2 body
    /// layout — callers fall back to [`snapshot`](Self::snapshot)).
    fn to_frame(&self, start: Nanos, at: Nanos) -> Option<SnapshotFrame> {
        self.snapshot().and_then(|s| s.to_frame(start, at).ok())
    }

    /// Remove a previously [`merge`](Self::merge)d state from `self`
    /// again — the inverse merge that only *lossless* (exact)
    /// detectors can offer. Returns `true` when the retraction was
    /// applied; the default returns `false` and leaves `self`
    /// unchanged, signalling the caller to fall back to re-merging
    /// from scratch.
    ///
    /// Callers must only retract a state that is still contained in
    /// `self` (merged earlier and not retracted since). The sliding
    /// shard pools in `hhh-window` use this to keep a rolling window
    /// state and merge only the epoch entering/leaving per step,
    /// instead of re-merging `window/step` detectors per position.
    fn retract(&mut self, other: &Self) -> bool {
        let _ = other;
        false
    }
}

/// Forwarding impl: a mutable borrow of a windowed detector is itself a
/// windowed detector. This is what lets the `hhh-window` pipeline
/// engines own their detector *or* borrow one from the caller (the
/// legacy `run_*` signatures) through the same generic parameter.
impl<H: Hierarchy, D: HhhDetector<H>> HhhDetector<H> for &mut D {
    fn observe(&mut self, item: H::Item, weight: u64) {
        (**self).observe(item, weight);
    }

    fn observe_batch(&mut self, batch: &[(H::Item, u64)]) {
        (**self).observe_batch(batch);
    }

    fn total(&self) -> u64 {
        (**self).total()
    }

    fn report(&self, threshold: Threshold) -> Vec<HhhReport<H::Prefix>> {
        (**self).report(threshold)
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn state_bytes(&self) -> usize {
        (**self).state_bytes()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Forwarding impl for continuous detectors; see the [`HhhDetector`]
/// forwarding impl above.
impl<H: Hierarchy, C: ContinuousDetector<H>> ContinuousDetector<H> for &mut C {
    fn observe(&mut self, ts: Nanos, item: H::Item, weight: u64) {
        (**self).observe(ts, item, weight);
    }

    fn observe_batch(&mut self, batch: &[(Nanos, H::Item, u64)]) {
        (**self).observe_batch(batch);
    }

    fn decayed_total(&self, now: Nanos) -> f64 {
        (**self).decayed_total(now)
    }

    fn report_at(&self, now: Nanos, threshold: Threshold) -> Vec<HhhReport<H::Prefix>> {
        (**self).report_at(now, threshold)
    }

    fn state_bytes(&self) -> usize {
        (**self).state_bytes()
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }
}
