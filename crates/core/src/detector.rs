//! Detector traits: the contract between algorithms and the window
//! engine.

use crate::report::{HhhReport, Threshold};
use hhh_hierarchy::Hierarchy;
use hhh_nettypes::Nanos;

/// A windowed streaming HHH detector.
///
/// The window engine (in `hhh-window`) feeds items via
/// [`observe`](Self::observe), asks for HHHs at window boundaries via
/// [`report`](Self::report), and calls [`reset`](Self::reset) between
/// disjoint windows — exactly the "reset the data structure at the end
/// of each time window" practice whose blind spots the paper
/// quantifies.
pub trait HhhDetector<H: Hierarchy> {
    /// Account `weight` (bytes or packets) to `item`.
    fn observe(&mut self, item: H::Item, weight: u64);

    /// Total weight observed since the last reset.
    fn total(&self) -> u64;

    /// The HHH set at a relative threshold, sorted by (level, prefix).
    fn report(&self, threshold: Threshold) -> Vec<HhhReport<H::Prefix>>;

    /// Forget everything (window boundary).
    fn reset(&mut self);

    /// Approximate memory footprint in bytes, for the resource
    /// comparisons the paper's §3 calls for.
    fn state_bytes(&self) -> usize;

    /// Short algorithm name for tables and logs.
    fn name(&self) -> &'static str;
}

/// A windowless (continuous-time) detector: the kind of algorithm the
/// paper argues the community should build.
///
/// Instead of reset + report at boundaries, observations carry
/// timestamps and a report can be requested *at any instant* — there is
/// no window to align with, so there is nothing for a burst to
/// straddle.
pub trait ContinuousDetector<H: Hierarchy> {
    /// Account `weight` to `item` at trace time `ts` (non-decreasing).
    fn observe(&mut self, ts: Nanos, item: H::Item, weight: u64);

    /// Decayed total traffic as of `now`.
    fn decayed_total(&self, now: Nanos) -> f64;

    /// The HHH set at `now`: prefixes whose decayed discounted count
    /// exceeds θ × decayed total.
    fn report_at(&self, now: Nanos, threshold: Threshold) -> Vec<HhhReport<H::Prefix>>;

    /// Approximate memory footprint in bytes.
    fn state_bytes(&self) -> usize;

    /// Short algorithm name for tables and logs.
    fn name(&self) -> &'static str;
}
