//! Exact windowed HHH: the ground truth.
//!
//! Keeps every distinct item's count in a hash map (memory ∝ distinct
//! items — affordable offline, which is exactly how the paper ran its
//! own analysis) and computes the HHH set bottom-up at report time.
//!
//! The bottom-up discount in [`discount_bottom_up`] is shared by the
//! approximate detectors, which substitute their per-level *estimates*
//! for the exact per-level counts.

use crate::detector::{HhhDetector, MergeableDetector};
use crate::report::{HhhReport, Threshold};
use crate::snapshot::FrameEncode;
use hhh_hierarchy::Hierarchy;
use std::collections::HashMap;

/// Bottom-up exclude-all-HHH-descendants discounting over per-level
/// count maps (level 0 = most specific). Returns reports sorted by
/// (level, prefix).
///
/// `level_counts[l]` must map every prefix at level `l` that has any
/// traffic to its (estimated) total count. The recursion:
///
/// * level 0: `discounted(p) = count(p)`;
/// * level l+1: `discounted(p) = count(p) − Σ counts of p's maximal
///   HHH descendants`, where an HHH found at a lower level charges its
///   *full* count to every ancestor, and charges of non-HHH prefixes
///   pass upward unchanged.
pub fn discount_bottom_up<H: Hierarchy>(
    h: &H,
    level_counts: &[HashMap<H::Prefix, u64>],
    threshold_abs: u64,
) -> Vec<HhhReport<H::Prefix>> {
    let mut reports = Vec::new();
    // charge[p] = total estimate of maximal HHH descendants of p found
    // so far, for p at the level currently being processed.
    let mut charge: HashMap<H::Prefix, u64> = HashMap::new();
    for (level, counts) in level_counts.iter().enumerate() {
        let mut next_charge: HashMap<H::Prefix, u64> = HashMap::new();
        let is_root_level = level + 1 == level_counts.len();
        for (&p, &count) in counts {
            let charged = charge.get(&p).copied().unwrap_or(0);
            // Estimated counts from sketches are not guaranteed to be
            // superadditive; saturate rather than wrap.
            let discounted = count.saturating_sub(charged);
            if discounted >= threshold_abs {
                reports.push(HhhReport {
                    prefix: p,
                    level,
                    estimate: count,
                    discounted,
                    lower_bound: discounted,
                });
                if !is_root_level {
                    let parent = h.parent(p).expect("non-root level has parents");
                    *next_charge.entry(parent).or_default() += count;
                }
            } else if charged > 0 && !is_root_level {
                let parent = h.parent(p).expect("non-root level has parents");
                *next_charge.entry(parent).or_default() += charged;
            }
        }
        charge = next_charge;
    }
    reports.sort_by(|a, b| a.level.cmp(&b.level).then(a.prefix.cmp(&b.prefix)));
    reports
}

/// Exact windowed HHH detector (and plain heavy-hitter oracle).
#[derive(Clone, Debug)]
pub struct ExactHhh<H: Hierarchy> {
    hierarchy: H,
    counts: HashMap<H::Item, u64>,
    total: u64,
}

impl<H: Hierarchy> ExactHhh<H> {
    /// An empty detector over a hierarchy.
    pub fn new(hierarchy: H) -> Self {
        ExactHhh { hierarchy, counts: HashMap::new(), total: 0 }
    }

    /// Build directly from an item-count map (the window engine keeps
    /// rolling per-epoch counts and materializes detectors from them).
    pub fn from_counts(hierarchy: H, counts: HashMap<H::Item, u64>) -> Self {
        let total = counts.values().sum();
        ExactHhh { hierarchy, counts, total }
    }

    /// The hierarchy in use.
    pub fn hierarchy(&self) -> &H {
        &self.hierarchy
    }

    /// Number of distinct items seen.
    pub fn distinct_items(&self) -> usize {
        self.counts.len()
    }

    /// Exact count of one item.
    pub fn count_of(&self, item: &H::Item) -> u64 {
        self.counts.get(item).copied().unwrap_or(0)
    }

    /// Plain (level-0) heavy hitters at a relative threshold,
    /// descending by count.
    pub fn heavy_hitters(&self, threshold: Threshold) -> Vec<(H::Item, u64)> {
        let t = threshold.absolute(self.total);
        let mut out: Vec<_> =
            self.counts.iter().filter(|(_, &c)| c >= t).map(|(k, &c)| (*k, c)).collect();
        out.sort_by_key(|e| core::cmp::Reverse(e.1));
        out
    }

    /// Exact total count of an arbitrary prefix (sums matching items).
    pub fn prefix_count(&self, prefix: H::Prefix) -> u64 {
        let level = self.hierarchy.level_of(prefix);
        self.counts
            .iter()
            .filter(|(item, _)| self.hierarchy.generalize(**item, level) == prefix)
            .map(|(_, &c)| c)
            .sum()
    }

    /// Build the per-level count maps (exposed for the analysis crate,
    /// which also wants raw level counts for Jaccard denominators).
    pub fn level_counts(&self) -> Vec<HashMap<H::Prefix, u64>> {
        let levels = self.hierarchy.levels();
        let mut maps: Vec<HashMap<H::Prefix, u64>> = vec![HashMap::new(); levels];
        for (&item, &c) in &self.counts {
            for (level, map) in maps.iter_mut().enumerate() {
                *map.entry(self.hierarchy.generalize(item, level)).or_default() += c;
            }
        }
        maps
    }
}

impl<H: Hierarchy> HhhDetector<H> for ExactHhh<H> {
    fn observe(&mut self, item: H::Item, weight: u64) {
        *self.counts.entry(item).or_default() += weight;
        self.total += weight;
    }

    fn observe_batch(&mut self, batch: &[(H::Item, u64)]) {
        self.counts.reserve(batch.len() / 4);
        for &(item, weight) in batch {
            *self.counts.entry(item).or_default() += weight;
            self.total += weight;
        }
    }

    fn total(&self) -> u64 {
        self.total
    }

    fn report(&self, threshold: Threshold) -> Vec<HhhReport<H::Prefix>> {
        let t = threshold.absolute(self.total);
        discount_bottom_up(&self.hierarchy, &self.level_counts(), t)
    }

    fn reset(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    fn state_bytes(&self) -> usize {
        // Hash map entry ≈ key + value + bucket overhead.
        self.counts.len() * (core::mem::size_of::<H::Item>() + 8 + 16)
    }

    fn name(&self) -> &'static str {
        "exact"
    }
}

impl<H: Hierarchy> MergeableDetector for ExactHhh<H> {
    /// Lossless: merging shard states of any partition of a stream
    /// reproduces the unpartitioned state exactly (count maps add).
    fn merge(&mut self, other: &Self) {
        self.counts.reserve(other.counts.len());
        for (&item, &c) in &other.counts {
            *self.counts.entry(item).or_default() += c;
        }
        self.total += other.total;
    }

    /// Wire format: `{"counts":[[item, count], …]}` with items rendered
    /// via `Debug` and rows sorted by that rendering, so equal states
    /// serialize identically. Aggregators fold snapshots by summing
    /// counts per item — the same algebra as [`merge`](Self::merge).
    fn snapshot(&self) -> Option<crate::snapshot::DetectorSnapshot> {
        // Items render via `Debug` (the only rendering bound
        // `Hierarchy::Item` carries). The decode half parses them back
        // with `FromStr`, so snapshot round-tripping requires the two
        // forms to agree — true for the primitive integer items every
        // in-tree hierarchy uses; a custom hierarchy whose `Debug`
        // form is not its `FromStr` form must not rely on `exact`
        // snapshots (decode returns a typed error rather than
        // corrupting counts, since keys that fail to parse reject the
        // row).
        let mut rows: Vec<(String, Vec<u64>)> =
            self.counts.iter().map(|(item, &c)| (format!("{item:?}"), vec![c])).collect();
        rows.sort();
        Some(crate::snapshot::DetectorSnapshot {
            kind: "exact".into(),
            total: self.total,
            state_json: format!("{{\"counts\":{}}}", crate::snapshot::json_keyed_rows(&rows)),
        })
    }

    /// Native v2 encode ([`FrameEncode`]) — byte-identical to
    /// transcoding [`snapshot`](MergeableDetector::snapshot), without
    /// rendering or parsing JSON.
    fn to_frame(
        &self,
        start: hhh_nettypes::Nanos,
        at: hhh_nettypes::Nanos,
    ) -> Option<crate::snapshot::SnapshotFrame> {
        FrameEncode::encode_frame(self, start, at).ok()
    }

    /// Exact counts subtract as losslessly as they add: removing a
    /// previously merged state restores the pre-merge state verbatim
    /// (zeroed items leave the map, so equality with a never-merged
    /// detector is structural, not just observational).
    fn retract(&mut self, other: &Self) -> bool {
        for (&item, &c) in &other.counts {
            match self.counts.get_mut(&item) {
                Some(e) => {
                    *e = e.saturating_sub(c);
                    if *e == 0 {
                        self.counts.remove(&item);
                    }
                }
                None => debug_assert!(false, "retracting a state that was never merged"),
            }
        }
        self.total = self.total.saturating_sub(other.total);
        true
    }
}

impl<H: Hierarchy> FrameEncode for ExactHhh<H> {
    fn frame_kind(&self) -> &'static str {
        "exact"
    }

    fn frame_total(&self) -> u64 {
        self.total
    }

    fn frame_digest(&self) -> u64 {
        crate::snapshot::binary::exact_config_digest()
    }

    /// The v2 `exact` body straight from the count map: rows sorted by
    /// the item's `Debug` rendering — the same order (and the same
    /// key strings) the JSON body uses, so the frame is byte-identical
    /// to transcoding [`snapshot`](MergeableDetector::snapshot).
    fn write_frame_body(&self, out: &mut Vec<u8>) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::binary::{put_str, put_uv};
        let mut rows: Vec<(String, u64)> =
            self.counts.iter().map(|(item, &c)| (format!("{item:?}"), c)).collect();
        rows.sort();
        put_uv(out, rows.len() as u64);
        for (key, count) in &rows {
            put_str(out, key);
            put_uv(out, *count);
        }
        Ok(())
    }
}

impl<H: Hierarchy> ExactHhh<H>
where
    H::Item: core::str::FromStr,
{
    /// Rebuild a detector from a serialized
    /// [`snapshot`](MergeableDetector::snapshot) — the decode half of
    /// the round-trip codec. The restored detector is bit-equivalent
    /// to the one that emitted the snapshot: counts, total, reports
    /// and re-serialization all match exactly.
    ///
    /// Requires `H::Item`'s `FromStr` to parse its `Debug` rendering
    /// (the form [`snapshot`](MergeableDetector::snapshot) writes) —
    /// see the encode-side note; integer item types satisfy this.
    pub fn from_snapshot(
        hierarchy: H,
        snap: &crate::snapshot::DetectorSnapshot,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::{parse_keyed_rows, req, SnapshotError};
        if snap.kind != "exact" {
            return Err(SnapshotError::Mismatch(format!(
                "expected kind `exact`, got `{}`",
                snap.kind
            )));
        }
        let state = snap.state()?;
        let rows: Vec<(H::Item, Vec<u64>)> = parse_keyed_rows(req(&state, "counts")?, "counts", 1)?;
        Self::from_wire_rows(
            hierarchy,
            rows.into_iter().map(|(item, vals)| (item, vals[0])),
            snap.total,
        )
    }

    /// The validated decode core both wire formats share: build a
    /// detector from already-parsed `(item, count)` rows, rejecting
    /// duplicates, count overflow, and an envelope total that does not
    /// equal the sum of counts.
    pub(crate) fn from_wire_rows(
        hierarchy: H,
        rows: impl IntoIterator<Item = (H::Item, u64)>,
        envelope_total: u64,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let rows = rows.into_iter();
        let mut counts: HashMap<H::Item, u64> = HashMap::with_capacity(rows.size_hint().0);
        let mut total: u64 = 0;
        for (item, count) in rows {
            if counts.insert(item, count).is_some() {
                return Err(SnapshotError::Invalid { field: "counts", what: "duplicate item" });
            }
            total = total
                .checked_add(count)
                .ok_or(SnapshotError::Invalid { field: "counts", what: "counts overflow u64" })?;
        }
        if total != envelope_total {
            return Err(SnapshotError::Invalid {
                field: "total",
                what: "envelope total does not equal the sum of counts",
            });
        }
        Ok(ExactHhh { hierarchy, counts, total })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_hierarchy::Ipv4Hierarchy;
    use hhh_nettypes::Ipv4Prefix;

    fn ip(s: &str) -> u32 {
        s.parse::<Ipv4Prefix>().unwrap().addr()
    }

    fn px(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn detector_with(items: &[(&str, u64)]) -> ExactHhh<Ipv4Hierarchy> {
        let mut d = ExactHhh::new(Ipv4Hierarchy::bytes());
        for (a, w) in items {
            d.observe(ip(a), *w);
        }
        d
    }

    #[test]
    fn single_dominant_host() {
        let d = detector_with(&[("10.1.1.1", 90), ("20.2.2.2", 10)]);
        let r = d.report(Threshold::percent(50.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].prefix, px("10.1.1.1/32"));
        assert_eq!(r[0].discounted, 90);
        assert_eq!(r[0].level, 0);
    }

    #[test]
    fn discount_hides_covered_ancestors() {
        // The worked example from the module docs of DESIGN.md §6.
        let d = detector_with(&[
            ("10.1.1.1", 40),
            ("10.1.1.2", 30),
            ("10.1.2.1", 60),
            ("20.0.0.1", 70),
        ]);
        // total 200, T = 50 at 25%.
        let r = d.report(Threshold::percent(25.0));
        let prefixes: Vec<String> = r.iter().map(|x| x.prefix.to_string()).collect();
        assert_eq!(prefixes, vec!["10.1.2.1/32", "20.0.0.1/32", "10.1.1.0/24"], "got {prefixes:?}");
        // The /24 aggregates two sub-threshold hosts.
        let p24 = r.iter().find(|x| x.prefix == px("10.1.1.0/24")).unwrap();
        assert_eq!(p24.estimate, 70);
        assert_eq!(p24.discounted, 70);
        // No /16, /8 or root: everything above is fully discounted.
        assert!(r.iter().all(|x| x.level <= 1));
    }

    #[test]
    fn root_reports_residual_tail() {
        // Many small scattered sources, no single HHH below the root:
        // the root's discounted count is the whole total.
        let mut d = ExactHhh::new(Ipv4Hierarchy::bytes());
        for i in 0..100u32 {
            // Spread across distinct /8s.
            d.observe((i % 200) << 24 | i, 1);
        }
        let r = d.report(Threshold::percent(50.0));
        assert_eq!(r.len(), 1);
        assert!(r[0].prefix.is_root());
        assert_eq!(r[0].discounted, 100);
    }

    #[test]
    fn nested_hhhs_each_discounted() {
        // A /32 HHH inside a /24 that also has enough *other* traffic
        // to be an HHH itself.
        let mut items = vec![("10.1.1.1", 100)];
        let small: Vec<String> = (2..100).map(|i| format!("10.1.1.{i}")).collect();
        for s in &small {
            items.push((s.as_str(), 2));
        }
        let d = detector_with(&items.iter().map(|(a, w)| (*a, *w)).collect::<Vec<_>>());
        // total = 100 + 98*2 = 296; T at 25% = 74.
        let r = d.report(Threshold::percent(25.0));
        let host = r.iter().find(|x| x.level == 0).unwrap();
        assert_eq!(host.prefix, px("10.1.1.1/32"));
        let p24 = r.iter().find(|x| x.level == 1).unwrap();
        assert_eq!(p24.prefix, px("10.1.1.0/24"));
        assert_eq!(p24.estimate, 296);
        assert_eq!(p24.discounted, 196, "residual excludes the /32 HHH");
        // /16 and above: fully discounted by the /24 (max desc).
        assert!(r.iter().all(|x| x.level <= 1));
    }

    #[test]
    fn threshold_monotonicity() {
        let d = detector_with(&[
            ("10.1.1.1", 40),
            ("10.1.1.2", 30),
            ("10.1.2.1", 60),
            ("20.0.0.1", 70),
            ("30.0.0.1", 5),
        ]);
        let mut last_len = usize::MAX;
        for pct in [1.0, 5.0, 10.0, 25.0, 50.0] {
            let len = d.report(Threshold::percent(pct)).len();
            assert!(len <= last_len, "HHH count must not grow with threshold");
            last_len = len;
        }
    }

    #[test]
    fn hhh_count_is_bounded() {
        // Theory: at threshold θ the number of HHHs is at most
        // levels/θ (each level's discounted counts sum to ≤ total).
        let mut d = ExactHhh::new(Ipv4Hierarchy::bytes());
        for i in 0..10_000u32 {
            d.observe(i.wrapping_mul(2_654_435_761), 1 + (i % 7) as u64);
        }
        for pct in [1.0, 5.0, 10.0] {
            let r = d.report(Threshold::percent(pct));
            let bound = (d.hierarchy().levels() as f64 / (pct / 100.0)) as usize;
            assert!(r.len() <= bound, "{} HHHs exceeds bound {bound} at {pct}%", r.len());
        }
    }

    #[test]
    fn reset_clears() {
        let mut d = detector_with(&[("1.2.3.4", 10)]);
        assert_eq!(d.total(), 10);
        d.reset();
        assert_eq!(d.total(), 0);
        assert_eq!(d.distinct_items(), 0);
        assert!(d.report(Threshold::percent(1.0)).is_empty());
    }

    #[test]
    fn heavy_hitters_plain() {
        let d = detector_with(&[("1.1.1.1", 50), ("2.2.2.2", 30), ("3.3.3.3", 20)]);
        let hh = d.heavy_hitters(Threshold::percent(25.0));
        assert_eq!(hh.len(), 2);
        assert_eq!(hh[0].1, 50);
    }

    #[test]
    fn prefix_count_sums_members() {
        let d = detector_with(&[("10.1.1.1", 5), ("10.1.1.2", 7), ("10.2.0.0", 100)]);
        assert_eq!(d.prefix_count(px("10.1.1.0/24")), 12);
        assert_eq!(d.prefix_count(px("10.0.0.0/8")), 112);
        assert_eq!(d.prefix_count(px("99.0.0.0/8")), 0);
    }

    #[test]
    fn reports_sorted_by_level_then_prefix() {
        let d = detector_with(&[("10.1.1.1", 100), ("9.1.1.1", 100), ("10.1.1.0", 1)]);
        let r = d.report(Threshold::percent(10.0));
        for w in r.windows(2) {
            assert!((w[0].level, w[0].prefix) < (w[1].level, w[1].prefix), "unsorted report");
        }
    }

    #[test]
    fn bit_hierarchy_also_works() {
        let mut d = ExactHhh::new(Ipv4Hierarchy::bits());
        d.observe(ip("10.1.1.1"), 60);
        d.observe(ip("10.1.1.0"), 50);
        // total 110, T=55 at 50%: the /32 (60) and their common /31
        // would hold 110−60=50 < 55 discounted... so only one HHH.
        let r = d.report(Threshold::percent(50.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].prefix, px("10.1.1.1/32"));
    }
}
