//! Exact two-dimensional HHH over the (source, destination) lattice.
//!
//! In 2-D the "exclude all HHH descendants" discount needs care: a
//! node's descendants overlap (the same packet can be covered by an
//! HHH at `(10.1/16, *)` *and* one at `(*, 192.168/16)`), so naive
//! subtraction double-discounts. This implementation computes the
//! discount exactly from first principles: for every item (exact
//! (src, dst) pair) it tracks *which node shapes* have already been
//! declared HHH above it, and a node's discounted count sums exactly
//! the items not yet covered by a strictly-contained HHH. A 5×5 byte
//! lattice fits in a 25-bit mask per item, so coverage checks are two
//! bit operations.
//!
//! This matches the "discounted, exclude-all" semantics of the 1-D
//! detectors (it reduces to them when one dimension is trivial) and is
//! the ground truth for any future streaming 2-D detector.

use crate::report::Threshold;
use hhh_hierarchy::{TwoDimHierarchy, TwoDimNode};
use std::collections::HashMap;

/// One reported 2-D hierarchical heavy hitter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoDimReport {
    /// The reported lattice node.
    pub node: TwoDimNode,
    /// Combined generalization depth (diagonal) of the node.
    pub diagonal: usize,
    /// Total traffic of the node.
    pub estimate: u64,
    /// Discounted traffic (items not covered by HHH descendants).
    pub discounted: u64,
}

/// Exact windowed 2-D HHH detector.
#[derive(Clone, Debug)]
pub struct TwoDimExactHhh {
    lattice: TwoDimHierarchy,
    counts: HashMap<(u32, u32), u64>,
    total: u64,
}

impl TwoDimExactHhh {
    /// An empty detector over a lattice.
    pub fn new(lattice: TwoDimHierarchy) -> Self {
        TwoDimExactHhh { lattice, counts: HashMap::new(), total: 0 }
    }

    /// Account `weight` to a (src, dst) pair.
    pub fn observe(&mut self, src: u32, dst: u32, weight: u64) {
        *self.counts.entry((src, dst)).or_default() += weight;
        self.total += weight;
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Distinct (src, dst) pairs seen.
    pub fn distinct_pairs(&self) -> usize {
        self.counts.len()
    }

    /// Forget everything.
    pub fn reset(&mut self) {
        self.counts.clear();
        self.total = 0;
    }

    /// The exact 2-D HHH set, processed diagonal by diagonal from the
    /// most specific shapes to the root, sorted by (diagonal, node).
    pub fn report(&self, threshold: Threshold) -> Vec<TwoDimReport> {
        let t = threshold.absolute(self.total);
        let sl_n = self.lattice.src_levels();
        let dl_n = self.lattice.dst_levels();
        let shape_bit = |sl: usize, dl: usize| -> u32 { 1 << (sl * dl_n + dl) };
        // (node, diagonal, total, discounted, shape) of a new HHH.
        type NewHhh = (TwoDimNode, usize, u64, u64, (usize, usize));

        // Per item: bitmask of shapes already declared HHH that contain
        // the item. (Shape + item determines the node.)
        let items: Vec<((u32, u32), u64)> = self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        let mut covered: Vec<u32> = vec![0; items.len()];
        let mut out = Vec::new();

        for diag in 0..self.lattice.diagonals() {
            // Shapes on this diagonal.
            let shapes: Vec<(usize, usize)> = (0..sl_n)
                .flat_map(|sl| (0..dl_n).map(move |dl| (sl, dl)))
                .filter(|(sl, dl)| sl + dl == diag)
                .collect();
            let mut new_hhh: Vec<NewHhh> = Vec::new();
            for &(sl, dl) in &shapes {
                // Aggregate total and discounted counts per node.
                let mut totals: HashMap<TwoDimNode, u64> = HashMap::new();
                let mut discounted: HashMap<TwoDimNode, u64> = HashMap::new();
                for (i, &(pair, w)) in items.iter().enumerate() {
                    let node = self.lattice.generalize(pair, sl, dl);
                    *totals.entry(node).or_default() += w;
                    // The item counts toward the discount unless some
                    // strictly smaller HHH shape (≤ in both dims, ≠)
                    // already covers it.
                    let mask = covered[i];
                    let mut is_covered = false;
                    if mask != 0 {
                        'scan: for s in 0..=sl {
                            for d in 0..=dl {
                                if (s, d) != (sl, dl) && mask & shape_bit(s, d) != 0 {
                                    is_covered = true;
                                    break 'scan;
                                }
                            }
                        }
                    }
                    if !is_covered {
                        *discounted.entry(node).or_default() += w;
                    }
                }
                for (node, disc) in discounted {
                    if disc >= t {
                        new_hhh.push((node, diag, totals[&node], disc, (sl, dl)));
                    }
                }
            }
            // Mark coverage only after the whole diagonal is decided
            // (nodes on the same diagonal never contain one another, so
            // they must not discount each other).
            for &(node, _, _, _, (sl, dl)) in &new_hhh {
                for (i, &(pair, _)) in items.iter().enumerate() {
                    if self.lattice.generalize(pair, sl, dl) == node {
                        covered[i] |= shape_bit(sl, dl);
                    }
                }
            }
            out.extend(new_hhh.into_iter().map(|(node, diagonal, estimate, discounted, _)| {
                TwoDimReport { node, diagonal, estimate, discounted }
            }));
        }
        out.sort_by(|a, b| a.diagonal.cmp(&b.diagonal).then(a.node.cmp(&b.node)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_nettypes::Ipv4Prefix;

    fn ip(s: &str) -> u32 {
        s.parse::<Ipv4Prefix>().unwrap().addr()
    }

    fn node(s: &str, d: &str) -> TwoDimNode {
        TwoDimNode { src: s.parse().unwrap(), dst: d.parse().unwrap() }
    }

    #[test]
    fn dominant_pair_is_leaf_hhh() {
        let mut d = TwoDimExactHhh::new(TwoDimHierarchy::bytes());
        d.observe(ip("10.1.1.1"), ip("192.168.0.1"), 90);
        d.observe(ip("20.2.2.2"), ip("8.8.8.8"), 10);
        let r = d.report(Threshold::percent(50.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].node, node("10.1.1.1/32", "192.168.0.1/32"));
        assert_eq!(r[0].discounted, 90);
        assert_eq!(r[0].diagonal, 0);
    }

    #[test]
    fn no_double_discount_on_overlap() {
        // Two HHHs overlap at a meet: one heavy source fanning to many
        // destinations (HHH at (src/32, */0)) and one heavy destination
        // receiving from many sources (HHH at (*/0, dst/32)); the pair
        // (src,dst) itself is also heavy. The root's discount must not
        // subtract the (src,dst) mass twice.
        let mut d = TwoDimExactHhh::new(TwoDimHierarchy::bytes());
        let s = ip("10.0.0.1");
        let v = ip("99.0.0.1");
        d.observe(s, v, 40); // heavy pair
        for i in 0..20u32 {
            d.observe(s, ip(&format!("50.{}.1.1", i)), 1); // src fan-out
            d.observe(ip(&format!("60.{}.1.1", i)), v, 1); // dst fan-in
        }
        // total = 80. T = 24 at 30%.
        let r = d.report(Threshold::percent(30.0));
        let pair = r.iter().find(|x| x.diagonal == 0).expect("pair HHH");
        assert_eq!(pair.discounted, 40);
        // (src/32, */0): total 60, minus covered 40 → 20 < 24: not HHH.
        assert!(
            !r.iter().any(|x| x.node == node("10.0.0.1/32", "0.0.0.0/0")),
            "fan-out should be discounted below threshold: {r:?}"
        );
        // Root: total 80 − 40 (covered by pair) = 40 ≥ 24 → HHH with
        // discounted exactly 40 (the fan mass, not 80−40−20−20 = 0).
        let root = r.iter().find(|x| x.node == node("0.0.0.0/0", "0.0.0.0/0")).expect("root HHH");
        assert_eq!(root.discounted, 40, "overlap handled wrongly: {r:?}");
    }

    #[test]
    fn same_diagonal_nodes_do_not_discount_each_other() {
        let mut d = TwoDimExactHhh::new(TwoDimHierarchy::bytes());
        // Two pairs sharing a /24-source but distinct hosts.
        d.observe(ip("10.1.1.1"), ip("99.0.0.1"), 50);
        d.observe(ip("10.1.1.2"), ip("99.0.0.1"), 50);
        // total 100, T=40: both pairs are HHH at diagonal 0. The nodes
        // (10.1.1.1/32, 99.0.0.0/24) and (10.1.1.0/24, 99.0.0.1/32) at
        // diagonal 1 are then fully covered.
        let r = d.report(Threshold::percent(40.0));
        let d0: Vec<_> = r.iter().filter(|x| x.diagonal == 0).collect();
        assert_eq!(d0.len(), 2);
        assert!(r.iter().all(|x| x.diagonal == 0), "covered ancestors leaked: {r:?}");
    }

    #[test]
    fn aggregate_only_visible_at_its_level() {
        // 30 pairs, each 1 unit, all inside (10.1/16 → 99.0/16); no
        // pair, /24 row or column is heavy, but the /16 pair is.
        let mut d = TwoDimExactHhh::new(TwoDimHierarchy::bytes());
        for i in 0..30u32 {
            d.observe(
                ip(&format!("10.1.{}.{}", i % 8, i)),
                ip(&format!("99.0.{}.{}", i % 8, 200 - i)),
                1,
            );
        }
        for i in 0..70u32 {
            // background scattered everywhere
            d.observe(ip(&format!("{}.2.3.4", 100 + (i % 50))), ip(&format!("8.8.{}.8", i)), 1);
        }
        // total 100, T=25.
        let r = d.report(Threshold::percent(25.0));
        let agg = r
            .iter()
            .find(|x| x.node == node("10.1.0.0/16", "99.0.0.0/16"))
            .expect("the /16 pair aggregate");
        assert_eq!(agg.estimate, 30);
        assert_eq!(agg.discounted, 30);
        // Nothing below that diagonal qualifies.
        assert!(r.iter().all(|x| x.diagonal >= agg.diagonal));
    }

    #[test]
    fn reduces_to_1d_when_dst_constant() {
        use crate::detector::HhhDetector;
        use crate::exact::ExactHhh;
        use hhh_hierarchy::{Hierarchy, Ipv4Hierarchy};
        // Same stream into 1-D (source) and 2-D with constant dst.
        let items = [("10.1.1.1", 40u64), ("10.1.1.2", 30), ("10.1.2.1", 60), ("20.0.0.1", 70)];
        let mut one = ExactHhh::new(Ipv4Hierarchy::bytes());
        let mut two = TwoDimExactHhh::new(TwoDimHierarchy::bytes());
        let dst = ip("8.8.8.8");
        for (a, w) in items {
            one.observe(ip(a), w);
            two.observe(ip(a), dst, w);
        }
        let t = Threshold::percent(25.0);
        let r1: std::collections::HashSet<String> =
            one.report(t).iter().map(|x| x.prefix.to_string()).collect();
        // Project the 2-D report onto source prefixes for nodes whose
        // dst side is the host or its ancestors with the same source
        // discount — the src-side *minimal* nodes per source prefix.
        let r2 = two.report(t);
        // For every 1-D HHH there must exist a 2-D HHH with that source
        // prefix (the (p, dst-chain) node that first clears T).
        for p in &r1 {
            assert!(
                r2.iter().any(|x| x.node.src.to_string() == *p),
                "1-D HHH {p} has no 2-D counterpart: {r2:?}"
            );
        }
        let _ = Ipv4Hierarchy::bytes().levels();
    }

    #[test]
    fn reset_and_accessors() {
        let mut d = TwoDimExactHhh::new(TwoDimHierarchy::bytes());
        d.observe(1, 2, 3);
        assert_eq!(d.total(), 3);
        assert_eq!(d.distinct_pairs(), 1);
        d.reset();
        assert_eq!(d.total(), 0);
        assert!(d.report(Threshold::percent(1.0)).is_empty());
    }
}
