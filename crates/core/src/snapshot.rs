//! Detector state snapshots: the wire format for distributed
//! aggregation.
//!
//! [`MergeableDetector::merge`](crate::MergeableDetector::merge) makes
//! sharded ingestion work *inside* one process. To merge across
//! processes or hosts, shard states must cross a wire — this module
//! defines the serialized form. A [`DetectorSnapshot`] is a small
//! self-describing envelope (`kind`, `total`, JSON state body) that the
//! JSON sinks in `hhh-window` emit at report points; an aggregator
//! groups lines by `kind` and folds the state bodies together (counts
//! add for `exact`; Space-Saving entries union-then-prune, exactly the
//! in-process merge recipe).
//!
//! The body is plain JSON, hand-rendered (this workspace is fully
//! offline — no serde), deterministic (entries sorted), and
//! self-contained: no reader needs the Rust types to consume it.

use std::fmt::Display;
use std::fmt::Write as _;

/// A serialized snapshot of a detector's mergeable state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetectorSnapshot {
    /// Stable wire-format discriminator (the detector's `name()`).
    pub kind: &'static str,
    /// Total weight covered by the state (undecayed, since reset).
    pub total: u64,
    /// The state body: a JSON object string, format per `kind`.
    pub state_json: String,
}

impl DetectorSnapshot {
    /// Render the whole envelope as one JSON object (one line, no
    /// trailing newline) — the unit the snapshot sinks write.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\":{},\"total\":{},\"state\":{}}}",
            json_string(self.kind),
            self.total,
            self.state_json
        )
    }
}

/// Escape a string as a JSON string literal (with quotes).
pub fn json_string(s: impl Display) -> String {
    let raw = s.to_string();
    let mut out = String::with_capacity(raw.len() + 2);
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render `[[key, v1, v2, …], …]` rows as a JSON array of arrays with
/// the key as a JSON string. Rows must already be sorted by the caller
/// (snapshots are deterministic by contract).
pub fn json_keyed_rows<K: Display>(rows: &[(K, Vec<u64>)]) -> String {
    let mut out = String::from("[");
    for (i, (key, vals)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('[');
        out.push_str(&json_string(key));
        for v in vals {
            let _ = write!(out, ",{v}");
        }
        out.push(']');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_renders_stably() {
        let s = DetectorSnapshot {
            kind: "exact",
            total: 42,
            state_json: "{\"counts\":[]}".to_string(),
        };
        assert_eq!(s.to_json(), "{\"kind\":\"exact\",\"total\":42,\"state\":{\"counts\":[]}}");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("10.0.0.0/8"), "\"10.0.0.0/8\"");
    }

    #[test]
    fn keyed_rows_render() {
        let rows = vec![("a", vec![1, 2]), ("b", vec![3])];
        assert_eq!(json_keyed_rows(&rows), "[[\"a\",1,2],[\"b\",3]]");
    }
}
