//! HashPipe — "Heavy-Hitter Detection Entirely in the Data Plane"
//! (Sivaraman, Narayana, Rottenstreich, Muthukrishnan, Rexford,
//! SOSR 2017): the paper's reference [5] and one of the disjoint-window
//! systems whose blind spots the paper measures.
//!
//! HashPipe is a pipeline of `d` hash-indexed tables designed for
//! match-action hardware: each stage is touched exactly once per
//! packet (read-modify-write of a single slot), which is what a
//! P4 pipeline can actually do. The algorithm:
//!
//! * **Stage 0**: always insert. If the slot holds the packet's key,
//!   add; otherwise kick the occupant out and carry it downstream.
//! * **Stages 1..d**: if the slot holds the carried key, merge and
//!   stop; if the slot is weaker (smaller count) than the carried
//!   entry, swap and carry the weaker one on; after the last stage the
//!   carried remnant is dropped (undercount, never overcount — the
//!   mirror image of Space-Saving).
//!
//! This is a plain heavy-hitter (not HHH) algorithm; it appears here as
//! the baseline the comparison experiment runs windows over, and
//! `hhh-dataplane` maps this exact logic onto its match-action pipeline
//! model to account hardware resources.

use hhh_sketches::hash::{hash_of, reduce, seed_sequence};
use std::collections::HashMap;
use std::hash::Hash;

#[derive(Clone, Copy, Debug)]
struct Slot<K> {
    key: Option<K>,
    count: u64,
}

/// The HashPipe heavy-hitter pipeline.
#[derive(Clone, Debug)]
pub struct HashPipe<K> {
    /// `stages × slots_per_stage` slot matrix.
    stages: Vec<Vec<Slot<K>>>,
    seeds: Vec<u64>,
    slots_per_stage: usize,
    total: u64,
}

impl<K: Hash + Eq + Copy> HashPipe<K> {
    /// A pipeline of `stages` tables with `slots_per_stage` slots each.
    /// Panics if either is zero.
    pub fn new(stages: usize, slots_per_stage: usize, seed: u64) -> Self {
        assert!(stages > 0 && slots_per_stage > 0, "HashPipe dimensions must be non-zero");
        HashPipe {
            stages: vec![vec![Slot { key: None, count: 0 }; slots_per_stage]; stages],
            seeds: seed_sequence(seed, stages),
            slots_per_stage,
            total: 0,
        }
    }

    /// Number of pipeline stages.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Slots per stage.
    pub fn slots_per_stage(&self) -> usize {
        self.slots_per_stage
    }

    /// Total weight observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate memory footprint in bytes.
    pub fn state_bytes(&self) -> usize {
        self.stages.len() * self.slots_per_stage * core::mem::size_of::<Slot<K>>()
    }

    /// Observe `weight` for `key`.
    pub fn observe(&mut self, key: K, weight: u64) {
        self.total += weight;
        // Stage 0: always insert.
        let idx = reduce(hash_of(&key, self.seeds[0]), self.slots_per_stage);
        let slot = &mut self.stages[0][idx];
        let mut carried = match slot.key {
            Some(k) if k == key => {
                slot.count += weight;
                return;
            }
            None => {
                *slot = Slot { key: Some(key), count: weight };
                return;
            }
            Some(k) => {
                let evicted = Slot { key: Some(k), count: slot.count };
                *slot = Slot { key: Some(key), count: weight };
                evicted
            }
        };
        // Downstream stages: keep the heavier entry, carry the lighter.
        for s in 1..self.stages.len() {
            let ck = carried.key.expect("carried entries always keyed");
            let idx = reduce(hash_of(&ck, self.seeds[s]), self.slots_per_stage);
            let slot = &mut self.stages[s][idx];
            match slot.key {
                Some(k) if k == ck => {
                    slot.count += carried.count;
                    return;
                }
                None => {
                    *slot = carried;
                    return;
                }
                Some(_) if slot.count < carried.count => {
                    core::mem::swap(slot, &mut carried);
                }
                Some(_) => {}
            }
        }
        // Carried remnant falls off the end of the pipe: undercount.
    }

    /// The pipeline's estimate for a key: sum over stages (a key can
    /// occupy one slot per stage after evictions). Never overestimates.
    pub fn estimate(&self, key: &K) -> u64 {
        let mut est = 0;
        for (s, stage) in self.stages.iter().enumerate() {
            let idx = reduce(hash_of(key, self.seeds[s]), self.slots_per_stage);
            if stage[idx].key.as_ref() == Some(key) {
                est += stage[idx].count;
            }
        }
        est
    }

    /// All tracked keys with aggregated counts at or above `threshold`,
    /// descending by count (ties broken by key, for reproducibility).
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(K, u64)>
    where
        K: Ord,
    {
        let mut agg: HashMap<K, u64> = HashMap::new();
        for stage in &self.stages {
            for slot in stage {
                if let Some(k) = slot.key {
                    *agg.entry(k).or_default() += slot.count;
                }
            }
        }
        let mut out: Vec<_> = agg.into_iter().filter(|(_, c)| *c >= threshold).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Reset all slots.
    pub fn reset(&mut self) {
        for stage in &mut self.stages {
            for slot in stage {
                *slot = Slot { key: None, count: 0 };
            }
        }
        self.total = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn single_key_is_exact() {
        let mut hp = HashPipe::<u64>::new(4, 64, 1);
        for _ in 0..100 {
            hp.observe(42, 3);
        }
        assert_eq!(hp.estimate(&42), 300);
        assert_eq!(hp.total(), 300);
    }

    #[test]
    fn never_overestimates() {
        let mut hp = HashPipe::<u64>::new(3, 32, 2);
        let mut truth: HashMap<u64, u64> = HashMap::new();
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..20_000 {
            let k = (rng.gen::<f64>().powi(2) * 500.0) as u64;
            let w = rng.gen_range(1..100);
            hp.observe(k, w);
            *truth.entry(k).or_default() += w;
        }
        for (k, t) in &truth {
            assert!(hp.estimate(k) <= *t, "overestimate for {k}");
        }
    }

    #[test]
    fn heavy_keys_survive_churn() {
        let mut hp = HashPipe::<u64>::new(4, 128, 7);
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000u64;
        for i in 0..n {
            // Keys 0..4 get 10% each; the rest is churn over 50k keys.
            let k = if i % 10 < 5 { i % 10 } else { 1000 + rng.gen_range(0..50_000) };
            hp.observe(k, 1);
        }
        for k in 0..5u64 {
            let est = hp.estimate(&k);
            let truth = n / 10;
            assert!(
                est as f64 > truth as f64 * 0.8,
                "heavy key {k} estimate {est} lost too much of {truth}"
            );
        }
        let hh = hp.heavy_hitters(n / 20);
        let top: std::collections::HashSet<u64> = hh.iter().map(|e| e.0).collect();
        for k in 0..5u64 {
            assert!(top.contains(&k), "heavy key {k} missing from HH report");
        }
    }

    #[test]
    fn more_stages_help() {
        let mut rng = SmallRng::seed_from_u64(5);
        let stream: Vec<u64> = (0..50_000)
            .map(|i| if i % 5 == 0 { i % 20 } else { 1000 + rng.gen_range(0..20_000) })
            .collect();
        let run = |stages: usize| {
            let mut hp = HashPipe::<u64>::new(stages, 256 / stages, 9);
            for &k in &stream {
                hp.observe(k, 1);
            }
            // Total mass retained in the pipe (lost carries reduce it).
            let retained: u64 = hp.heavy_hitters(0).iter().map(|e| e.1).sum();
            retained
        };
        // Same total slot budget, more stages: retention should not
        // collapse (HashPipe paper's table-partitioning effect).
        let one = run(1);
        let four = run(4);
        assert!(
            four as f64 > one as f64 * 0.8,
            "4-stage retention {four} collapsed vs 1-stage {one}"
        );
    }

    #[test]
    fn reset_clears() {
        let mut hp = HashPipe::<u64>::new(2, 8, 1);
        hp.observe(1, 5);
        hp.reset();
        assert_eq!(hp.total(), 0);
        assert_eq!(hp.estimate(&1), 0);
        assert!(hp.heavy_hitters(1).is_empty());
    }

    #[test]
    fn state_accounting() {
        let hp = HashPipe::<u32>::new(4, 100, 0);
        assert_eq!(hp.stages(), 4);
        assert_eq!(hp.slots_per_stage(), 100);
        assert!(hp.state_bytes() >= 4 * 100 * 12);
    }
}
