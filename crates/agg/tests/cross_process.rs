//! Cross-process smoke: spawn the real `hhh-agg` binary on real shard
//! stream files and check its stdout against the library fold — the
//! in-repo twin of the CI job that pipes K `distagg shard` processes
//! into `hhh-agg` and diffs a committed golden.

use hhh_agg::{fold_streams, read_stream, render_merged};
use hhh_core::Threshold;
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::{PacketRecord, TimeSpan};
use hhh_trace::{scenarios, TraceGenerator};
use hhh_window::{shard_of, JsonSnapshotSink, Pipeline, ShardedDisjoint};
use std::io::Write;
use std::process::{Command, Stdio};

/// One shard's snapshot JSONL over a key-partitioned slice of a small
/// day trace.
fn shard_stream(trace: &[PacketRecord], horizon: TimeSpan, k: usize, shard: usize) -> Vec<u8> {
    let packets: Vec<PacketRecord> =
        trace.iter().copied().filter(|p| shard_of(&p.src, k) == shard).collect();
    let (bytes, err) = Pipeline::new(packets.iter().copied())
        .engine(ShardedDisjoint::new(
            vec![hhh_core::ExactHhh::new(Ipv4Hierarchy::bytes())],
            horizon,
            TimeSpan::from_secs(5),
            &[Threshold::percent(1.0)],
            |p| p.src,
        ))
        .sink(JsonSnapshotSink::new(Vec::new()))
        .run();
    assert!(err.is_none());
    bytes
}

fn trace(horizon: TimeSpan) -> Vec<PacketRecord> {
    TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect()
}

#[test]
fn binary_output_matches_library_fold() {
    let horizon = TimeSpan::from_secs(10);
    let pkts = trace(horizon);
    let k = 3;
    let streams: Vec<Vec<u8>> = (0..k).map(|i| shard_stream(&pkts, horizon, k, i)).collect();

    // What the library says the merged reports are.
    let parsed: Vec<_> = streams
        .iter()
        .enumerate()
        .map(|(i, b)| read_stream(i, b.as_slice()).expect("stream parses"))
        .collect();
    let points = fold_streams(&Ipv4Hierarchy::bytes(), &parsed).expect("folds");
    let expected = render_merged(&points, &[Threshold::percent(1.0)], true);

    // What the binary says, over real files and a real process.
    let dir = std::env::temp_dir().join(format!("hhh-agg-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let mut paths = Vec::new();
    for (i, bytes) in streams.iter().enumerate() {
        let path = dir.join(format!("shard{i}.jsonl"));
        std::fs::write(&path, bytes).expect("write shard stream");
        paths.push(path);
    }
    let out = Command::new(env!("CARGO_BIN_EXE_hhh-agg"))
        .arg("--threshold")
        .arg("1")
        .arg("--emit-state")
        .args(&paths)
        .output()
        .expect("spawn hhh-agg");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let got: Vec<&str> = std::str::from_utf8(&out.stdout).expect("utf8").lines().collect();
    assert_eq!(got, expected.iter().map(String::as_str).collect::<Vec<_>>());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_reads_stdin_as_a_single_stream() {
    let horizon = TimeSpan::from_secs(10);
    let pkts = trace(horizon);
    let stream = shard_stream(&pkts, horizon, 1, 0);

    let parsed = vec![read_stream(0, stream.as_slice()).expect("parses")];
    let points = fold_streams(&Ipv4Hierarchy::bytes(), &parsed).expect("folds");
    let expected = render_merged(&points, &[Threshold::percent(1.0)], false);

    let mut child = Command::new(env!("CARGO_BIN_EXE_hhh-agg"))
        .arg("--threshold")
        .arg("1")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hhh-agg");
    child.stdin.take().expect("stdin").write_all(&stream).expect("feed stdin");
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let got: Vec<&str> = std::str::from_utf8(&out.stdout).expect("utf8").lines().collect();
    assert_eq!(got, expected.iter().map(String::as_str).collect::<Vec<_>>());
}

#[test]
fn binary_rejects_garbage_with_nonzero_exit() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hhh-agg"))
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn hhh-agg");
    child.stdin.take().expect("stdin").write_all(b"not json\n").expect("feed stdin");
    let out = child.wait_with_output().expect("wait");
    assert!(!out.status.success(), "garbage must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("record 1"), "error names the record: {stderr}");
}

#[test]
fn binary_format_shards_fold_to_the_same_merged_output() {
    // The wire-format v2 contract, through the real binary: K shard
    // streams written as binary frames must aggregate to byte-identical
    // JSON output — and a --transcode round trip must reproduce the
    // original stream.
    use hhh_window::SnapshotSink;

    let horizon = TimeSpan::from_secs(10);
    let pkts = trace(horizon);
    let k = 3;
    let shard_bin = |shard: usize| -> Vec<u8> {
        let packets: Vec<PacketRecord> =
            pkts.iter().copied().filter(|p| shard_of(&p.src, k) == shard).collect();
        let (bytes, err) = Pipeline::new(packets.iter().copied())
            .engine(ShardedDisjoint::new(
                vec![hhh_core::ExactHhh::new(Ipv4Hierarchy::bytes())],
                horizon,
                TimeSpan::from_secs(5),
                &[Threshold::percent(1.0)],
                |p| p.src,
            ))
            .sink(SnapshotSink::binary(Vec::new()))
            .run();
        assert!(err.is_none());
        bytes
    };
    let json_streams: Vec<Vec<u8>> = (0..k).map(|i| shard_stream(&pkts, horizon, k, i)).collect();
    let bin_streams: Vec<Vec<u8>> = (0..k).map(shard_bin).collect();

    let dir = std::env::temp_dir().join(format!("hhh-agg-bin-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let run_agg = |paths: &[std::path::PathBuf]| -> Vec<u8> {
        let out = Command::new(env!("CARGO_BIN_EXE_hhh-agg"))
            .args(["--threshold", "1", "--emit-state"])
            .args(paths)
            .output()
            .expect("spawn hhh-agg");
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        out.stdout
    };
    let write_all = |name: &str, streams: &[Vec<u8>]| -> Vec<std::path::PathBuf> {
        streams
            .iter()
            .enumerate()
            .map(|(i, bytes)| {
                let path = dir.join(format!("{name}{i}"));
                std::fs::write(&path, bytes).expect("write shard stream");
                path
            })
            .collect()
    };
    let from_json = run_agg(&write_all("shard-json", &json_streams));
    let from_bin = run_agg(&write_all("shard-bin", &bin_streams));
    assert_eq!(
        String::from_utf8_lossy(&from_json),
        String::from_utf8_lossy(&from_bin),
        "binary shard streams must aggregate byte-identically to JSON ones"
    );

    // Transcode round trip through the real binary: v1 -> v2 -> v1.
    let json_path = dir.join("shard-json0");
    let t2 = Command::new(env!("CARGO_BIN_EXE_hhh-agg"))
        .args(["--transcode", "--format", "binary"])
        .arg(&json_path)
        .output()
        .expect("spawn hhh-agg");
    assert!(t2.status.success());
    assert_eq!(t2.stdout, bin_streams[0], "v1 -> v2 transcode equals the native binary stream");
    let bin_path = dir.join("transcoded.bin");
    std::fs::write(&bin_path, &t2.stdout).expect("write transcoded");
    let t1 = Command::new(env!("CARGO_BIN_EXE_hhh-agg"))
        .args(["--transcode", "--format", "json"])
        .arg(&bin_path)
        .output()
        .expect("spawn hhh-agg");
    assert!(t1.status.success());
    assert_eq!(t1.stdout, json_streams[0], "v2 -> v1 transcode restores the original bytes");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn binary_rejects_unknown_flags_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_hhh-agg"))
        .arg("--frobnicate")
        .output()
        .expect("spawn hhh-agg");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}
