//! # hhh-agg
//!
//! The **cross-process aggregation** half of the snapshot wire format:
//! where `hhh-window`'s `SnapshotSink` emits one serialized
//! [`DetectorSnapshot`](hhh_core::DetectorSnapshot) per report point
//! per process — as v1 JSON lines or v2 binary frames — this crate
//! reads N such streams back (sniffing the format per stream), groups
//! the snapshots by report point and detector `kind`, folds each group
//! with the round-trip codec (`hhh-core::RestoredDetector`), and emits
//! the merged HHH reports — closing the distributed-aggregation loop:
//!
//! ```text
//!   shard process 0 ─┐
//!   shard process 1 ─┼─ snapshot stream ──► hhh-agg ──► merged reports
//!   shard process K ─┘   (files, pipes, or      │
//!                         TCP via --listen)     └──► merged state stream
//!                                                    (feeds another tier)
//! ```
//!
//! Folding is the in-process merge algebra lifted onto the wire —
//! Space-Saving union-then-prune per level, RHHH per-level sampled
//! summaries, TDBF cell-wise decayed sums, exact counts added
//! losslessly — so aggregating K per-shard streams reproduces the
//! single-process sharded run: bit-exactly for the exact detector,
//! within the documented merge error bounds for the approximate ones.
//! Binary snapshots decode **straight into detectors** (no JSON
//! detour), which is what lets the aggregation tier keep up with
//! RHHH-speed shards. Because the merged state re-serializes
//! byte-identically, the aggregator's `--emit-state` output is itself
//! a valid input stream: aggregation tiers compose — in either format.
//!
//! The library API is a handful of calls: [`read_stream`] (file/pipe
//! stream → [`WireSnapshot`]s), [`collect_socket_streams`] (N TCP
//! shard connections → streams in shard order, via the
//! `SnapshotTransport` layer in `hhh-window`), [`fold_streams`]
//! (group + fold), [`render_merged`] / [`write_merged`] (merged
//! points → output in a chosen format; binary states re-encode
//! **natively**, no JSON), and [`transcode`] (re-encode a whole
//! stream v1 ⇄ v2, byte-identically round-trippable). The `hhh-agg`
//! binary wraps them for files, pipes, and `--listen ADDR` sockets —
//! a socket fold is byte-identical to the file fold of the same
//! shards; the `FoldSnapshots` engine in `hhh-window` wraps the same
//! fold as a `Pipeline` stage for a single stream. Failures are typed
//! end to end: [`AggError`] `source()`-chains to [`SnapshotError`] or
//! [`TransportError`] (and through it to the underlying
//! [`std::io::Error`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hhh_core::snapshot::binary::SnapshotFrame;
use hhh_core::snapshot::binary::REPORT_KIND;
use hhh_core::{
    RestoredDetector, SnapshotError, StampedSnapshot, Threshold, WireFormat, WireSnapshot,
};
use hhh_hierarchy::Hierarchy;
use hhh_nettypes::Nanos;
use hhh_window::{
    render_report_line, SnapshotSource, StreamRecord, TcpFrameListener, TransportError,
    WindowReport, HELLO_KIND,
};
use std::collections::BTreeMap;
use std::fmt::{self, Display};
use std::io::{BufRead, Write};
use std::str::FromStr;

/// Why an aggregation run failed.
#[derive(Debug)]
pub enum AggError {
    /// A stream could not be read or decoded.
    Decode {
        /// Index of the offending stream (argument order).
        stream: usize,
        /// 1-based record number within the stream (line number for
        /// JSONL, frame ordinal for binary).
        line: usize,
        /// The decode failure.
        error: SnapshotError,
    },
    /// Two snapshots at one report point could not be folded, or a
    /// snapshot could not be restored into a live detector.
    Fold {
        /// The report point the fold failed at.
        at: Nanos,
        /// The fold failure.
        error: SnapshotError,
    },
    /// An input file could not be opened, read, or written.
    Io(String),
    /// A snapshot transport (socket listener, frame channel) failed.
    Transport(TransportError),
}

impl Display for AggError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggError::Decode { stream, line, error } => {
                write!(f, "stream {stream}, record {line}: {error}")
            }
            AggError::Fold { at, error } => write!(f, "fold at {at}: {error}"),
            AggError::Io(what) => write!(f, "I/O: {what}"),
            AggError::Transport(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AggError {
    /// Chain to the typed cause: decode and fold failures source the
    /// [`SnapshotError`], transport failures the [`TransportError`]
    /// (which itself sources the underlying [`std::io::Error`]) — so
    /// `hhh-agg: transport accept failed: …` callers can walk all the
    /// way down to the I/O kind.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AggError::Decode { error, .. } | AggError::Fold { error, .. } => Some(error),
            AggError::Transport(e) => Some(e),
            AggError::Io(_) => None,
        }
    }
}

impl From<TransportError> for AggError {
    fn from(e: TransportError) -> Self {
        AggError::Transport(e)
    }
}

/// Read one snapshot stream (either wire format, sniffed) to the end:
/// state records decode to [`WireSnapshot`]s, report records are
/// skipped, garbage is an error. `stream` tags errors with the
/// stream's index.
pub fn read_stream<R: BufRead>(stream: usize, input: R) -> Result<Vec<WireSnapshot>, AggError> {
    let mut source = SnapshotSource::new(input);
    let snapshots: Vec<WireSnapshot> = source.by_ref().collect();
    if let Some((line, error)) = source.error() {
        return Err(AggError::Decode { stream, line: *line, error: error.clone() });
    }
    Ok(snapshots)
}

/// Receive N shard streams **over TCP** and hand them back in fold
/// order — the socket counterpart of calling [`read_stream`] on N
/// files.
///
/// Blocks until `expect` distinct shard connections (identified by
/// their hello frames) have delivered their whole stream, then returns
/// the streams **sorted by shard id** — the same deterministic order a
/// file-based invocation lists its arguments in, which is what makes
/// `hhh-agg --listen` output byte-identical to the file-based fold of
/// the same shards. Report and hello frames are dropped (folding never
/// needs them); state frames stay undecoded until the fold.
pub fn collect_socket_streams(
    listener: TcpFrameListener,
    expect: usize,
) -> Result<Vec<Vec<WireSnapshot>>, AggError> {
    let streams = listener.collect_streams(expect)?;
    Ok(streams
        .into_iter()
        .map(|s| {
            s.frames
                .into_iter()
                .filter(|f| f.kind != REPORT_KIND && f.kind != HELLO_KIND)
                .map(WireSnapshot::Binary)
                .collect()
        })
        .collect())
}

/// One report point after aggregation: every snapshot taken at `at`
/// with this `kind`, folded across all input streams.
pub struct MergedPoint<H: Hierarchy> {
    /// The report point the snapshots were taken at.
    pub at: Nanos,
    /// Start of the report window the snapshots cover (`== at` for
    /// windowless probes and pre-geometry v1 streams).
    pub start: Nanos,
    /// The detector kind (`exact`, `ss-hhh`, `rhhh`, `tdbf-hhh`).
    pub kind: String,
    /// How many snapshots were folded into this point.
    pub folded: usize,
    /// The merged state, ready to report or re-serialize.
    pub detector: RestoredDetector<H>,
}

impl<H: Hierarchy> MergedPoint<H>
where
    H::Item: FromStr,
    H::Prefix: FromStr,
{
    /// The merged [`WindowReport`] at a threshold. `index` is the
    /// caller's report-point ordinal; the window bounds are the ones
    /// the snapshots carried, so a folded report's geometry matches
    /// the in-process run's.
    pub fn report(&self, index: u64, threshold: Threshold) -> WindowReport<H::Prefix> {
        WindowReport {
            index,
            start: self.start,
            end: self.at,
            total: self.detector.total(),
            hhhs: self.detector.report(self.at, threshold),
        }
    }
}

/// Group the snapshots of N streams by `(at, kind)` and fold each
/// group into one restored detector.
///
/// Within a group, folding follows stream order (stream 0's snapshot
/// restores, stream 1..'s fold in) and then within-stream order — the
/// same deterministic order the in-process shard pools merge in, which
/// is what makes the distributed result reproduce the in-process one.
/// The returned points are sorted by `(at, kind)`. Streams may mix
/// wire formats freely (a v1 shard folds with a v2 shard).
///
/// Streams typically hold one snapshot per `(at, kind)` (one per
/// process per report point); extra snapshots fold in like any other,
/// matching their arrival order.
pub fn fold_streams<H>(
    hierarchy: &H,
    streams: &[Vec<WireSnapshot>],
) -> Result<Vec<MergedPoint<H>>, AggError>
where
    H: Hierarchy,
    H::Item: FromStr,
    H::Prefix: FromStr,
{
    let mut groups: BTreeMap<(Nanos, String), MergedPoint<H>> = BTreeMap::new();
    for stream in streams {
        for s in stream {
            let key = (s.at(), s.kind().to_owned());
            match groups.get_mut(&key) {
                Some(point) => {
                    point
                        .detector
                        .fold_wire(hierarchy, s)
                        .map_err(|error| AggError::Fold { at: s.at(), error })?;
                    point.folded += 1;
                }
                None => {
                    let detector = RestoredDetector::from_wire(hierarchy, s)
                        .map_err(|error| AggError::Fold { at: s.at(), error })?;
                    groups.insert(
                        key,
                        MergedPoint {
                            at: s.at(),
                            start: s.start(),
                            kind: s.kind().to_owned(),
                            folded: 1,
                            detector,
                        },
                    );
                }
            }
        }
    }
    Ok(groups.into_values().collect())
}

/// The **incremental** face of [`fold_streams`], built for a
/// long-running aggregator (`hhh-aggd`): push snapshots one at a time,
/// tagged with their stream id, as they arrive off the wire in any
/// interleaving — then [`refold`](Self::refold) recomputes exactly the
/// report points new snapshots touched.
///
/// The refold of a `(at, kind)` group always folds its snapshots in
/// **stream-id order** (stream 0 restores, 1.. fold in), then
/// within-stream arrival order — the same deterministic order
/// [`fold_streams`] uses, so a `FoldState` fed the identical snapshots
/// produces byte-identical merged points no matter when shards
/// connected, restarted, or which frame interleaving the sockets
/// happened to deliver. (This is why pushing refolds the group from
/// scratch instead of folding into the existing merged state: the
/// approximate detectors' merges are order-sensitive, and a
/// late-arriving shard 0 must still end up first.)
///
/// With a [`retain`](Self::with_retention) bound, only the most recent
/// N report points per kind are kept — the rolling state a daemon
/// serves queries from, with memory bounded no matter how long it
/// runs.
pub struct FoldState<H: Hierarchy> {
    /// Raw snapshots per report point, keyed by stream id — the
    /// refold's input, in canonical fold order.
    groups: BTreeMap<(Nanos, String), BTreeMap<u64, Vec<WireSnapshot>>>,
    merged: BTreeMap<(Nanos, String), MergedPoint<H>>,
    dirty: std::collections::BTreeSet<(Nanos, String)>,
    retain: Option<usize>,
}

impl<H: Hierarchy> Default for FoldState<H> {
    fn default() -> Self {
        Self::new()
    }
}

impl<H: Hierarchy> FoldState<H> {
    /// An empty fold with unbounded retention.
    pub fn new() -> Self {
        FoldState {
            groups: BTreeMap::new(),
            merged: BTreeMap::new(),
            dirty: std::collections::BTreeSet::new(),
            retain: None,
        }
    }

    /// Keep only the most recent `points` report points (distinct
    /// `at`s) **per kind**; older ones are dropped at the next
    /// [`refold`](Self::refold).
    pub fn with_retention(mut self, points: usize) -> Self {
        assert!(points > 0, "retention must keep at least one point");
        self.retain = Some(points);
        self
    }

    /// Buffer one snapshot from `stream`. Cheap (no folding happens
    /// here); the point it lands on refolds at the next
    /// [`refold`](Self::refold).
    pub fn push(&mut self, stream: u64, snapshot: WireSnapshot) {
        let key = (snapshot.at(), snapshot.kind().to_owned());
        self.groups.entry(key.clone()).or_default().entry(stream).or_default().push(snapshot);
        self.dirty.insert(key);
    }

    /// Report points currently held, sorted by `(at, kind)` — the
    /// order [`fold_streams`] returns. Points pushed since the last
    /// [`refold`](Self::refold) are not yet visible.
    pub fn points(&self) -> impl Iterator<Item = &MergedPoint<H>> {
        self.merged.values()
    }

    /// The most recent merged point of `kind`, if any.
    pub fn latest(&self, kind: &str) -> Option<&MergedPoint<H>> {
        self.merged.iter().rev().find(|((_, k), _)| k == kind).map(|(_, p)| p)
    }

    /// Report points buffered (refolded or not).
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Points whose snapshots changed since the last refold.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }
}

impl<H> FoldState<H>
where
    H: Hierarchy,
    H::Item: FromStr,
    H::Prefix: FromStr,
{
    /// Refold every dirty report point (in canonical stream order) and
    /// apply the retention bound. Returns how many points refolded.
    pub fn refold(&mut self, hierarchy: &H) -> Result<usize, AggError> {
        let refolded = self.dirty.len();
        for key in std::mem::take(&mut self.dirty) {
            let group = self.groups.get(&key).expect("dirty key has a group");
            let mut detector: Option<(RestoredDetector<H>, Nanos, usize)> = None;
            for snaps in group.values() {
                for s in snaps {
                    match &mut detector {
                        Some((d, _, folded)) => {
                            d.fold_wire(hierarchy, s)
                                .map_err(|error| AggError::Fold { at: s.at(), error })?;
                            *folded += 1;
                        }
                        None => {
                            let d = RestoredDetector::from_wire(hierarchy, s)
                                .map_err(|error| AggError::Fold { at: s.at(), error })?;
                            detector = Some((d, s.start(), 1));
                        }
                    }
                }
            }
            let (detector, start, folded) = detector.expect("dirty group is non-empty");
            let (at, kind) = key.clone();
            self.merged.insert(key, MergedPoint { at, start, kind, folded, detector });
        }
        if let Some(retain) = self.retain {
            // Count points per kind newest-first; everything past the
            // bound is dropped from both the merged view and the raw
            // snapshot buffer.
            let mut seen: BTreeMap<String, usize> = BTreeMap::new();
            let mut drop_keys = Vec::new();
            for (at, kind) in self.merged.keys().rev() {
                let n = seen.entry(kind.clone()).or_insert(0);
                *n += 1;
                if *n > retain {
                    drop_keys.push((*at, kind.clone()));
                }
            }
            for key in drop_keys {
                self.merged.remove(&key);
                self.groups.remove(&key);
            }
        }
        Ok(refolded)
    }
}

/// Render merged points as v1 JSON lines: per point, one `report` line
/// per threshold (series = threshold index, index = the point's
/// ordinal within its kind) and — when `emit_state` — one `state` line
/// with the folded snapshot (byte-identical to what the same merged
/// state would emit in-process, so the output can feed another
/// aggregation tier). For binary output use [`write_merged`].
///
/// Accepts any iterator of points — a [`fold_streams`] `Vec`, a
/// [`FoldState::points`] view, or a filtered subset — rendered in the
/// order given (ordinals count per kind from the iterator's start).
pub fn render_merged<'a, H, I>(points: I, thresholds: &[Threshold], emit_state: bool) -> Vec<String>
where
    H: Hierarchy + 'a,
    H::Item: FromStr,
    H::Prefix: FromStr,
    H::Prefix: Display,
    I: IntoIterator<Item = &'a MergedPoint<H>>,
{
    let mut lines = Vec::new();
    let mut ordinal: BTreeMap<String, u64> = BTreeMap::new();
    for point in points {
        let index = ordinal.entry(point.kind.clone()).or_insert(0);
        for (ti, t) in thresholds.iter().enumerate() {
            lines.push(render_report_line(ti, &point.report(*index, *t)));
        }
        if emit_state {
            let stamped = StampedSnapshot {
                at: point.at,
                start: point.start,
                snapshot: point.detector.snapshot(),
            };
            lines.push(stamped.to_json());
        }
        *index += 1;
    }
    lines
}

/// Write merged points to `out` in the chosen wire format — the
/// format-parameterized face of [`render_merged`]. JSON writes the
/// exact same lines; binary writes report frames and state frames, so
/// a binary aggregation tier feeds the next binary tier without ever
/// materializing JSON bodies on disk.
pub fn write_merged<'a, H, I, W: Write>(
    out: &mut W,
    points: I,
    thresholds: &[Threshold],
    emit_state: bool,
    format: WireFormat,
) -> Result<(), AggError>
where
    H: Hierarchy + 'a,
    H::Item: FromStr,
    H::Prefix: FromStr,
    H::Prefix: Display,
    I: IntoIterator<Item = &'a MergedPoint<H>>,
{
    let io = |e: std::io::Error| AggError::Io(e.to_string());
    if format == WireFormat::Json {
        // One definition of the JSON output: write exactly the lines
        // `render_merged` renders.
        for line in render_merged(points, thresholds, emit_state) {
            writeln!(out, "{line}").map_err(io)?;
        }
        return Ok(());
    }
    let mut ordinal: BTreeMap<String, u64> = BTreeMap::new();
    for point in points {
        let index = ordinal.entry(point.kind.clone()).or_insert(0);
        for (ti, t) in thresholds.iter().enumerate() {
            let report = point.report(*index, *t);
            let line = render_report_line(ti, &report);
            let frame = SnapshotFrame::report(&line, report.start, report.end, report.total);
            out.write_all(&frame.encode()).map_err(io)?;
        }
        if emit_state {
            // Native re-encode (`FrameEncode`): the folded detector
            // writes its v2 body directly — same bytes as the
            // snapshot()-then-transcode path, none of its JSON cost.
            let frame = point
                .detector
                .to_frame(point.start, point.at)
                .map_err(|error| AggError::Fold { at: point.at, error })?;
            out.write_all(&frame.encode()).map_err(io)?;
        }
        *index += 1;
    }
    Ok(())
}

/// Re-encode one whole snapshot stream into `to` — every record,
/// reports included — without folding anything. Transcoding v1 → v2 →
/// v1 (or v2 → v1 → v2) reproduces the original stream byte-for-byte
/// for any stream this workspace wrote, which the codec corpus pins.
///
/// `stream` tags decode errors with the stream's index.
pub fn transcode<R: BufRead, W: Write>(
    stream: usize,
    input: R,
    out: &mut W,
    to: WireFormat,
) -> Result<(), AggError> {
    let io = |e: std::io::Error| AggError::Io(e.to_string());
    let mut source = SnapshotSource::new(input);
    while let Some(record) = source.next_record() {
        match (record, to) {
            (StreamRecord::Report(line), WireFormat::Json) => {
                writeln!(out, "{line}").map_err(io)?;
            }
            (StreamRecord::Report(line), WireFormat::Binary) => {
                // Recover the frame header's geometry from the line
                // itself (reports are small; this is not the hot path).
                let (start, end, total) = report_line_geometry(&line).map_err(|error| {
                    AggError::Decode { stream, line: source.record_no(), error }
                })?;
                let frame = SnapshotFrame::report(&line, start, end, total);
                out.write_all(&frame.encode()).map_err(io)?;
            }
            (StreamRecord::State(s), WireFormat::Json) => {
                let stamped =
                    s.to_stamped().map_err(|error| AggError::Fold { at: s.at(), error })?;
                writeln!(out, "{}", stamped.to_json()).map_err(io)?;
            }
            (StreamRecord::State(s), WireFormat::Binary) => {
                let frame = match s {
                    WireSnapshot::Binary(frame) => frame,
                    WireSnapshot::Json(stamped) => stamped
                        .to_frame()
                        .map_err(|error| AggError::Fold { at: stamped.at, error })?,
                };
                out.write_all(&frame.encode()).map_err(io)?;
            }
        }
    }
    if let Some((line, error)) = source.error() {
        return Err(AggError::Decode { stream, line: *line, error: error.clone() });
    }
    Ok(())
}

/// Pull `(start, end, total)` out of a rendered report line, for
/// rebuilding a report frame's header during transcode.
fn report_line_geometry(line: &str) -> Result<(Nanos, Nanos, u64), SnapshotError> {
    use hhh_core::snapshot::json::Json;
    let v = Json::parse(line)?;
    let field = |name: &'static str| {
        v.get(name)
            .and_then(Json::as_u64)
            .ok_or(SnapshotError::Invalid { field: "report", what: "missing geometry field" })
    };
    Ok((
        Nanos::from_nanos(field("start_ns")?),
        Nanos::from_nanos(field("end_ns")?),
        field("total")?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_core::{ExactHhh, HhhDetector, MergeableDetector};
    use hhh_hierarchy::Ipv4Hierarchy;

    fn snap_line(at_secs: u64, items: &[(u32, u64)]) -> String {
        let mut d = ExactHhh::new(Ipv4Hierarchy::bytes());
        for &(item, w) in items {
            HhhDetector::<Ipv4Hierarchy>::observe(&mut d, item, w);
        }
        StampedSnapshot {
            at: Nanos::from_secs(at_secs),
            start: Nanos::from_secs(at_secs.saturating_sub(1)),
            snapshot: d.snapshot().expect("exact serializes"),
        }
        .to_json()
    }

    #[test]
    fn two_streams_fold_to_the_union() {
        let h = Ipv4Hierarchy::bytes();
        let a = format!(
            "{}\n{}\n",
            snap_line(1, &[(0x0A010101, 60)]),
            snap_line(2, &[(0x0A010101, 10)])
        );
        let b = format!(
            "{}\n{}\n",
            snap_line(1, &[(0x14000001, 40)]),
            snap_line(2, &[(0x14000001, 30)])
        );
        let streams =
            vec![read_stream(0, a.as_bytes()).unwrap(), read_stream(1, b.as_bytes()).unwrap()];
        let points = fold_streams(&h, &streams).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].at, Nanos::from_secs(1));
        assert_eq!(points[0].start, Nanos::ZERO, "window geometry survives the fold");
        assert_eq!(points[0].folded, 2);
        assert_eq!(points[0].detector.total(), 100);
        assert_eq!(points[1].detector.total(), 40);

        // The merged report sees both shards' traffic.
        let report = points[0].report(0, Threshold::percent(30.0));
        assert_eq!(report.total, 100);
        assert_eq!(report.start, Nanos::ZERO);
        assert_eq!(report.end, Nanos::from_secs(1));
        assert!(!report.hhhs.is_empty());
    }

    #[test]
    fn report_lines_and_state_lines_render() {
        let h = Ipv4Hierarchy::bytes();
        let a = snap_line(1, &[(0x0A010101, 100)]);
        let streams = vec![read_stream(0, a.as_bytes()).unwrap()];
        let points = fold_streams(&h, &streams).unwrap();
        let lines = render_merged(&points, &[Threshold::percent(10.0)], true);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"report\",\"series\":0,\"index\":0,"));
        assert!(lines[1].starts_with("{\"type\":\"state\",\"at_ns\":1000000000,\"start_ns\":0,"));
        // Tiering: the state line reads back as a valid input stream.
        let again = read_stream(0, lines.join("\n").as_bytes()).unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].total(), 100);
    }

    #[test]
    fn binary_output_feeds_and_folds_like_json() {
        let h = Ipv4Hierarchy::bytes();
        let a = snap_line(1, &[(0x0A010101, 100)]);
        let streams = vec![read_stream(0, a.as_bytes()).unwrap()];
        let points = fold_streams(&h, &streams).unwrap();

        let mut bin = Vec::new();
        write_merged(&mut bin, &points, &[Threshold::percent(10.0)], true, WireFormat::Binary)
            .unwrap();
        // The binary tier output reads back as a valid input stream…
        let again = read_stream(0, bin.as_slice()).unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].kind(), "exact");
        // …and folds to the same state the JSON tier would emit.
        let tier2 = fold_streams(&h, &[again]).unwrap();
        assert_eq!(tier2[0].detector.snapshot().to_json(), points[0].detector.snapshot().to_json());
    }

    #[test]
    fn transcode_roundtrips_byte_identically() {
        let json_stream = format!(
            "{}\n{}\n",
            "{\"type\":\"report\",\"series\":0,\"index\":0,\"start_ns\":0,\"end_ns\":1000000000,\
             \"total\":100,\"hhhs\":[]}",
            snap_line(1, &[(0x0A010101, 100)])
        );
        let mut v2 = Vec::new();
        transcode(0, json_stream.as_bytes(), &mut v2, WireFormat::Binary).unwrap();
        assert_ne!(v2, json_stream.as_bytes());
        let mut back = Vec::new();
        transcode(0, v2.as_slice(), &mut back, WireFormat::Json).unwrap();
        assert_eq!(String::from_utf8(back).unwrap(), json_stream, "v1 → v2 → v1 is lossless");

        // And the other direction: v2 → v1 → v2.
        let mut v2_again = Vec::new();
        transcode(0, v2.as_slice(), &mut v2_again, WireFormat::Binary).unwrap();
        assert_eq!(v2_again, v2, "v2 re-encode is stable");
    }

    #[test]
    fn garbage_is_a_decode_error_with_position() {
        let err = read_stream(3, "{\"type\":\"report\"}\nnope\n".as_bytes()).unwrap_err();
        match err {
            AggError::Decode { stream, line, .. } => {
                assert_eq!(stream, 3);
                assert_eq!(line, 2);
            }
            other => panic!("expected Decode, got {other:?}"),
        }
    }

    #[test]
    fn fold_state_matches_fold_streams_under_any_interleaving() {
        let h = Ipv4Hierarchy::bytes();
        // Three shards × two report points.
        let shard = |base: u32| {
            format!(
                "{}\n{}\n",
                snap_line(1, &[(base, 10), (base + 1, 5)]),
                snap_line(2, &[(base, 20)])
            )
        };
        let streams: Vec<Vec<WireSnapshot>> = (0..3)
            .map(|i| read_stream(i, shard(0x0A010000 + i as u32).as_bytes()).unwrap())
            .collect();
        let batch = fold_streams(&h, &streams).unwrap();
        let batch_lines = render_merged(&batch, &[Threshold::percent(10.0)], true);

        // Feed the same snapshots incrementally, deliberately out of
        // stream order (shard 2 first) and with shard 0's stream
        // replayed twice up to its first snapshot — as a restarted
        // shard would after the hub deduped… here we push only what
        // the hub would deliver (each position once).
        let mut state: FoldState<Ipv4Hierarchy> = FoldState::new();
        for (stream, si) in [(2u64, 0usize), (0, 0), (1, 0), (1, 1), (0, 1), (2, 1)] {
            state.push(stream, streams[stream as usize][si].clone());
        }
        assert_eq!(state.dirty_count(), 2);
        assert_eq!(state.refold(&h).unwrap(), 2);
        assert_eq!(state.dirty_count(), 0);
        let inc_lines = render_merged(state.points(), &[Threshold::percent(10.0)], true).join("\n");
        assert_eq!(inc_lines, batch_lines.join("\n"), "incremental fold is byte-identical");

        // latest() sees the newest point; a later push re-dirties only
        // its own point.
        assert_eq!(state.latest("exact").unwrap().at, Nanos::from_secs(2));
        state.push(0, read_stream(0, snap_line(3, &[(9, 1)]).as_bytes()).unwrap()[0].clone());
        assert_eq!(state.dirty_count(), 1);
        state.refold(&h).unwrap();
        assert_eq!(state.group_count(), 3);
    }

    #[test]
    fn fold_state_retention_drops_the_oldest_points_per_kind() {
        let h = Ipv4Hierarchy::bytes();
        let mut state: FoldState<Ipv4Hierarchy> = FoldState::new().with_retention(2);
        for at in 1..=5u64 {
            let snaps = read_stream(0, snap_line(at, &[(7, at)]).as_bytes()).unwrap();
            state.push(0, snaps[0].clone());
            state.refold(&h).unwrap();
        }
        let ats: Vec<Nanos> = state.points().map(|p| p.at).collect();
        assert_eq!(ats, vec![Nanos::from_secs(4), Nanos::from_secs(5)]);
        assert_eq!(state.group_count(), 2, "raw snapshot buffer is bounded too");
    }

    #[test]
    fn kind_mismatch_at_one_point_is_a_fold_error() {
        let h = Ipv4Hierarchy::bytes();
        let exact = snap_line(1, &[(1, 10)]);
        // Same report point, different kind.
        let ss = "{\"type\":\"state\",\"at_ns\":1000000000,\"snapshot\":{\"v\":1,\"kind\":\
                  \"ss-hhh\",\"total\":10,\"state\":{\"capacity\":8,\"levels\":[{\"total\":10,\
                  \"entries\":[[\"0.0.0.1/32\",10,0]]},{\"total\":10,\"entries\":\
                  [[\"0.0.0.0/24\",10,0]]},{\"total\":10,\"entries\":[[\"0.0.0.0/16\",10,0]]},\
                  {\"total\":10,\"entries\":[[\"0.0.0.0/8\",10,0]]},{\"total\":10,\"entries\":\
                  [[\"0.0.0.0/0\",10,0]]}]}}}";
        let streams =
            vec![read_stream(0, exact.as_bytes()).unwrap(), read_stream(1, ss.as_bytes()).unwrap()];
        // Different kinds at one point are *separate groups*, not an
        // error: an operator may legitimately run two detector kinds
        // side by side.
        let points = fold_streams(&h, &streams).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].kind, "exact");
        assert_eq!(points[1].kind, "ss-hhh");
    }
}
