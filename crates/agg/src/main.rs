//! `hhh-agg` — fold detector snapshot streams from N processes into
//! merged HHH reports, or transcode streams between wire formats.
//!
//! ```text
//! hhh-agg [--hierarchy ipv4-bytes|ipv4-bits] [--threshold PCT]...
//!         [--emit-state] [--format json|binary] [--transcode]
//!         [--listen ADDR --expect K [--listen-timeout SECS]]
//!         [FILE|- ...]
//! ```
//!
//! Each FILE is one snapshot stream (one process's `SnapshotSink`
//! output, v1 JSONL or v2 binary frames — sniffed per stream); `-` or
//! no files reads a single stream from stdin. Merged report records
//! (and, with `--emit-state`, merged state records that can feed
//! another aggregation tier) go to stdout in the `--format` encoding
//! (default `json`).
//!
//! With `--listen ADDR`, the streams arrive **over TCP** instead of
//! files: the aggregator accepts shard connections (each opens with a
//! hello frame naming its shard id) until `--expect K` streams have
//! completed, folds them in shard-id order, and emits the merged
//! output — byte-identical to folding the same shards' stream files.
//! Three time limits guard the wait (any may be combined; first to
//! fire wins): `--listen-timeout` is the **whole-fold deadline** in
//! seconds, counted from startup regardless of progress;
//! `--accept-idle` gives up when fewer connections than expected
//! streams have ever arrived and no new one shows up for that many
//! seconds (a shard never started); `--read-idle` gives up when no
//! frame arrives on any connection for that many seconds (a shard
//! connected, then wedged). The idle limits reset on progress, so
//! slow-but-live topologies don't need a worst-case whole-fold budget.
//!
//! `--transcode` skips folding entirely: every input stream is
//! re-encoded record-for-record into `--format` on stdout — v1 → v2 →
//! v1 reproduces the original bytes.

use hhh_agg::{
    collect_socket_streams, fold_streams, read_stream, transcode, write_merged, AggError,
};
use hhh_core::{Threshold, WireFormat};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_window::TcpFrameListener;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: hhh-agg [--hierarchy ipv4-bytes|ipv4-bits] [--threshold PCT]... \
                     [--emit-state] [--format json|binary] [--transcode]\n\
                     \x20              [--listen ADDR --expect K [--listen-timeout SECS] \
                     [--accept-idle SECS] [--read-idle SECS]] [FILE|- ...]\n\
                     \n\
                     Folds N snapshot streams (written by hhh-window's SnapshotSink in either\n\
                     wire format, or by hhh-agg --emit-state itself) into merged HHH reports\n\
                     on stdout; --format picks the output encoding. With --transcode, streams\n\
                     are re-encoded into --format instead of folded. With --listen, streams\n\
                     arrive as v2 frames over TCP from --expect shard connections instead of\n\
                     files, and fold in shard-id order (byte-identical to the file fold).\n\
                     Defaults: --hierarchy ipv4-bytes, --threshold 1, --format json, stdin as\n\
                     the only stream.";

struct Args {
    hierarchy: Ipv4Hierarchy,
    thresholds: Vec<Threshold>,
    emit_state: bool,
    format: WireFormat,
    transcode: bool,
    listen: Option<String>,
    expect: Option<usize>,
    listen_timeout: Option<Duration>,
    accept_idle: Option<Duration>,
    read_idle: Option<Duration>,
    inputs: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        hierarchy: Ipv4Hierarchy::bytes(),
        thresholds: Vec::new(),
        emit_state: false,
        format: WireFormat::Json,
        transcode: false,
        listen: None,
        expect: None,
        listen_timeout: None,
        accept_idle: None,
        read_idle: None,
        inputs: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--hierarchy" => {
                let v = argv.next().ok_or("--hierarchy needs a value")?;
                args.hierarchy = match v.as_str() {
                    "ipv4-bytes" => Ipv4Hierarchy::bytes(),
                    "ipv4-bits" => Ipv4Hierarchy::bits(),
                    other => return Err(format!("unknown hierarchy `{other}`")),
                };
            }
            "--threshold" => {
                let v = argv.next().ok_or("--threshold needs a value")?;
                let pct: f64 =
                    v.parse().map_err(|_| format!("--threshold `{v}` is not a number"))?;
                if !(pct > 0.0 && pct <= 100.0) {
                    return Err(format!("--threshold {pct} out of (0, 100]"));
                }
                args.thresholds.push(Threshold::percent(pct));
            }
            "--emit-state" => args.emit_state = true,
            "--format" => {
                let v = argv.next().ok_or("--format needs a value")?;
                args.format =
                    WireFormat::parse(&v).ok_or(format!("unknown format `{v}` (json|binary)"))?;
            }
            "--transcode" => args.transcode = true,
            "--listen" => {
                args.listen = Some(argv.next().ok_or("--listen needs an address")?);
            }
            "--expect" => {
                let v = argv.next().ok_or("--expect needs a stream count")?;
                let n: usize = v.parse().map_err(|_| format!("--expect `{v}` is not a count"))?;
                if n == 0 {
                    return Err("--expect must be at least 1".to_string());
                }
                args.expect = Some(n);
            }
            "--listen-timeout" => {
                let v = argv.next().ok_or("--listen-timeout needs seconds")?;
                let secs: u64 =
                    v.parse().map_err(|_| format!("--listen-timeout `{v}` is not seconds"))?;
                args.listen_timeout = Some(Duration::from_secs(secs));
            }
            "--accept-idle" => {
                let v = argv.next().ok_or("--accept-idle needs seconds")?;
                let secs: u64 =
                    v.parse().map_err(|_| format!("--accept-idle `{v}` is not seconds"))?;
                args.accept_idle = Some(Duration::from_secs(secs));
            }
            "--read-idle" => {
                let v = argv.next().ok_or("--read-idle needs seconds")?;
                let secs: u64 =
                    v.parse().map_err(|_| format!("--read-idle `{v}` is not seconds"))?;
                args.read_idle = Some(Duration::from_secs(secs));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            file => args.inputs.push(file.to_string()),
        }
    }
    if args.thresholds.is_empty() {
        args.thresholds.push(Threshold::percent(1.0));
    }
    if args.listen.is_some() {
        if !args.inputs.is_empty() {
            return Err("--listen replaces FILE inputs; list one or the other".to_string());
        }
        if args.transcode {
            return Err("--listen cannot be combined with --transcode".to_string());
        }
        if args.expect.is_none() {
            return Err("--listen needs --expect K (the shard stream count)".to_string());
        }
    } else if args.expect.is_some()
        || args.listen_timeout.is_some()
        || args.accept_idle.is_some()
        || args.read_idle.is_some()
    {
        return Err("--expect/--listen-timeout/--accept-idle/--read-idle only apply with --listen"
            .to_string());
    }
    if args.inputs.is_empty() {
        args.inputs.push("-".to_string());
    }
    if args.inputs.iter().filter(|p| p.as_str() == "-").count() > 1 {
        // A second `-` would read an already-drained stdin and
        // silently aggregate fewer streams than the user listed.
        return Err("stdin (`-`) may be listed only once".to_string());
    }
    Ok(args)
}

fn open(path: &str) -> Result<Box<dyn BufRead>, AggError> {
    if path == "-" {
        Ok(Box::new(BufReader::new(io::stdin())))
    } else {
        let f = File::open(path).map_err(|e| AggError::Io(format!("{path}: {e}")))?;
        Ok(Box::new(BufReader::new(f)))
    }
}

fn run(args: &Args) -> Result<(), AggError> {
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    if let Some(addr) = &args.listen {
        let expect = args.expect.expect("validated in parse_args");
        // Socket failures stay typed end to end (AggError::Transport →
        // TransportError → io::Error via source()), bind included.
        let typed =
            |op| move |e| AggError::Transport(hhh_window::TransportError::Io { op, source: e });
        let mut listener = TcpFrameListener::bind(addr).map_err(typed("bind"))?;
        if let Some(timeout) = args.listen_timeout {
            listener = listener.with_timeout(timeout);
        }
        if let Some(idle) = args.accept_idle {
            listener = listener.with_accept_idle(idle);
        }
        if let Some(idle) = args.read_idle {
            listener = listener.with_read_idle(idle);
        }
        eprintln!(
            "hhh-agg: listening on {} for {expect} shard stream(s)…",
            listener.local_addr().map_err(typed("bind"))?
        );
        let streams = collect_socket_streams(listener, expect)?;
        let points = fold_streams(&args.hierarchy, &streams)?;
        write_merged(&mut out, &points, &args.thresholds, args.emit_state, args.format)?;
    } else if args.transcode {
        for (i, path) in args.inputs.iter().enumerate() {
            transcode(i, open(path)?, &mut out, args.format)?;
        }
    } else {
        let mut streams = Vec::with_capacity(args.inputs.len());
        for (i, path) in args.inputs.iter().enumerate() {
            streams.push(read_stream(i, open(path)?)?);
        }
        let points = fold_streams(&args.hierarchy, &streams)?;
        write_merged(&mut out, &points, &args.thresholds, args.emit_state, args.format)?;
    }
    out.flush().map_err(|e| AggError::Io(e.to_string()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("hhh-agg: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hhh-agg: {e}");
            ExitCode::FAILURE
        }
    }
}
