//! `hhh-agg` — fold detector snapshot streams from N processes into
//! merged HHH reports, or transcode streams between wire formats.
//!
//! ```text
//! hhh-agg [--hierarchy ipv4-bytes|ipv4-bits] [--threshold PCT]...
//!         [--emit-state] [--format json|binary] [--transcode]
//!         [FILE|- ...]
//! ```
//!
//! Each FILE is one snapshot stream (one process's `SnapshotSink`
//! output, v1 JSONL or v2 binary frames — sniffed per stream); `-` or
//! no files reads a single stream from stdin. Merged report records
//! (and, with `--emit-state`, merged state records that can feed
//! another aggregation tier) go to stdout in the `--format` encoding
//! (default `json`).
//!
//! `--transcode` skips folding entirely: every input stream is
//! re-encoded record-for-record into `--format` on stdout — v1 → v2 →
//! v1 reproduces the original bytes.

use hhh_agg::{fold_streams, read_stream, transcode, write_merged, AggError};
use hhh_core::{Threshold, WireFormat};
use hhh_hierarchy::Ipv4Hierarchy;
use std::fs::File;
use std::io::{self, BufRead, BufReader, Write};
use std::process::ExitCode;

const USAGE: &str = "usage: hhh-agg [--hierarchy ipv4-bytes|ipv4-bits] [--threshold PCT]... \
                     [--emit-state] [--format json|binary] [--transcode] [FILE|- ...]\n\
                     \n\
                     Folds N snapshot streams (written by hhh-window's SnapshotSink in either\n\
                     wire format, or by hhh-agg --emit-state itself) into merged HHH reports\n\
                     on stdout; --format picks the output encoding. With --transcode, streams\n\
                     are re-encoded into --format instead of folded.\n\
                     Defaults: --hierarchy ipv4-bytes, --threshold 1, --format json, stdin as\n\
                     the only stream.";

struct Args {
    hierarchy: Ipv4Hierarchy,
    thresholds: Vec<Threshold>,
    emit_state: bool,
    format: WireFormat,
    transcode: bool,
    inputs: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        hierarchy: Ipv4Hierarchy::bytes(),
        thresholds: Vec::new(),
        emit_state: false,
        format: WireFormat::Json,
        transcode: false,
        inputs: Vec::new(),
    };
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--hierarchy" => {
                let v = argv.next().ok_or("--hierarchy needs a value")?;
                args.hierarchy = match v.as_str() {
                    "ipv4-bytes" => Ipv4Hierarchy::bytes(),
                    "ipv4-bits" => Ipv4Hierarchy::bits(),
                    other => return Err(format!("unknown hierarchy `{other}`")),
                };
            }
            "--threshold" => {
                let v = argv.next().ok_or("--threshold needs a value")?;
                let pct: f64 =
                    v.parse().map_err(|_| format!("--threshold `{v}` is not a number"))?;
                if !(pct > 0.0 && pct <= 100.0) {
                    return Err(format!("--threshold {pct} out of (0, 100]"));
                }
                args.thresholds.push(Threshold::percent(pct));
            }
            "--emit-state" => args.emit_state = true,
            "--format" => {
                let v = argv.next().ok_or("--format needs a value")?;
                args.format =
                    WireFormat::parse(&v).ok_or(format!("unknown format `{v}` (json|binary)"))?;
            }
            "--transcode" => args.transcode = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            file => args.inputs.push(file.to_string()),
        }
    }
    if args.thresholds.is_empty() {
        args.thresholds.push(Threshold::percent(1.0));
    }
    if args.inputs.is_empty() {
        args.inputs.push("-".to_string());
    }
    if args.inputs.iter().filter(|p| p.as_str() == "-").count() > 1 {
        // A second `-` would read an already-drained stdin and
        // silently aggregate fewer streams than the user listed.
        return Err("stdin (`-`) may be listed only once".to_string());
    }
    Ok(args)
}

fn open(path: &str) -> Result<Box<dyn BufRead>, AggError> {
    if path == "-" {
        Ok(Box::new(BufReader::new(io::stdin())))
    } else {
        let f = File::open(path).map_err(|e| AggError::Io(format!("{path}: {e}")))?;
        Ok(Box::new(BufReader::new(f)))
    }
}

fn run(args: &Args) -> Result<(), AggError> {
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    if args.transcode {
        for (i, path) in args.inputs.iter().enumerate() {
            transcode(i, open(path)?, &mut out, args.format)?;
        }
    } else {
        let mut streams = Vec::with_capacity(args.inputs.len());
        for (i, path) in args.inputs.iter().enumerate() {
            streams.push(read_stream(i, open(path)?)?);
        }
        let points = fold_streams(&args.hierarchy, &streams)?;
        write_merged(&mut out, &points, &args.thresholds, args.emit_state, args.format)?;
    }
    out.flush().map_err(|e| AggError::Io(e.to_string()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("hhh-agg: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("hhh-agg: {e}");
            ExitCode::FAILURE
        }
    }
}
