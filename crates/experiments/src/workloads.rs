//! Workload characterization: the table describing the "four days" of
//! synthetic traffic (the stand-in for the paper's CAIDA trace table)
//! plus the DDoS and flash-crowd scenarios.

use crate::Scale;
use hhh_analysis::{fmt_f, Table};
use hhh_trace::{scenarios, TraceGenerator, TraceStats};

/// Per-scenario statistics.
#[derive(Clone, Debug)]
pub struct WorkloadRow {
    /// Scenario name.
    pub name: String,
    /// Its statistics.
    pub stats: TraceStats,
}

/// Characterize every workload at the given scale.
pub fn run(scale: Scale) -> Vec<WorkloadRow> {
    let mut rows = Vec::new();
    let dur = scale.day_duration();
    for day in 0..4 {
        let model = scenarios::day_trace(day, dur);
        let stats = TraceStats::from_stream(TraceGenerator::new(model, scenarios::day_seed(day)))
            .expect("day traces are non-empty");
        rows.push(WorkloadRow { name: format!("day-{day}"), stats });
    }
    let stats = TraceStats::from_stream(scenarios::ddos(scale.compare_duration(), 0xD0))
        .expect("non-empty");
    rows.push(WorkloadRow { name: "ddos".into(), stats });
    let stats = TraceStats::from_stream(scenarios::flash_crowd(scale.compare_duration(), 0xF0))
        .expect("non-empty");
    rows.push(WorkloadRow { name: "flash-crowd".into(), stats });
    rows
}

/// Render the characterization table.
pub fn table(rows: &[WorkloadRow]) -> String {
    let mut t = Table::new(vec![
        "trace",
        "packets",
        "MB",
        "duration",
        "sources",
        "mean pps",
        "mean Mbit/s",
        "mean pkt B",
        "top src share",
    ]);
    for r in rows {
        let s = &r.stats;
        t.row(vec![
            r.name.clone(),
            s.packets.to_string(),
            fmt_f(s.bytes as f64 / 1e6, 1),
            format!("{}", s.duration()),
            s.distinct_sources.to_string(),
            fmt_f(s.mean_pps(), 0),
            fmt_f(s.mean_bps() / 1e6, 1),
            fmt_f(s.mean_packet_size(), 0),
            fmt_f(s.top_source_share() * 100.0, 1),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterizes_all_scenarios() {
        let rows = run(Scale::Smoke);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.stats.packets > 1000, "{} too thin", r.name);
            assert!(r.stats.distinct_sources > 50, "{} has no source diversity", r.name);
        }
        // The four days are genuinely different traces.
        let p0 = rows[0].stats.packets;
        assert!(rows[1..4].iter().any(|r| r.stats.packets != p0));
        let out = table(&rows);
        assert!(out.contains("day-0") && out.contains("ddos") && out.contains("flash-crowd"));
    }
}
