//! Experiment scales: the same experiments at three sizes — plus the
//! scaling experiment itself, a shard-count sweep over the batched,
//! mergeable ingestion pipeline (`hhh-window::sharded`).

use hhh_analysis::{fmt_f, jaccard, Table};
use hhh_core::{
    ExactHhh, HhhDetector, MementoHhh, MergeableDetector, Rhhh, SpaceSavingHhh, Threshold,
};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::{PacketRecord, TimeSpan};
use hhh_trace::{scenarios, TraceGenerator};
use hhh_window::{
    source, Disjoint, Pipeline, ShardedDisjoint, ShardedSliding, SlidingExact, WindowReport,
    DEFAULT_BATCH,
};
use std::time::Instant;

/// How big to run an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long traces: CI and unit-test sized. Shapes visible,
    /// percentages noisy.
    Smoke,
    /// Minutes-long traces: the default for interactive runs.
    Quick,
    /// The paper's durations: 1 h day traces, 20 min micro-variation
    /// trace. Expect tens of minutes of compute.
    Paper,
}

impl Scale {
    /// Parse from a CLI argument (`smoke` / `quick` / `paper`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Read from argv (first positional arg), default `Quick`.
    pub fn from_args() -> Scale {
        std::env::args().nth(1).and_then(|a| Scale::parse(&a)).unwrap_or(Scale::Quick)
    }

    /// Duration of each of the four "day" traces (paper: 1 hour).
    pub fn day_duration(&self) -> TimeSpan {
        match self {
            Scale::Smoke => TimeSpan::from_secs(90),
            Scale::Quick => TimeSpan::from_secs(420),
            Scale::Paper => TimeSpan::from_secs(3600),
        }
    }

    /// Duration of the micro-variation trace (paper: 20 minutes).
    pub fn microvar_duration(&self) -> TimeSpan {
        match self {
            Scale::Smoke => TimeSpan::from_secs(120),
            Scale::Quick => TimeSpan::from_secs(400),
            Scale::Paper => TimeSpan::from_secs(1200),
        }
    }

    /// Duration of the detector-comparison trace.
    pub fn compare_duration(&self) -> TimeSpan {
        match self {
            Scale::Smoke => TimeSpan::from_secs(60),
            Scale::Quick => TimeSpan::from_secs(180),
            Scale::Paper => TimeSpan::from_secs(900),
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

/// Shard counts the sweep visits.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One measured configuration of the shard sweep.
#[derive(Clone, Debug)]
pub struct ShardSweepRow {
    /// Detector under test (`exact`, `ss-hhh`, `rhhh`).
    pub detector: &'static str,
    /// Ingestion mode: `observe` (per-packet), `batch` (single
    /// detector fed through `observe_batch`), `shard/K` (sharded
    /// pipeline, iterator source), or `chan/K` (sharded pipeline fed
    /// through the bounded channel source from a producer thread).
    pub mode: String,
    /// Shards used (1 for the single-detector modes).
    pub shards: usize,
    /// Packets processed.
    pub packets: u64,
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
    /// Throughput in packets per second.
    pub pkts_per_sec: f64,
    /// Mean per-window Jaccard similarity of the HHH sets against the
    /// per-packet single-detector reference (1.0 = identical).
    pub jaccard_vs_reference: f64,
}

/// Results of [`shard_sweep`].
#[derive(Clone, Debug)]
pub struct ShardSweepResults {
    /// One row per (detector, mode).
    pub rows: Vec<ShardSweepRow>,
    /// Scale the sweep ran at.
    pub scale: Scale,
}

impl ShardSweepResults {
    /// The row for a detector and mode label, if measured.
    pub fn row(&self, detector: &str, mode: &str) -> Option<&ShardSweepRow> {
        self.rows.iter().find(|r| r.detector == detector && r.mode == mode)
    }

    /// Render as an aligned text table.
    pub fn table(&self) -> String {
        let mut t = Table::new(vec![
            "detector", "mode", "shards", "packets", "seconds", "pkts/s", "jaccard",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.detector.to_string(),
                r.mode.clone(),
                r.shards.to_string(),
                r.packets.to_string(),
                fmt_f(r.seconds, 3),
                format!("{:.0}", r.pkts_per_sec),
                fmt_f(r.jaccard_vs_reference, 4),
            ]);
        }
        t.render()
    }

    /// Render as JSON lines (one object per row), for baseline files
    /// like `BENCH_pr1.json`.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "{{\"experiment\": \"shard_sweep\", \"scale\": \"{}\", \"detector\": \"{}\", \
                 \"mode\": \"{}\", \"shards\": {}, \"packets\": {}, \"seconds\": {:.6}, \
                 \"pkts_per_sec\": {:.1}, \"jaccard_vs_reference\": {:.6}}}\n",
                self.scale.label(),
                r.detector,
                r.mode,
                r.shards,
                r.packets,
                r.seconds,
                r.pkts_per_sec,
                r.jaccard_vs_reference,
            ));
        }
        out
    }
}

/// Mean per-window Jaccard similarity between two disjoint-window
/// report series (1.0 when every window's HHH set matches).
fn mean_jaccard<P: Ord + Copy>(a: &[WindowReport<P>], b: &[WindowReport<P>]) -> f64 {
    assert_eq!(a.len(), b.len(), "window counts differ");
    if a.is_empty() {
        return 1.0;
    }
    let sum: f64 = a.iter().zip(b).map(|(x, y)| jaccard(&x.prefix_set(), &y.prefix_set())).sum();
    sum / a.len() as f64
}

/// E-scale — the shard-count sweep behind this workspace's scaling
/// claims. For each detector (`exact`, `ss-hhh`, `rhhh`) it measures,
/// on one generated day trace:
///
/// * `observe` — the per-packet path (the [`Disjoint`] engine over a
///   single detector);
/// * `batch` — the same single detector fed via `observe_batch`
///   (K = 1 sharded pipeline, which batches but cannot parallelize);
/// * `shard/K` for K ∈ {1, 2, 4, 8} — the full [`ShardedDisjoint`]
///   pipeline: hash-partitioned worker threads merged at window
///   boundaries, iterator source;
/// * `chan/K` for K ∈ {1, 2, 4, 8} — the same sharded pipeline fed
///   through the bounded channel source
///   ([`source::bounded`]) from a producer thread, measuring the
///   channel hand-off overhead against the iterator source.
///
/// Alongside throughput it reports HHH-set fidelity versus the
/// per-packet reference: exactly 1.0 for `exact` at any K (merge is
/// lossless), and within merge-error tolerance for the approximate
/// detectors.
pub fn shard_sweep(scale: Scale) -> ShardSweepResults {
    let horizon = scale.compare_duration();
    let window = TimeSpan::from_secs(5);
    let thresholds = [Threshold::percent(1.0)];
    let h = Ipv4Hierarchy::bytes();
    let model = scenarios::day_trace(0, horizon);
    let packets: Vec<PacketRecord> = TraceGenerator::new(model, scenarios::day_seed(0)).collect();
    let n = packets.len() as u64;
    let mut rows = Vec::new();

    // One closure per detector family, so each family controls its own
    // construction (seeds per shard for RHHH) without dynamic dispatch
    // in the hot loop.
    run_family("exact", &packets, horizon, window, &thresholds, n, &mut rows, |_shard| {
        ExactHhh::new(h)
    });
    run_family("ss-hhh", &packets, horizon, window, &thresholds, n, &mut rows, |_shard| {
        SpaceSavingHhh::new(h, 512)
    });
    run_family("rhhh", &packets, horizon, window, &thresholds, n, &mut rows, |shard| {
        Rhhh::new(h, 512, 0x5EED_0000 + shard as u64)
    });

    ShardSweepResults { rows, scale }
}

#[allow(clippy::too_many_arguments)] // internal helper; the arguments are the sweep's fixed context
fn run_family<D>(
    name: &'static str,
    packets: &[PacketRecord],
    horizon: TimeSpan,
    window: TimeSpan,
    thresholds: &[Threshold],
    n: u64,
    rows: &mut Vec<ShardSweepRow>,
    make: impl Fn(usize) -> D,
) where
    D: HhhDetector<Ipv4Hierarchy> + MergeableDetector + Clone + Send,
{
    // Reference: the per-packet path through the Disjoint engine.
    let mut reference_det = make(0);
    let start = Instant::now();
    let reference = Pipeline::new(packets.iter().copied())
        .engine(Disjoint::new(&mut reference_det, horizon, window, thresholds, |p| p.src))
        .collect()
        .run();
    let secs = start.elapsed().as_secs_f64();
    rows.push(ShardSweepRow {
        detector: name,
        mode: "observe".into(),
        shards: 1,
        packets: n,
        seconds: secs,
        pkts_per_sec: n as f64 / secs,
        jaccard_vs_reference: 1.0,
    });

    // Batched single detector, then the sharded pipeline.
    for &k in &SHARD_COUNTS {
        let detectors: Vec<D> = (0..k).map(&make).collect();
        let start = Instant::now();
        let sharded = Pipeline::new(packets.iter().copied())
            .engine(ShardedDisjoint::new(detectors, horizon, window, thresholds, |p| p.src))
            .collect()
            .run();
        let secs = start.elapsed().as_secs_f64();
        let mode = if k == 1 { "batch".to_string() } else { format!("shard/{k}") };
        rows.push(ShardSweepRow {
            detector: name,
            mode,
            shards: k,
            packets: n,
            seconds: secs,
            pkts_per_sec: n as f64 / secs,
            jaccard_vs_reference: mean_jaccard(&reference[0], &sharded[0]),
        });
    }

    // The sharded pipeline again, now fed through the bounded channel
    // source from a producer thread — the async-ingest hand-off
    // measured against the iterator source above.
    for &k in &SHARD_COUNTS {
        let detectors: Vec<D> = (0..k).map(&make).collect();
        let start = Instant::now();
        let (mut feeder, channel_source) = source::bounded(8, DEFAULT_BATCH);
        let sharded = std::thread::scope(|scope| {
            scope.spawn(move || {
                feeder.send_batch(packets);
            });
            Pipeline::new(channel_source)
                .engine(ShardedDisjoint::new(detectors, horizon, window, thresholds, |p| p.src))
                .collect()
                .run()
        });
        let secs = start.elapsed().as_secs_f64();
        rows.push(ShardSweepRow {
            detector: name,
            mode: format!("chan/{k}"),
            shards: k,
            packets: n,
            seconds: secs,
            pkts_per_sec: n as f64 / secs,
            jaccard_vs_reference: mean_jaccard(&reference[0], &sharded[0]),
        });
    }
}

/// Results of [`sliding_scoreboard`] — same row shape as the shard
/// sweep, different experiment tag in the JSON lines.
#[derive(Clone, Debug)]
pub struct SlidingScoreboardResults {
    /// One row per (detector kind, sliding mode).
    pub rows: Vec<ShardSweepRow>,
    /// Scale the scoreboard ran at.
    pub scale: Scale,
}

impl SlidingScoreboardResults {
    /// The row for a detector and mode label, if measured.
    pub fn row(&self, detector: &str, mode: &str) -> Option<&ShardSweepRow> {
        self.rows.iter().find(|r| r.detector == detector && r.mode == mode)
    }

    /// Render as an aligned text table.
    pub fn table(&self) -> String {
        let mut t = Table::new(vec![
            "detector", "mode", "shards", "packets", "seconds", "pkts/s", "jaccard",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.detector.to_string(),
                r.mode.clone(),
                r.shards.to_string(),
                r.packets.to_string(),
                fmt_f(r.seconds, 3),
                format!("{:.0}", r.pkts_per_sec),
                fmt_f(r.jaccard_vs_reference, 4),
            ]);
        }
        t.render()
    }

    /// Render as JSON lines (one object per row), the format committed
    /// as `BENCH_pr6.json`.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "{{\"experiment\": \"sliding_scoreboard\", \"scale\": \"{}\", \
                 \"detector\": \"{}\", \"mode\": \"{}\", \"shards\": {}, \"packets\": {}, \
                 \"seconds\": {:.6}, \"pkts_per_sec\": {:.1}, \
                 \"jaccard_vs_reference\": {:.6}}}\n",
                self.scale.label(),
                r.detector,
                r.mode,
                r.shards,
                r.packets,
                r.seconds,
                r.pkts_per_sec,
                r.jaccard_vs_reference,
            ));
        }
        out
    }
}

/// Per-detector-kind pkts/s scoreboard on the **sliding-window path**:
/// window 5 s, step 100 ms (50 epochs per window), on a
/// high-cardinality trace (10 000 sources — so per-epoch state is a
/// small fraction of per-window state and per-position merge costs are
/// visible, unlike the 2 500-source day trace where every epoch
/// saturates the key population). It measures:
///
/// * `sliding-exact` — the single-threaded rolling-count engine
///   ([`SlidingExact`]), also the fidelity reference;
/// * `shard/1` for the exact kind — [`ShardedSliding`] at one shard
///   (the worker-rolling path; identical under either cost model);
/// * `ring/4` for the exact kind — [`ShardedSliding`] with
///   [`force_ring_merge`](ShardedSliding::force_ring_merge): the
///   pre-incremental per-position cost (`shards` window-sized clones
///   plus `shards − 1` window-sized merges at the aggregator),
///   measured as the baseline;
/// * `incr/4` for the exact kind — the same engine on its default
///   incremental path (`O(shards)` *epoch*-sized merges per position
///   plus one window-sized clone). `incr/4` vs `ring/4` is the
///   ring-re-merge elimination at equal shard count;
/// * `ring/1` for `ss-hhh` — a non-retractable kind, which only has
///   the slot-order ring-merge fallback (`window/step` summary merges
///   per position);
/// * `native` for `memento` — the window-native [`MementoHhh`], whose
///   per-position cost is a query: the detector maintains its own
///   window, no merges at all. `native` vs ss-hhh `ring/1` is the
///   headline — both are bounded-memory approximate sliding HHH, one
///   pays the per-position ring merge and one doesn't.
///
/// Jaccard is against the [`SlidingExact`] reference per position; the
/// exact rows must score 1.0.
pub fn sliding_scoreboard(scale: Scale) -> SlidingScoreboardResults {
    let horizon = scale.compare_duration();
    let window = TimeSpan::from_secs(5);
    let step = TimeSpan::from_millis(100);
    let epw = (window / step) as usize;
    let thresholds = [Threshold::percent(1.0)];
    let h = Ipv4Hierarchy::bytes();
    let model = hhh_trace::TrafficModel {
        duration: horizon,
        sources: 10_000,
        zipf_alpha: 1.0,
        total_pps: 25_000.0,
        networks: 256,
        ..hhh_trace::TrafficModel::default()
    };
    let packets: Vec<PacketRecord> = TraceGenerator::new(model, scenarios::day_seed(0)).collect();
    let n = packets.len() as u64;
    let mut rows = Vec::new();

    // Reference: the rolling-count sliding engine.
    let start = Instant::now();
    let reference = Pipeline::new(packets.iter().copied())
        .engine(SlidingExact::new(&h, horizon, window, step, &thresholds, |p| p.src))
        .collect()
        .run();
    let secs = start.elapsed().as_secs_f64();
    rows.push(ShardSweepRow {
        detector: "exact",
        mode: "sliding-exact".into(),
        shards: 1,
        packets: n,
        seconds: secs,
        pkts_per_sec: n as f64 / secs,
        jaccard_vs_reference: 1.0,
    });

    // Exact kind through the sharded sliding engine: the one-shard
    // path, then both cost models at four shards.
    for (mode, k, forced) in [("shard/1", 1usize, false), ("ring/4", 4, true), ("incr/4", 4, false)]
    {
        let mut engine = ShardedSliding::new(
            k,
            |_shard| ExactHhh::new(h),
            horizon,
            window,
            step,
            &thresholds,
            |p: &PacketRecord| p.src,
        );
        if forced {
            engine = engine.force_ring_merge();
        }
        let start = Instant::now();
        let sharded = Pipeline::new(packets.iter().copied()).engine(engine).collect().run();
        let secs = start.elapsed().as_secs_f64();
        rows.push(ShardSweepRow {
            detector: "exact",
            mode: mode.into(),
            shards: k,
            packets: n,
            seconds: secs,
            pkts_per_sec: n as f64 / secs,
            jaccard_vs_reference: mean_jaccard(&reference[0], &sharded[0]),
        });
    }

    // A non-retractable kind: only the fallback ring merge exists.
    {
        let start = Instant::now();
        let sharded = Pipeline::new(packets.iter().copied())
            .engine(ShardedSliding::new(
                1,
                |_shard| SpaceSavingHhh::new(h, 512),
                horizon,
                window,
                step,
                &thresholds,
                |p: &PacketRecord| p.src,
            ))
            .collect()
            .run();
        let secs = start.elapsed().as_secs_f64();
        rows.push(ShardSweepRow {
            detector: "ss-hhh",
            mode: "ring/1".into(),
            shards: 1,
            packets: n,
            seconds: secs,
            pkts_per_sec: n as f64 / secs,
            jaccard_vs_reference: mean_jaccard(&reference[0], &sharded[0]),
        });
    }

    // Window-native: MementoHhh holds a packet-count window sized to
    // the mean packets per time window, queried at every position the
    // reference reports.
    {
        let window_pkts = ((n as u128 * window.as_nanos() as u128 / horizon.as_nanos() as u128)
            as usize)
            .max(epw);
        // Ten frames per window: frame granularity bounds the expiry
        // slack (window/10 here), and a short frame ring keeps the
        // summary's decrement passes cheap — it need not match the
        // engine's epoch count.
        let mut det = MementoHhh::new(h, window_pkts, 10, 512);
        let n_epochs = horizon / step;
        let epw_u64 = epw as u64;
        let mut sets = Vec::with_capacity(reference[0].len());
        let mut pending: Vec<(u32, u64)> = Vec::with_capacity(DEFAULT_BATCH);
        let mut cur_epoch = 0u64;
        let start = Instant::now();
        let boundary = |det: &mut MementoHhh<Ipv4Hierarchy>,
                        pending: &mut Vec<(u32, u64)>,
                        cur_epoch: u64,
                        sets: &mut Vec<_>| {
            if !pending.is_empty() {
                det.observe_batch(pending);
                pending.clear();
            }
            if cur_epoch + 1 >= epw_u64 {
                sets.push(WindowReport {
                    index: cur_epoch + 1 - epw_u64,
                    start: hhh_nettypes::Nanos::ZERO,
                    end: hhh_nettypes::Nanos::ZERO,
                    total: det.windowed_total(),
                    hhhs: det.report(thresholds[0]),
                });
            }
        };
        for p in packets.iter() {
            let e = p.ts.bin_index(step);
            if e >= n_epochs {
                break;
            }
            while cur_epoch < e {
                boundary(&mut det, &mut pending, cur_epoch, &mut sets);
                cur_epoch += 1;
            }
            pending.push((p.src, p.wire_len as u64));
            if pending.len() >= DEFAULT_BATCH {
                det.observe_batch(&pending);
                pending.clear();
            }
        }
        while cur_epoch < n_epochs {
            boundary(&mut det, &mut pending, cur_epoch, &mut sets);
            cur_epoch += 1;
        }
        let secs = start.elapsed().as_secs_f64();
        rows.push(ShardSweepRow {
            detector: "memento",
            mode: "native".into(),
            shards: 1,
            packets: n,
            seconds: secs,
            pkts_per_sec: n as f64 / secs,
            jaccard_vs_reference: mean_jaccard(&reference[0], &sets),
        });
    }

    SlidingScoreboardResults { rows, scale }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nonsense"), None);
    }

    #[test]
    fn durations_grow_with_scale() {
        assert!(Scale::Smoke.day_duration() < Scale::Quick.day_duration());
        assert!(Scale::Quick.day_duration() < Scale::Paper.day_duration());
        assert_eq!(Scale::Paper.day_duration(), TimeSpan::from_secs(3600));
        assert_eq!(Scale::Paper.microvar_duration(), TimeSpan::from_secs(1200));
    }
}
