//! Experiment scales: the same experiments at three sizes.

use hhh_nettypes::TimeSpan;

/// How big to run an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long traces: CI and unit-test sized. Shapes visible,
    /// percentages noisy.
    Smoke,
    /// Minutes-long traces: the default for interactive runs.
    Quick,
    /// The paper's durations: 1 h day traces, 20 min micro-variation
    /// trace. Expect tens of minutes of compute.
    Paper,
}

impl Scale {
    /// Parse from a CLI argument (`smoke` / `quick` / `paper`).
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Read from argv (first positional arg), default `Quick`.
    pub fn from_args() -> Scale {
        std::env::args()
            .nth(1)
            .and_then(|a| Scale::parse(&a))
            .unwrap_or(Scale::Quick)
    }

    /// Duration of each of the four "day" traces (paper: 1 hour).
    pub fn day_duration(&self) -> TimeSpan {
        match self {
            Scale::Smoke => TimeSpan::from_secs(90),
            Scale::Quick => TimeSpan::from_secs(420),
            Scale::Paper => TimeSpan::from_secs(3600),
        }
    }

    /// Duration of the micro-variation trace (paper: 20 minutes).
    pub fn microvar_duration(&self) -> TimeSpan {
        match self {
            Scale::Smoke => TimeSpan::from_secs(120),
            Scale::Quick => TimeSpan::from_secs(400),
            Scale::Paper => TimeSpan::from_secs(1200),
        }
    }

    /// Duration of the detector-comparison trace.
    pub fn compare_duration(&self) -> TimeSpan {
        match self {
            Scale::Smoke => TimeSpan::from_secs(60),
            Scale::Quick => TimeSpan::from_secs(180),
            Scale::Paper => TimeSpan::from_secs(900),
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("QUICK"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("nonsense"), None);
    }

    #[test]
    fn durations_grow_with_scale() {
        assert!(Scale::Smoke.day_duration() < Scale::Quick.day_duration());
        assert!(Scale::Quick.day_duration() < Scale::Paper.day_duration());
        assert_eq!(Scale::Paper.day_duration(), TimeSpan::from_secs(3600));
        assert_eq!(Scale::Paper.microvar_duration(), TimeSpan::from_secs(1200));
    }
}
