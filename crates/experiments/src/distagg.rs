//! D-scale — the **distributed aggregation** scenario: prove that the
//! snapshot wire format round-trips whole detector states across
//! process boundaries.
//!
//! The scenario splits one generated day trace K ways by the sharded
//! pipeline's own key partition ([`shard_of`](hhh_window::shard_of)),
//! runs K *independent* pipelines (one per shard, as separate
//! processes would) that each write their per-report-point detector
//! snapshots as JSONL, folds the K streams with `hhh-agg`, and checks
//! the merged result two ways:
//!
//! * **byte-identity against the in-process sharded run** — a single
//!   `ShardedDisjoint`/`ShardedContinuous` pipeline over the whole
//!   trace with K shard detectors emits one *merged* state line per
//!   report point; the cross-process fold must re-serialize to the
//!   same bytes. This holds for **all five detector kinds**, because
//!   every shard detector's state is a deterministic function of its
//!   sub-stream (RHHH's batched sampling replays the per-packet RNG
//!   sequence) and the fold applies the same merges in the same order.
//! * **report agreement against the unsharded single-process run** —
//!   exact identity of the HHH sets for `exact` (merging is lossless),
//!   bounded Jaccard agreement for the approximate detectors (the
//!   merge-error growth the sharding tests already quantify).
//!
//! The `distagg` binary exposes each shard's run on stdout
//! (`distagg shard <kind> <k> <i>`) so CI can spawn K real processes
//! and pipe their streams into the `hhh-agg` binary — the
//! cross-process smoke test.
//!
//! The scenario **core** (kinds, constants, per-shard pipelines,
//! reference runs) lives in [`hhh_aggd::scenario`] so the daemon's
//! shard driver (`aggd-shard`) and its restart-resume tests share the
//! exact definitions; this module re-exports every name and adds the
//! [`Scale`]-aware wrappers, verdict tables, and the codec bench.

use crate::Scale;
use hhh_agg::{collect_socket_streams, fold_streams, read_stream, write_merged, MergedPoint};
use hhh_analysis::{fmt_f, jaccard, Table};
use hhh_core::{
    ExactHhh, HhhDetector, MergeableDetector, MvPipeHhh, Rhhh, SpaceSavingHhh, TdbfHhh, WireFormat,
};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::{Nanos, PacketRecord, TimeSpan};
use hhh_trace::{scenarios, TraceGenerator};
use hhh_window::{TcpFrameListener, TransportError, WindowReport};

pub use hhh_aggd::scenario::{
    distagg_threshold, fold_shard_streams, hierarchy, inprocess_sharded_jsonl_on, probes,
    rhhh_seed, scenario_trace, shard_into, shard_jsonl_on, shard_label, shard_packets,
    shard_stream_on, shard_to_addr_on, shard_to_addr_with, single_process_reports_on, stream_id,
    tdbf_config, Kind, DISTAGG_CAPACITY, DISTAGG_MVPIPE_BUCKETS, DISTAGG_WINDOW, KINDS,
};

/// The scenario trace: the acceptance day trace at this scale (day 0;
/// ≈ 1.36M packets at `Smoke`'s 60 s — the same trace the pipeline
/// parity and sharded-merge contracts pin). Generated once per scale
/// and cached: the scenario replays it dozens of times.
pub fn distagg_trace(scale: Scale) -> &'static [PacketRecord] {
    use std::sync::OnceLock;
    static TRACES: [OnceLock<Vec<PacketRecord>>; 3] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new()];
    let slot = match scale {
        Scale::Smoke => 0,
        Scale::Quick => 1,
        Scale::Paper => 2,
    };
    TRACES[slot].get_or_init(|| {
        let horizon = scale.compare_duration();
        TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect()
    })
}

/// One shard's run of the distributed scenario at a [`Scale`]:
/// [`shard_stream_on`] over the cached scenario trace.
pub fn shard_stream(
    kind: Kind,
    scale: Scale,
    k: usize,
    shard: usize,
    format: WireFormat,
) -> Vec<u8> {
    shard_stream_on(kind, distagg_trace(scale), scale.compare_duration(), k, shard, format)
}

/// [`shard_stream`] in the v1 JSONL format.
pub fn shard_jsonl(kind: Kind, scale: Scale, k: usize, shard: usize) -> Vec<u8> {
    shard_stream(kind, scale, k, shard, WireFormat::Json)
}

/// One shard's run streamed **over TCP** to an aggregator at `addr` —
/// what `distagg shard --connect` does ([`shard_to_addr_on`] over the
/// cached scenario trace).
pub fn shard_to_addr(
    kind: Kind,
    scale: Scale,
    k: usize,
    shard: usize,
    addr: &str,
) -> Result<(), TransportError> {
    shard_to_addr_on(kind, distagg_trace(scale), scale.compare_duration(), k, shard, addr)
}

/// The in-process K-shard reference stream at a [`Scale`].
pub fn inprocess_sharded_jsonl(kind: Kind, scale: Scale, k: usize) -> Vec<u8> {
    inprocess_sharded_jsonl_on(kind, distagg_trace(scale), scale.compare_duration(), k)
}

/// The unsharded single-process reference reports at a [`Scale`].
pub fn single_process_reports(
    kind: Kind,
    scale: Scale,
) -> Vec<WindowReport<hhh_nettypes::Ipv4Prefix>> {
    single_process_reports_on(kind, distagg_trace(scale), scale.compare_duration())
}

/// One `(kind, K)` verdict of the scenario.
#[derive(Clone, Debug)]
pub struct DistAggRow {
    /// Detector kind label.
    pub detector: &'static str,
    /// Shard/process count.
    pub shards: usize,
    /// Packets in the trace.
    pub packets: u64,
    /// Report points folded.
    pub points: usize,
    /// Snapshots folded across all points and streams.
    pub folded: usize,
    /// Does every folded state re-serialize byte-identically to the
    /// in-process K-shard run's merged state line?
    pub state_identical: bool,
    /// Same check with the shard streams written as **v2 binary
    /// frames**: folding binary streams must land on the identical
    /// merged state (compared after transcoding to JSON).
    pub state_identical_v2: bool,
    /// Mean per-point Jaccard similarity of the merged HHH sets
    /// against the unsharded single-process run.
    pub jaccard_vs_single: f64,
    /// For `exact`: are the merged HHH reports (prefixes, estimates,
    /// discounts) identical to the single-process run's? Approximate
    /// kinds report `false` only when `jaccard_vs_single` is also
    /// degraded, so the table prints `-` for them.
    pub reports_identical: bool,
}

/// Run the full scenario at `scale` for every kind at each shard count
/// in `ks`.
pub fn run_distagg(scale: Scale, ks: &[usize]) -> Vec<DistAggRow> {
    run_distagg_on(distagg_trace(scale), scale.compare_duration(), ks, &KINDS)
}

/// [`run_distagg`] over an explicit trace and kind subset.
pub fn run_distagg_on(
    trace: &[PacketRecord],
    horizon: TimeSpan,
    ks: &[usize],
    kinds: &[Kind],
) -> Vec<DistAggRow> {
    let packets = trace.len() as u64;
    let mut rows = Vec::new();
    for &kind in kinds {
        let single = single_process_reports_on(kind, trace, horizon);
        for &k in ks {
            let streams: Vec<Vec<u8>> =
                (0..k).map(|i| shard_jsonl_on(kind, trace, horizon, k, i)).collect();
            let points = fold_shard_streams(&streams).expect("shard streams fold");
            let folded = points.iter().map(|p| p.folded).sum();

            // Byte-identity vs the in-process sharded run.
            let reference =
                read_stream(0, inprocess_sharded_jsonl_on(kind, trace, horizon, k).as_slice())
                    .expect("in-process stream parses");
            let state_of = |r: &hhh_core::WireSnapshot| {
                r.to_stamped().expect("reference state decodes").snapshot.to_json()
            };
            let state_identical = reference.len() == points.len()
                && points
                    .iter()
                    .zip(&reference)
                    .all(|(p, r)| p.at == r.at() && p.detector.snapshot().to_json() == state_of(r));

            // The same fold over v2 binary shard streams must land on
            // the identical merged state (the wire-format v2 parity
            // contract).
            let bin_streams: Vec<Vec<u8>> = (0..k)
                .map(|i| shard_stream_on(kind, trace, horizon, k, i, WireFormat::Binary))
                .collect();
            let bin_points = fold_shard_streams(&bin_streams).expect("binary shard streams fold");
            let state_identical_v2 = reference.len() == bin_points.len()
                && bin_points.iter().zip(&reference).all(|(p, r)| {
                    p.at == r.at()
                        && p.start == r.start()
                        && p.detector.snapshot().to_json() == state_of(r)
                });

            // Report agreement vs the unsharded run — including the
            // window bounds, which state records now carry.
            assert_eq!(points.len(), single.len(), "report point counts differ");
            let mut jac_sum = 0.0;
            let mut identical = true;
            for (i, (p, s)) in points.iter().zip(&single).enumerate() {
                let merged = p.report(i as u64, distagg_threshold());
                jac_sum += jaccard(&merged.prefix_set(), &s.prefix_set());
                identical &= merged.hhhs == s.hhhs
                    && merged.total == s.total
                    && merged.start == s.start
                    && merged.end == s.end;
            }
            rows.push(DistAggRow {
                detector: kind.label(),
                shards: k,
                packets,
                points: points.len(),
                folded,
                state_identical,
                state_identical_v2,
                jaccard_vs_single: jac_sum / points.len().max(1) as f64,
                reports_identical: identical,
            });
        }
    }
    rows
}

/// Render scenario rows as an aligned text table.
pub fn distagg_table(rows: &[DistAggRow]) -> String {
    let mut t = Table::new(vec![
        "detector",
        "shards",
        "points",
        "folded",
        "state==inproc",
        "state==inproc(v2)",
        "jaccard-vs-1proc",
        "reports==1proc",
    ]);
    for r in rows {
        t.row(vec![
            r.detector.to_string(),
            r.shards.to_string(),
            r.points.to_string(),
            r.folded.to_string(),
            r.state_identical.to_string(),
            r.state_identical_v2.to_string(),
            fmt_f(r.jaccard_vs_single, 4),
            if r.detector == "exact" { r.reports_identical.to_string() } else { "-".to_string() },
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Socket scenario
// ---------------------------------------------------------------------

/// One `(kind, K)` verdict of the **socket** scenario (`distagg
/// socket`): the K-shard parity check run end-to-end over localhost
/// TCP.
#[derive(Clone, Debug)]
pub struct SocketRow {
    /// Detector kind label.
    pub detector: &'static str,
    /// Shard (connection) count.
    pub shards: usize,
    /// Report points folded from the socket streams.
    pub points: usize,
    /// Snapshots folded across all connections.
    pub folded: usize,
    /// Is the socket fold's rendered output (merged reports + re-
    /// emitted states) **byte-identical** to folding the same shards'
    /// stream files?
    pub socket_eq_file: bool,
    /// Does every socket-folded state re-serialize byte-identically to
    /// the in-process K-shard run's merged state line?
    pub state_identical: bool,
}

/// Run the socket scenario at `scale` for every kind at each shard
/// count in `ks`: K shard pipelines stream natively encoded v2 frames
/// over localhost TCP into one listener, the listener's fold is
/// compared byte-for-byte against the file-based fold and the
/// in-process sharded run.
pub fn run_socket(scale: Scale, ks: &[usize]) -> Vec<SocketRow> {
    run_socket_on(distagg_trace(scale), scale.compare_duration(), ks, &KINDS)
}

/// [`run_socket`] over an explicit trace and kind subset.
pub fn run_socket_on(
    trace: &[PacketRecord],
    horizon: TimeSpan,
    ks: &[usize],
    kinds: &[Kind],
) -> Vec<SocketRow> {
    let mut rows = Vec::new();
    for &kind in kinds {
        for &k in ks {
            let listener = TcpFrameListener::bind("127.0.0.1:0")
                .expect("bind localhost listener")
                .with_timeout(std::time::Duration::from_secs(600));
            let addr = listener.local_addr().expect("bound address").to_string();

            // K concurrent shard pipelines, each its own connection —
            // exactly what K shard processes would do.
            let streams = std::thread::scope(|s| {
                let handles: Vec<_> = (0..k)
                    .map(|i| {
                        let addr = addr.clone();
                        s.spawn(move || shard_to_addr_on(kind, trace, horizon, k, i, &addr))
                    })
                    .collect();
                let streams = collect_socket_streams(listener, k).expect("socket streams");
                for h in handles {
                    h.join().expect("shard thread").expect("shard transport");
                }
                streams
            });
            let folded: usize = streams.iter().map(Vec::len).sum();
            let socket_points = fold_streams(&hierarchy(), &streams).expect("socket streams fold");

            // Byte-identity vs the file-based fold of the same shards.
            let file_streams: Vec<Vec<u8>> = (0..k)
                .map(|i| shard_stream_on(kind, trace, horizon, k, i, WireFormat::Binary))
                .collect();
            let file_points = fold_shard_streams(&file_streams).expect("file streams fold");
            let render = |points: &[MergedPoint<Ipv4Hierarchy>]| {
                let mut out = Vec::new();
                write_merged(&mut out, points, &[distagg_threshold()], true, WireFormat::Json)
                    .expect("merged points render");
                out
            };
            let socket_eq_file = render(&socket_points) == render(&file_points);

            // Byte-identity vs the in-process K-shard run.
            let reference =
                read_stream(0, inprocess_sharded_jsonl_on(kind, trace, horizon, k).as_slice())
                    .expect("in-process stream parses");
            let state_of = |r: &hhh_core::WireSnapshot| {
                r.to_stamped().expect("reference state decodes").snapshot.to_json()
            };
            let state_identical = reference.len() == socket_points.len()
                && socket_points.iter().zip(&reference).all(|(p, r)| {
                    p.at == r.at()
                        && p.start == r.start()
                        && p.detector.snapshot().to_json() == state_of(r)
                });

            rows.push(SocketRow {
                detector: kind.label(),
                shards: k,
                points: socket_points.len(),
                folded,
                socket_eq_file,
                state_identical,
            });
        }
    }
    rows
}

/// Render socket scenario rows as an aligned text table.
pub fn socket_table(rows: &[SocketRow]) -> String {
    let mut t =
        Table::new(vec!["detector", "shards", "points", "folded", "socket==file", "state==inproc"]);
    for r in rows {
        t.row(vec![
            r.detector.to_string(),
            r.shards.to_string(),
            r.points.to_string(),
            r.folded.to_string(),
            r.socket_eq_file.to_string(),
            r.state_identical.to_string(),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Codec bench
// ---------------------------------------------------------------------

/// One measured codec operation.
#[derive(Clone, Debug)]
pub struct CodecBenchRow {
    /// Detector kind label.
    pub detector: &'static str,
    /// `encode` (state → wire), `decode` (wire → restored detector),
    /// or `fold/K` (parse + fold K shard streams).
    pub op: String,
    /// Wire format the operation ran in (`json` = v1, `binary` = v2).
    pub format: &'static str,
    /// Streams folded (1 for encode/decode).
    pub shards: usize,
    /// Operations (snapshots encoded/decoded, or state records folded).
    pub items: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Items per second.
    pub per_sec: f64,
    /// Wire bytes of one encoded snapshot (encode/decode rows), or of
    /// all folded input streams (fold rows).
    pub bytes: u64,
}

fn timed<T>(mut f: impl FnMut() -> T) -> (f64, u64) {
    // Repeat until the measurement dwarfs timer noise.
    let mut iters: u64 = 0;
    let start = std::time::Instant::now();
    loop {
        std::hint::black_box(f());
        iters += 1;
        let s = start.elapsed().as_secs_f64();
        if s >= 0.2 || iters >= 10_000 {
            return (s, iters);
        }
    }
}

/// A representative per-report-point snapshot for a kind: the state
/// a detector holds after one report window of the scenario trace.
fn sample_snapshot(kind: Kind, packets: &[PacketRecord]) -> hhh_core::DetectorSnapshot {
    let in_window = packets.iter().take_while(|p| p.ts < Nanos::ZERO + DISTAGG_WINDOW).copied();
    match kind {
        Kind::Exact => {
            let mut d = ExactHhh::new(hierarchy());
            for p in in_window {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, u64::from(p.wire_len));
            }
            d.snapshot()
        }
        Kind::SsHhh => {
            let mut d = SpaceSavingHhh::new(hierarchy(), DISTAGG_CAPACITY);
            for p in in_window {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, u64::from(p.wire_len));
            }
            d.snapshot()
        }
        Kind::Rhhh => {
            let mut d = Rhhh::new(hierarchy(), DISTAGG_CAPACITY, rhhh_seed(0));
            for p in in_window {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, u64::from(p.wire_len));
            }
            d.snapshot()
        }
        Kind::Tdbf => {
            let mut d = TdbfHhh::new(hierarchy(), tdbf_config());
            for p in in_window {
                hhh_core::ContinuousDetector::<Ipv4Hierarchy>::observe(
                    &mut d,
                    p.ts,
                    p.src,
                    u64::from(p.wire_len),
                );
            }
            MergeableDetector::snapshot(&d)
        }
        Kind::MvPipe => {
            let mut d = MvPipeHhh::new(hierarchy(), DISTAGG_MVPIPE_BUCKETS);
            for p in in_window {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, u64::from(p.wire_len));
            }
            d.snapshot()
        }
    }
    .expect("all five kinds serialize")
}

/// Measure snapshot encode/decode cost per detector **in both wire
/// formats** and aggregator fold throughput (state records per second)
/// at each shard count in `ks` — the numbers `BENCH_pr5.json` commits.
/// The PR-4 acceptance line was the `decode` pair for `tdbf-hhh` (v2
/// ≥ 10× over v1); the PR-5 line is `encode-native` vs
/// `encode-transcode` per kind — the v2 encode side no longer paying
/// the JSON render + parse.
pub fn codec_bench(scale: Scale, ks: &[usize]) -> Vec<CodecBenchRow> {
    let h = hierarchy();
    let packets = distagg_trace(scale);
    let mut rows = Vec::new();
    let window_start = Nanos::ZERO;
    let window_end = Nanos::ZERO + DISTAGG_WINDOW;
    for &kind in &KINDS {
        let snap = sample_snapshot(kind, packets);
        let line = snap.to_json();
        let frame_bytes = snap.to_frame(window_start, window_end).expect("transcodes").encode();
        // A live detector holding the same state, for the native
        // (`FrameEncode`) encode path.
        let restored = hhh_core::RestoredDetector::from_snapshot(&h, &snap).expect("restores");
        assert_eq!(
            restored.to_frame(window_start, window_end).expect("native-encodes").encode(),
            frame_bytes,
            "native and transcode encodes must write identical bytes"
        );

        // encode: detector state -> wire bytes. v1 renders JSON;
        // `encode-transcode` is the PR-4 v2 path (render the JSON
        // body, parse it back, pack a frame); `encode-native` is the
        // FrameEncode path (detector state -> frame body directly).
        let (s, n) = timed(|| snap.to_json());
        rows.push(CodecBenchRow {
            detector: kind.label(),
            op: "encode".into(),
            format: "json",
            shards: 1,
            items: n,
            seconds: s,
            per_sec: n as f64 / s,
            bytes: line.len() as u64 + 1,
        });
        let (s, n) =
            timed(|| snap.to_frame(window_start, window_end).expect("transcodes").encode());
        rows.push(CodecBenchRow {
            detector: kind.label(),
            op: "encode-transcode".into(),
            format: "binary",
            shards: 1,
            items: n,
            seconds: s,
            per_sec: n as f64 / s,
            bytes: frame_bytes.len() as u64,
        });
        let (s, n) =
            timed(|| restored.to_frame(window_start, window_end).expect("native-encodes").encode());
        rows.push(CodecBenchRow {
            detector: kind.label(),
            op: "encode-native".into(),
            format: "binary",
            shards: 1,
            items: n,
            seconds: s,
            per_sec: n as f64 / s,
            bytes: frame_bytes.len() as u64,
        });

        // decode: wire bytes -> restored live detector.
        let (s, n) = timed(|| {
            let parsed = hhh_core::DetectorSnapshot::from_json(&line).expect("parses");
            hhh_core::RestoredDetector::from_snapshot(&h, &parsed).expect("restores")
        });
        rows.push(CodecBenchRow {
            detector: kind.label(),
            op: "decode".into(),
            format: "json",
            shards: 1,
            items: n,
            seconds: s,
            per_sec: n as f64 / s,
            bytes: line.len() as u64 + 1,
        });
        let (s, n) = timed(|| {
            let (frame, _) = hhh_core::SnapshotFrame::decode(&frame_bytes).expect("frame decodes");
            hhh_core::RestoredDetector::from_frame(&h, &frame).expect("restores")
        });
        rows.push(CodecBenchRow {
            detector: kind.label(),
            op: "decode".into(),
            format: "binary",
            shards: 1,
            items: n,
            seconds: s,
            per_sec: n as f64 / s,
            bytes: frame_bytes.len() as u64,
        });

        // fold/K: parse + fold K whole shard streams, per format.
        for &k in ks {
            for format in [WireFormat::Json, WireFormat::Binary] {
                let streams: Vec<Vec<u8>> =
                    (0..k).map(|i| shard_stream(kind, scale, k, i, format)).collect();
                let records: u64 = streams
                    .iter()
                    .map(|b| read_stream(0, b.as_slice()).expect("stream parses").len() as u64)
                    .sum();
                let wire_bytes: u64 = streams.iter().map(|b| b.len() as u64).sum();
                let start = std::time::Instant::now();
                let mut reps: u64 = 0;
                loop {
                    std::hint::black_box(fold_shard_streams(&streams).expect("folds"));
                    reps += 1;
                    if start.elapsed().as_secs_f64() >= 0.2 || reps >= 100 {
                        break;
                    }
                }
                let s = start.elapsed().as_secs_f64();
                rows.push(CodecBenchRow {
                    detector: kind.label(),
                    op: format!("fold/{k}"),
                    format: format.label(),
                    shards: k,
                    items: records * reps,
                    seconds: s,
                    per_sec: (records * reps) as f64 / s,
                    bytes: wire_bytes,
                });
            }
        }
    }
    rows
}

/// Render bench rows as JSON lines for `BENCH_pr4.json`.
pub fn codec_bench_json(rows: &[CodecBenchRow], scale: Scale) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{{\"experiment\": \"snapshot_codec\", \"scale\": \"{}\", \"detector\": \"{}\", \
             \"op\": \"{}\", \"format\": \"{}\", \"shards\": {}, \"items\": {}, \
             \"seconds\": {:.6}, \"per_sec\": {:.1}, \"bytes\": {}}}\n",
            scale.label(),
            r.detector,
            r.op,
            r.format,
            r.shards,
            r.items,
            r.seconds,
            r.per_sec,
            r.bytes,
        ));
    }
    out
}

/// Render bench rows as an aligned text table.
pub fn codec_bench_table(rows: &[CodecBenchRow]) -> String {
    let mut t = Table::new(vec![
        "detector", "op", "format", "shards", "items", "seconds", "items/s", "bytes",
    ]);
    for r in rows {
        t.row(vec![
            r.detector.to_string(),
            r.op.clone(),
            r.format.to_string(),
            r.shards.to_string(),
            r.items.to_string(),
            fmt_f(r.seconds, 3),
            format!("{:.0}", r.per_sec),
            r.bytes.to_string(),
        ]);
    }
    t.render()
}
