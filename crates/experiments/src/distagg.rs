//! D-scale — the **distributed aggregation** scenario: prove that the
//! snapshot wire format round-trips whole detector states across
//! process boundaries.
//!
//! The scenario splits one generated day trace K ways by the sharded
//! pipeline's own key partition ([`shard_of`]), runs K *independent*
//! pipelines (one per shard, as separate processes would) that each
//! write their per-report-point detector snapshots as JSONL, folds the
//! K streams with `hhh-agg`, and checks the merged result two ways:
//!
//! * **byte-identity against the in-process sharded run** — a single
//!   [`ShardedDisjoint`]/[`ShardedContinuous`] pipeline over the whole
//!   trace with K shard detectors emits one *merged* state line per
//!   report point; the cross-process fold must re-serialize to the
//!   same bytes. This holds for **all four detector kinds**, because
//!   every shard detector's state is a deterministic function of its
//!   sub-stream (RHHH's batched sampling replays the per-packet RNG
//!   sequence) and the fold applies the same merges in the same order.
//! * **report agreement against the unsharded single-process run** —
//!   exact identity of the HHH sets for `exact` (merging is lossless),
//!   bounded Jaccard agreement for the approximate detectors (the
//!   merge-error growth the sharding tests already quantify).
//!
//! The `distagg` binary exposes each shard's run on stdout
//! (`distagg shard <kind> <k> <i>`) so CI can spawn K real processes
//! and pipe their streams into the `hhh-agg` binary — the
//! cross-process smoke test.

use crate::Scale;
use hhh_agg::{collect_socket_streams, fold_streams, read_stream, write_merged, MergedPoint};
use hhh_analysis::{fmt_f, jaccard, Table};
use hhh_core::{
    ExactHhh, HhhDetector, MergeableDetector, Rhhh, SpaceSavingHhh, TdbfHhh, TdbfHhhConfig,
    Threshold, WireFormat,
};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::{Ipv4Prefix, Nanos, PacketRecord, TimeSpan};
use hhh_trace::{scenarios, TraceGenerator};
use hhh_window::{
    shard_of, Continuous, Disjoint, Pipeline, ReportSink, ShardedContinuous, ShardedDisjoint,
    SnapshotSink, TcpFrameListener, TcpTransport, TransportError, TransportSink, WindowReport,
};

/// Report window / probe cadence of the scenario.
pub const DISTAGG_WINDOW: TimeSpan = TimeSpan::from_secs(5);

/// Report threshold of the scenario (1% of bytes).
pub fn distagg_threshold() -> Threshold {
    Threshold::percent(1.0)
}

/// Space-Saving counters for `ss-hhh`/`rhhh` in the scenario.
pub const DISTAGG_CAPACITY: usize = 512;

/// The detector kinds the scenario exercises — every kind the snapshot
/// codec can round-trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// [`ExactHhh`] in disjoint windows (lossless merges).
    Exact,
    /// [`SpaceSavingHhh`] in disjoint windows.
    SsHhh,
    /// [`Rhhh`] in disjoint windows (per-shard sampling seeds).
    Rhhh,
    /// [`TdbfHhh`] probed continuously.
    Tdbf,
}

/// All four kinds, in fixed order.
pub const KINDS: [Kind; 4] = [Kind::Exact, Kind::SsHhh, Kind::Rhhh, Kind::Tdbf];

impl Kind {
    /// The wire `kind` label.
    pub fn label(self) -> &'static str {
        match self {
            Kind::Exact => "exact",
            Kind::SsHhh => "ss-hhh",
            Kind::Rhhh => "rhhh",
            Kind::Tdbf => "tdbf-hhh",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<Kind> {
        match s {
            "exact" => Some(Kind::Exact),
            "ss-hhh" => Some(Kind::SsHhh),
            "rhhh" => Some(Kind::Rhhh),
            "tdbf-hhh" => Some(Kind::Tdbf),
            _ => None,
        }
    }
}

fn hierarchy() -> Ipv4Hierarchy {
    Ipv4Hierarchy::bytes()
}

/// RHHH sampling seed for a shard — shared between the split runs and
/// the in-process sharded reference, so their states are bit-identical.
fn rhhh_seed(shard: usize) -> u64 {
    0x5EED_0000 + shard as u64
}

fn tdbf_config() -> TdbfHhhConfig {
    TdbfHhhConfig { half_life: DISTAGG_WINDOW / 2, ..TdbfHhhConfig::default() }
}

/// The scenario trace: the acceptance day trace at this scale (day 0;
/// ≈ 1.36M packets at `Smoke`'s 60 s — the same trace the pipeline
/// parity and sharded-merge contracts pin). Generated once per scale
/// and cached: the scenario replays it dozens of times.
pub fn distagg_trace(scale: Scale) -> &'static [PacketRecord] {
    use std::sync::OnceLock;
    static TRACES: [OnceLock<Vec<PacketRecord>>; 3] =
        [OnceLock::new(), OnceLock::new(), OnceLock::new()];
    let slot = match scale {
        Scale::Smoke => 0,
        Scale::Quick => 1,
        Scale::Paper => 2,
    };
    TRACES[slot].get_or_init(|| {
        let horizon = scale.compare_duration();
        TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect()
    })
}

/// TDBF probe instants: every window boundary in the horizon.
fn probes(horizon: TimeSpan) -> Vec<Nanos> {
    (1..=horizon / DISTAGG_WINDOW).map(|i| Nanos::ZERO + DISTAGG_WINDOW * i).collect()
}

/// Run the scenario's windowed sharded pipeline into an arbitrary
/// sink — the sink decides the medium (byte buffer, file, socket,
/// in-process channel).
fn windowed_into<D, S>(
    packets: &[PacketRecord],
    horizon: TimeSpan,
    detectors: Vec<D>,
    sink: S,
) -> S::Output
where
    D: HhhDetector<Ipv4Hierarchy> + MergeableDetector + Clone + Send,
    S: ReportSink<Ipv4Prefix>,
{
    Pipeline::new(packets.iter().copied())
        .engine(ShardedDisjoint::new(
            detectors,
            horizon,
            DISTAGG_WINDOW,
            &[distagg_threshold()],
            |p| p.src,
        ))
        .sink(sink)
        .run()
}

/// The continuous (TDBF) counterpart of [`windowed_into`].
fn continuous_into<S: ReportSink<Ipv4Prefix>>(
    packets: &[PacketRecord],
    horizon: TimeSpan,
    shards: usize,
    sink: S,
) -> S::Output {
    let detectors: Vec<_> = (0..shards).map(|_| TdbfHhh::new(hierarchy(), tdbf_config())).collect();
    Pipeline::new(packets.iter().copied())
        .engine(ShardedContinuous::new(detectors, &probes(horizon), distagg_threshold(), |p| p.src))
        .sink(sink)
        .run()
}

fn windowed_stream<D>(
    packets: &[PacketRecord],
    horizon: TimeSpan,
    detectors: Vec<D>,
    format: WireFormat,
) -> Vec<u8>
where
    D: HhhDetector<Ipv4Hierarchy> + MergeableDetector + Clone + Send,
{
    let (bytes, err) =
        windowed_into(packets, horizon, detectors, SnapshotSink::with_format(Vec::new(), format));
    assert!(err.is_none(), "Vec<u8> writes cannot fail");
    bytes
}

fn continuous_stream(
    packets: &[PacketRecord],
    horizon: TimeSpan,
    shards: usize,
    format: WireFormat,
) -> Vec<u8> {
    let (bytes, err) =
        continuous_into(packets, horizon, shards, SnapshotSink::with_format(Vec::new(), format));
    assert!(err.is_none(), "Vec<u8> writes cannot fail");
    bytes
}

/// One shard's run of the distributed scenario: filter the trace to
/// the keys [`shard_of`] assigns to `shard` among `k`, run the
/// per-shard pipeline, and return its snapshot stream in `format` —
/// exactly what that shard's *process* would write. Deterministic: the
/// same `(kind, scale, k, shard, format)` always produces the same
/// bytes.
pub fn shard_stream(
    kind: Kind,
    scale: Scale,
    k: usize,
    shard: usize,
    format: WireFormat,
) -> Vec<u8> {
    shard_stream_on(kind, distagg_trace(scale), scale.compare_duration(), k, shard, format)
}

/// [`shard_stream`] in the v1 JSONL format.
pub fn shard_jsonl(kind: Kind, scale: Scale, k: usize, shard: usize) -> Vec<u8> {
    shard_stream(kind, scale, k, shard, WireFormat::Json)
}

/// [`shard_jsonl`] over an explicit trace (what the integration tests
/// drive with custom trace sizes).
pub fn shard_jsonl_on(
    kind: Kind,
    trace: &[PacketRecord],
    horizon: TimeSpan,
    k: usize,
    shard: usize,
) -> Vec<u8> {
    shard_stream_on(kind, trace, horizon, k, shard, WireFormat::Json)
}

/// [`shard_stream`] over an explicit trace.
pub fn shard_stream_on(
    kind: Kind,
    trace: &[PacketRecord],
    horizon: TimeSpan,
    k: usize,
    shard: usize,
    format: WireFormat,
) -> Vec<u8> {
    assert!(shard < k, "shard index out of range");
    let packets = shard_packets(trace, k, shard);
    let (bytes, err) =
        shard_into(kind, &packets, horizon, shard, SnapshotSink::with_format(Vec::new(), format));
    assert!(err.is_none(), "Vec<u8> writes cannot fail");
    bytes
}

/// The sub-stream [`shard_of`] assigns to `shard` among `k`.
fn shard_packets(trace: &[PacketRecord], k: usize, shard: usize) -> Vec<PacketRecord> {
    trace.iter().copied().filter(|p| shard_of(&p.src, k) == shard).collect()
}

/// One shard's pipeline of the scenario into an arbitrary sink — the
/// medium-agnostic core `shard_stream_on` (bytes) and
/// [`shard_to_addr_on`] (TCP) share.
fn shard_into<S: ReportSink<Ipv4Prefix>>(
    kind: Kind,
    packets: &[PacketRecord],
    horizon: TimeSpan,
    shard: usize,
    sink: S,
) -> S::Output {
    match kind {
        Kind::Exact => windowed_into(packets, horizon, vec![ExactHhh::new(hierarchy())], sink),
        Kind::SsHhh => windowed_into(
            packets,
            horizon,
            vec![SpaceSavingHhh::new(hierarchy(), DISTAGG_CAPACITY)],
            sink,
        ),
        Kind::Rhhh => windowed_into(
            packets,
            horizon,
            vec![Rhhh::new(hierarchy(), DISTAGG_CAPACITY, rhhh_seed(shard))],
            sink,
        ),
        Kind::Tdbf => continuous_into(packets, horizon, 1, sink),
    }
}

/// One shard's run streamed **over TCP** to an aggregator at `addr` —
/// what `distagg shard --connect` does. The transport opens with a
/// hello frame carrying the shard index, so the aggregator folds in
/// shard order no matter who connects first; frames are the detector's
/// **native** encodes (no JSON anywhere on the shard side).
pub fn shard_to_addr(
    kind: Kind,
    scale: Scale,
    k: usize,
    shard: usize,
    addr: &str,
) -> Result<(), TransportError> {
    shard_to_addr_on(kind, distagg_trace(scale), scale.compare_duration(), k, shard, addr)
}

/// [`shard_to_addr`] over an explicit trace.
pub fn shard_to_addr_on(
    kind: Kind,
    trace: &[PacketRecord],
    horizon: TimeSpan,
    k: usize,
    shard: usize,
    addr: &str,
) -> Result<(), TransportError> {
    assert!(shard < k, "shard index out of range");
    let transport = TcpTransport::connect(addr)
        .with_hello(shard as u64, format!("{}/{shard}of{k}", kind.label()));
    let packets = shard_packets(trace, k, shard);
    let (_transport, err) =
        shard_into(kind, &packets, horizon, shard, TransportSink::new(transport));
    match err {
        None => Ok(()),
        Some(e) => Err(e),
    }
}

/// The in-process K-shard reference stream: one sharded pipeline over
/// the whole trace, whose state lines carry the *merged* detector at
/// every report point — what the cross-process fold must reproduce
/// byte-for-byte.
pub fn inprocess_sharded_jsonl(kind: Kind, scale: Scale, k: usize) -> Vec<u8> {
    inprocess_sharded_jsonl_on(kind, distagg_trace(scale), scale.compare_duration(), k)
}

/// [`inprocess_sharded_jsonl`] over an explicit trace.
pub fn inprocess_sharded_jsonl_on(
    kind: Kind,
    packets: &[PacketRecord],
    horizon: TimeSpan,
    k: usize,
) -> Vec<u8> {
    let format = WireFormat::Json;
    match kind {
        Kind::Exact => windowed_stream(
            packets,
            horizon,
            (0..k).map(|_| ExactHhh::new(hierarchy())).collect(),
            format,
        ),
        Kind::SsHhh => windowed_stream(
            packets,
            horizon,
            (0..k).map(|_| SpaceSavingHhh::new(hierarchy(), DISTAGG_CAPACITY)).collect(),
            format,
        ),
        Kind::Rhhh => windowed_stream(
            packets,
            horizon,
            (0..k).map(|s| Rhhh::new(hierarchy(), DISTAGG_CAPACITY, rhhh_seed(s))).collect(),
            format,
        ),
        Kind::Tdbf => continuous_stream(packets, horizon, k, format),
    }
}

/// The unsharded single-process reference reports (series 0 at the
/// scenario threshold).
pub fn single_process_reports(kind: Kind, scale: Scale) -> Vec<WindowReport<Ipv4Prefix>> {
    single_process_reports_on(kind, distagg_trace(scale), scale.compare_duration())
}

/// [`single_process_reports`] over an explicit trace.
pub fn single_process_reports_on(
    kind: Kind,
    packets: &[PacketRecord],
    horizon: TimeSpan,
) -> Vec<WindowReport<Ipv4Prefix>> {
    let mut reports = match kind {
        Kind::Exact => Pipeline::new(packets.iter().copied())
            .engine(Disjoint::new(
                ExactHhh::new(hierarchy()),
                horizon,
                DISTAGG_WINDOW,
                &[distagg_threshold()],
                |p| p.src,
            ))
            .collect()
            .run(),
        Kind::SsHhh => Pipeline::new(packets.iter().copied())
            .engine(Disjoint::new(
                SpaceSavingHhh::new(hierarchy(), DISTAGG_CAPACITY),
                horizon,
                DISTAGG_WINDOW,
                &[distagg_threshold()],
                |p| p.src,
            ))
            .collect()
            .run(),
        Kind::Rhhh => Pipeline::new(packets.iter().copied())
            .engine(Disjoint::new(
                Rhhh::new(hierarchy(), DISTAGG_CAPACITY, rhhh_seed(0)),
                horizon,
                DISTAGG_WINDOW,
                &[distagg_threshold()],
                |p| p.src,
            ))
            .collect()
            .run(),
        Kind::Tdbf => Pipeline::new(packets.iter().copied())
            .engine(Continuous::new(
                TdbfHhh::new(hierarchy(), tdbf_config()),
                &probes(horizon),
                distagg_threshold(),
                |p| p.src,
            ))
            .collect()
            .run(),
    };
    reports.remove(0)
}

/// Fold K shard streams (bytes, as the shard processes wrote them)
/// into merged report points.
pub fn fold_shard_streams(
    streams: &[Vec<u8>],
) -> Result<Vec<MergedPoint<Ipv4Hierarchy>>, hhh_agg::AggError> {
    let mut parsed = Vec::with_capacity(streams.len());
    for (i, bytes) in streams.iter().enumerate() {
        parsed.push(read_stream(i, bytes.as_slice())?);
    }
    fold_streams(&hierarchy(), &parsed)
}

/// One `(kind, K)` verdict of the scenario.
#[derive(Clone, Debug)]
pub struct DistAggRow {
    /// Detector kind label.
    pub detector: &'static str,
    /// Shard/process count.
    pub shards: usize,
    /// Packets in the trace.
    pub packets: u64,
    /// Report points folded.
    pub points: usize,
    /// Snapshots folded across all points and streams.
    pub folded: usize,
    /// Does every folded state re-serialize byte-identically to the
    /// in-process K-shard run's merged state line?
    pub state_identical: bool,
    /// Same check with the shard streams written as **v2 binary
    /// frames**: folding binary streams must land on the identical
    /// merged state (compared after transcoding to JSON).
    pub state_identical_v2: bool,
    /// Mean per-point Jaccard similarity of the merged HHH sets
    /// against the unsharded single-process run.
    pub jaccard_vs_single: f64,
    /// For `exact`: are the merged HHH reports (prefixes, estimates,
    /// discounts) identical to the single-process run's? Approximate
    /// kinds report `false` only when `jaccard_vs_single` is also
    /// degraded, so the table prints `-` for them.
    pub reports_identical: bool,
}

/// Run the full scenario at `scale` for every kind at each shard count
/// in `ks`.
pub fn run_distagg(scale: Scale, ks: &[usize]) -> Vec<DistAggRow> {
    run_distagg_on(distagg_trace(scale), scale.compare_duration(), ks, &KINDS)
}

/// [`run_distagg`] over an explicit trace and kind subset.
pub fn run_distagg_on(
    trace: &[PacketRecord],
    horizon: TimeSpan,
    ks: &[usize],
    kinds: &[Kind],
) -> Vec<DistAggRow> {
    let packets = trace.len() as u64;
    let mut rows = Vec::new();
    for &kind in kinds {
        let single = single_process_reports_on(kind, trace, horizon);
        for &k in ks {
            let streams: Vec<Vec<u8>> =
                (0..k).map(|i| shard_jsonl_on(kind, trace, horizon, k, i)).collect();
            let points = fold_shard_streams(&streams).expect("shard streams fold");
            let folded = points.iter().map(|p| p.folded).sum();

            // Byte-identity vs the in-process sharded run.
            let reference =
                read_stream(0, inprocess_sharded_jsonl_on(kind, trace, horizon, k).as_slice())
                    .expect("in-process stream parses");
            let state_of = |r: &hhh_core::WireSnapshot| {
                r.to_stamped().expect("reference state decodes").snapshot.to_json()
            };
            let state_identical = reference.len() == points.len()
                && points
                    .iter()
                    .zip(&reference)
                    .all(|(p, r)| p.at == r.at() && p.detector.snapshot().to_json() == state_of(r));

            // The same fold over v2 binary shard streams must land on
            // the identical merged state (the wire-format v2 parity
            // contract).
            let bin_streams: Vec<Vec<u8>> = (0..k)
                .map(|i| shard_stream_on(kind, trace, horizon, k, i, WireFormat::Binary))
                .collect();
            let bin_points = fold_shard_streams(&bin_streams).expect("binary shard streams fold");
            let state_identical_v2 = reference.len() == bin_points.len()
                && bin_points.iter().zip(&reference).all(|(p, r)| {
                    p.at == r.at()
                        && p.start == r.start()
                        && p.detector.snapshot().to_json() == state_of(r)
                });

            // Report agreement vs the unsharded run — including the
            // window bounds, which state records now carry.
            assert_eq!(points.len(), single.len(), "report point counts differ");
            let mut jac_sum = 0.0;
            let mut identical = true;
            for (i, (p, s)) in points.iter().zip(&single).enumerate() {
                let merged = p.report(i as u64, distagg_threshold());
                jac_sum += jaccard(&merged.prefix_set(), &s.prefix_set());
                identical &= merged.hhhs == s.hhhs
                    && merged.total == s.total
                    && merged.start == s.start
                    && merged.end == s.end;
            }
            rows.push(DistAggRow {
                detector: kind.label(),
                shards: k,
                packets,
                points: points.len(),
                folded,
                state_identical,
                state_identical_v2,
                jaccard_vs_single: jac_sum / points.len().max(1) as f64,
                reports_identical: identical,
            });
        }
    }
    rows
}

/// Render scenario rows as an aligned text table.
pub fn distagg_table(rows: &[DistAggRow]) -> String {
    let mut t = Table::new(vec![
        "detector",
        "shards",
        "points",
        "folded",
        "state==inproc",
        "state==inproc(v2)",
        "jaccard-vs-1proc",
        "reports==1proc",
    ]);
    for r in rows {
        t.row(vec![
            r.detector.to_string(),
            r.shards.to_string(),
            r.points.to_string(),
            r.folded.to_string(),
            r.state_identical.to_string(),
            r.state_identical_v2.to_string(),
            fmt_f(r.jaccard_vs_single, 4),
            if r.detector == "exact" { r.reports_identical.to_string() } else { "-".to_string() },
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Socket scenario
// ---------------------------------------------------------------------

/// One `(kind, K)` verdict of the **socket** scenario (`distagg
/// socket`): the K-shard parity check run end-to-end over localhost
/// TCP.
#[derive(Clone, Debug)]
pub struct SocketRow {
    /// Detector kind label.
    pub detector: &'static str,
    /// Shard (connection) count.
    pub shards: usize,
    /// Report points folded from the socket streams.
    pub points: usize,
    /// Snapshots folded across all connections.
    pub folded: usize,
    /// Is the socket fold's rendered output (merged reports + re-
    /// emitted states) **byte-identical** to folding the same shards'
    /// stream files?
    pub socket_eq_file: bool,
    /// Does every socket-folded state re-serialize byte-identically to
    /// the in-process K-shard run's merged state line?
    pub state_identical: bool,
}

/// Run the socket scenario at `scale` for every kind at each shard
/// count in `ks`: K shard pipelines stream natively encoded v2 frames
/// over localhost TCP into one listener, the listener's fold is
/// compared byte-for-byte against the file-based fold and the
/// in-process sharded run.
pub fn run_socket(scale: Scale, ks: &[usize]) -> Vec<SocketRow> {
    run_socket_on(distagg_trace(scale), scale.compare_duration(), ks, &KINDS)
}

/// [`run_socket`] over an explicit trace and kind subset.
pub fn run_socket_on(
    trace: &[PacketRecord],
    horizon: TimeSpan,
    ks: &[usize],
    kinds: &[Kind],
) -> Vec<SocketRow> {
    let mut rows = Vec::new();
    for &kind in kinds {
        for &k in ks {
            let listener = TcpFrameListener::bind("127.0.0.1:0")
                .expect("bind localhost listener")
                .with_timeout(std::time::Duration::from_secs(600));
            let addr = listener.local_addr().expect("bound address").to_string();

            // K concurrent shard pipelines, each its own connection —
            // exactly what K shard processes would do.
            let streams = std::thread::scope(|s| {
                let handles: Vec<_> = (0..k)
                    .map(|i| {
                        let addr = addr.clone();
                        s.spawn(move || shard_to_addr_on(kind, trace, horizon, k, i, &addr))
                    })
                    .collect();
                let streams = collect_socket_streams(listener, k).expect("socket streams");
                for h in handles {
                    h.join().expect("shard thread").expect("shard transport");
                }
                streams
            });
            let folded: usize = streams.iter().map(Vec::len).sum();
            let socket_points = fold_streams(&hierarchy(), &streams).expect("socket streams fold");

            // Byte-identity vs the file-based fold of the same shards.
            let file_streams: Vec<Vec<u8>> = (0..k)
                .map(|i| shard_stream_on(kind, trace, horizon, k, i, WireFormat::Binary))
                .collect();
            let file_points = fold_shard_streams(&file_streams).expect("file streams fold");
            let render = |points: &[MergedPoint<Ipv4Hierarchy>]| {
                let mut out = Vec::new();
                write_merged(&mut out, points, &[distagg_threshold()], true, WireFormat::Json)
                    .expect("merged points render");
                out
            };
            let socket_eq_file = render(&socket_points) == render(&file_points);

            // Byte-identity vs the in-process K-shard run.
            let reference =
                read_stream(0, inprocess_sharded_jsonl_on(kind, trace, horizon, k).as_slice())
                    .expect("in-process stream parses");
            let state_of = |r: &hhh_core::WireSnapshot| {
                r.to_stamped().expect("reference state decodes").snapshot.to_json()
            };
            let state_identical = reference.len() == socket_points.len()
                && socket_points.iter().zip(&reference).all(|(p, r)| {
                    p.at == r.at()
                        && p.start == r.start()
                        && p.detector.snapshot().to_json() == state_of(r)
                });

            rows.push(SocketRow {
                detector: kind.label(),
                shards: k,
                points: socket_points.len(),
                folded,
                socket_eq_file,
                state_identical,
            });
        }
    }
    rows
}

/// Render socket scenario rows as an aligned text table.
pub fn socket_table(rows: &[SocketRow]) -> String {
    let mut t =
        Table::new(vec!["detector", "shards", "points", "folded", "socket==file", "state==inproc"]);
    for r in rows {
        t.row(vec![
            r.detector.to_string(),
            r.shards.to_string(),
            r.points.to_string(),
            r.folded.to_string(),
            r.socket_eq_file.to_string(),
            r.state_identical.to_string(),
        ]);
    }
    t.render()
}

// ---------------------------------------------------------------------
// Codec bench
// ---------------------------------------------------------------------

/// One measured codec operation.
#[derive(Clone, Debug)]
pub struct CodecBenchRow {
    /// Detector kind label.
    pub detector: &'static str,
    /// `encode` (state → wire), `decode` (wire → restored detector),
    /// or `fold/K` (parse + fold K shard streams).
    pub op: String,
    /// Wire format the operation ran in (`json` = v1, `binary` = v2).
    pub format: &'static str,
    /// Streams folded (1 for encode/decode).
    pub shards: usize,
    /// Operations (snapshots encoded/decoded, or state records folded).
    pub items: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Items per second.
    pub per_sec: f64,
    /// Wire bytes of one encoded snapshot (encode/decode rows), or of
    /// all folded input streams (fold rows).
    pub bytes: u64,
}

fn timed<T>(mut f: impl FnMut() -> T) -> (f64, u64) {
    // Repeat until the measurement dwarfs timer noise.
    let mut iters: u64 = 0;
    let start = std::time::Instant::now();
    loop {
        std::hint::black_box(f());
        iters += 1;
        let s = start.elapsed().as_secs_f64();
        if s >= 0.2 || iters >= 10_000 {
            return (s, iters);
        }
    }
}

/// A representative per-report-point snapshot for a kind: the state
/// a detector holds after one report window of the scenario trace.
fn sample_snapshot(kind: Kind, packets: &[PacketRecord]) -> hhh_core::DetectorSnapshot {
    let in_window = packets.iter().take_while(|p| p.ts < Nanos::ZERO + DISTAGG_WINDOW).copied();
    match kind {
        Kind::Exact => {
            let mut d = ExactHhh::new(hierarchy());
            for p in in_window {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, u64::from(p.wire_len));
            }
            d.snapshot()
        }
        Kind::SsHhh => {
            let mut d = SpaceSavingHhh::new(hierarchy(), DISTAGG_CAPACITY);
            for p in in_window {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, u64::from(p.wire_len));
            }
            d.snapshot()
        }
        Kind::Rhhh => {
            let mut d = Rhhh::new(hierarchy(), DISTAGG_CAPACITY, rhhh_seed(0));
            for p in in_window {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, u64::from(p.wire_len));
            }
            d.snapshot()
        }
        Kind::Tdbf => {
            let mut d = TdbfHhh::new(hierarchy(), tdbf_config());
            for p in in_window {
                hhh_core::ContinuousDetector::<Ipv4Hierarchy>::observe(
                    &mut d,
                    p.ts,
                    p.src,
                    u64::from(p.wire_len),
                );
            }
            MergeableDetector::snapshot(&d)
        }
    }
    .expect("all four kinds serialize")
}

/// Measure snapshot encode/decode cost per detector **in both wire
/// formats** and aggregator fold throughput (state records per second)
/// at each shard count in `ks` — the numbers `BENCH_pr5.json` commits.
/// The PR-4 acceptance line was the `decode` pair for `tdbf-hhh` (v2
/// ≥ 10× over v1); the PR-5 line is `encode-native` vs
/// `encode-transcode` per kind — the v2 encode side no longer paying
/// the JSON render + parse.
pub fn codec_bench(scale: Scale, ks: &[usize]) -> Vec<CodecBenchRow> {
    let h = hierarchy();
    let packets = distagg_trace(scale);
    let mut rows = Vec::new();
    let window_start = Nanos::ZERO;
    let window_end = Nanos::ZERO + DISTAGG_WINDOW;
    for &kind in &KINDS {
        let snap = sample_snapshot(kind, packets);
        let line = snap.to_json();
        let frame_bytes = snap.to_frame(window_start, window_end).expect("transcodes").encode();
        // A live detector holding the same state, for the native
        // (`FrameEncode`) encode path.
        let restored = hhh_core::RestoredDetector::from_snapshot(&h, &snap).expect("restores");
        assert_eq!(
            restored.to_frame(window_start, window_end).expect("native-encodes").encode(),
            frame_bytes,
            "native and transcode encodes must write identical bytes"
        );

        // encode: detector state -> wire bytes. v1 renders JSON;
        // `encode-transcode` is the PR-4 v2 path (render the JSON
        // body, parse it back, pack a frame); `encode-native` is the
        // FrameEncode path (detector state -> frame body directly).
        let (s, n) = timed(|| snap.to_json());
        rows.push(CodecBenchRow {
            detector: kind.label(),
            op: "encode".into(),
            format: "json",
            shards: 1,
            items: n,
            seconds: s,
            per_sec: n as f64 / s,
            bytes: line.len() as u64 + 1,
        });
        let (s, n) =
            timed(|| snap.to_frame(window_start, window_end).expect("transcodes").encode());
        rows.push(CodecBenchRow {
            detector: kind.label(),
            op: "encode-transcode".into(),
            format: "binary",
            shards: 1,
            items: n,
            seconds: s,
            per_sec: n as f64 / s,
            bytes: frame_bytes.len() as u64,
        });
        let (s, n) =
            timed(|| restored.to_frame(window_start, window_end).expect("native-encodes").encode());
        rows.push(CodecBenchRow {
            detector: kind.label(),
            op: "encode-native".into(),
            format: "binary",
            shards: 1,
            items: n,
            seconds: s,
            per_sec: n as f64 / s,
            bytes: frame_bytes.len() as u64,
        });

        // decode: wire bytes -> restored live detector.
        let (s, n) = timed(|| {
            let parsed = hhh_core::DetectorSnapshot::from_json(&line).expect("parses");
            hhh_core::RestoredDetector::from_snapshot(&h, &parsed).expect("restores")
        });
        rows.push(CodecBenchRow {
            detector: kind.label(),
            op: "decode".into(),
            format: "json",
            shards: 1,
            items: n,
            seconds: s,
            per_sec: n as f64 / s,
            bytes: line.len() as u64 + 1,
        });
        let (s, n) = timed(|| {
            let (frame, _) = hhh_core::SnapshotFrame::decode(&frame_bytes).expect("frame decodes");
            hhh_core::RestoredDetector::from_frame(&h, &frame).expect("restores")
        });
        rows.push(CodecBenchRow {
            detector: kind.label(),
            op: "decode".into(),
            format: "binary",
            shards: 1,
            items: n,
            seconds: s,
            per_sec: n as f64 / s,
            bytes: frame_bytes.len() as u64,
        });

        // fold/K: parse + fold K whole shard streams, per format.
        for &k in ks {
            for format in [WireFormat::Json, WireFormat::Binary] {
                let streams: Vec<Vec<u8>> =
                    (0..k).map(|i| shard_stream(kind, scale, k, i, format)).collect();
                let records: u64 = streams
                    .iter()
                    .map(|b| read_stream(0, b.as_slice()).expect("stream parses").len() as u64)
                    .sum();
                let wire_bytes: u64 = streams.iter().map(|b| b.len() as u64).sum();
                let start = std::time::Instant::now();
                let mut reps: u64 = 0;
                loop {
                    std::hint::black_box(fold_shard_streams(&streams).expect("folds"));
                    reps += 1;
                    if start.elapsed().as_secs_f64() >= 0.2 || reps >= 100 {
                        break;
                    }
                }
                let s = start.elapsed().as_secs_f64();
                rows.push(CodecBenchRow {
                    detector: kind.label(),
                    op: format!("fold/{k}"),
                    format: format.label(),
                    shards: k,
                    items: records * reps,
                    seconds: s,
                    per_sec: (records * reps) as f64 / s,
                    bytes: wire_bytes,
                });
            }
        }
    }
    rows
}

/// Render bench rows as JSON lines for `BENCH_pr4.json`.
pub fn codec_bench_json(rows: &[CodecBenchRow], scale: Scale) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{{\"experiment\": \"snapshot_codec\", \"scale\": \"{}\", \"detector\": \"{}\", \
             \"op\": \"{}\", \"format\": \"{}\", \"shards\": {}, \"items\": {}, \
             \"seconds\": {:.6}, \"per_sec\": {:.1}, \"bytes\": {}}}\n",
            scale.label(),
            r.detector,
            r.op,
            r.format,
            r.shards,
            r.items,
            r.seconds,
            r.per_sec,
            r.bytes,
        ));
    }
    out
}

/// Render bench rows as an aligned text table.
pub fn codec_bench_table(rows: &[CodecBenchRow]) -> String {
    let mut t = Table::new(vec![
        "detector", "op", "format", "shards", "items", "seconds", "items/s", "bytes",
    ]);
    for r in rows {
        t.row(vec![
            r.detector.to_string(),
            r.op.clone(),
            r.format.to_string(),
            r.shards.to_string(),
            r.items.to_string(),
            fmt_f(r.seconds, 3),
            format!("{:.0}", r.per_sec),
            r.bytes.to_string(),
        ]);
    }
    t.render()
}
