//! Experiment E2 — the paper's **Figure 3**: how micro-variations in
//! the window size change the reported HHH set.
//!
//! Method (paper §2, "Micro variations…"): 20-minute trace, baseline
//! disjoint window of 10 s, variant windows 10–100 ms *shorter* with
//! the same start points, HHH threshold 5 % of the traffic in each
//! window. For every (window index, delta) pair compute the Jaccard
//! similarity between the baseline window's HHH set and the shortened
//! window's; plot the ECDF of similarities per delta.
//!
//! Expected shape: ECDFs order by delta — bigger deltas, lower
//! similarity. The paper's headline: 100 ms- and 40 ms-shorter windows
//! differ by ≥25 % and ≥11 % respectively in at least 70 % of windows.

use crate::Scale;
use hhh_analysis::{csv, fmt_f, jaccard_reports, Ecdf, Table};
use hhh_core::Threshold;
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::TimeSpan;
use hhh_trace::{scenarios, TraceGenerator};
use hhh_window::{MicroVaried, Pipeline};

/// The baseline window (paper: 10 s).
pub const BASE_WINDOW: TimeSpan = TimeSpan::from_secs(10);
/// The deltas (paper: 10–100 ms, we sweep every 10 ms).
pub fn deltas() -> Vec<TimeSpan> {
    (1..=10).map(|k| TimeSpan::from_millis(k * 10)).collect()
}
/// The threshold (paper: 5 %).
pub const THRESHOLD_PCT: f64 = 5.0;

/// Figure 3's data: per delta, the per-window Jaccard similarities and
/// their ECDF.
#[derive(Clone, Debug)]
pub struct Fig3Results {
    /// `(delta, similarities per window index)`, in delta order.
    pub series: Vec<(TimeSpan, Vec<f64>)>,
    /// Number of baseline windows compared.
    pub windows: usize,
    /// Scale the experiment ran at.
    pub scale: Scale,
}

/// Run E2: single pass over one trace via the micro-varied driver.
pub fn run(scale: Scale) -> Fig3Results {
    let horizon = scale.microvar_duration();
    // Day-0 parameterization, dedicated seed (the paper uses a
    // separate 20-minute trace for this experiment).
    let model = scenarios::day_trace(0, horizon);
    let packets = TraceGenerator::new(model, 0xF193);
    // Bit-granularity: the canonical exact-HHH hierarchy for IP
    // addresses (33 levels). Micro-variation sensitivity is strongly
    // granularity-dependent — every heavy subtree has a "transition"
    // level whose discounted residual sits marginally at the threshold,
    // and those members are the ones ms-scale window changes flip.
    // (The 5-level byte hierarchy is much more robust; EXPERIMENTS.md
    // quantifies both.)
    let hierarchy = Ipv4Hierarchy::bits();
    let ds = deltas();
    // Series 0 is the baseline; series 1 + i is delta i.
    let out = Pipeline::new(packets)
        .engine(MicroVaried::new(
            &hierarchy,
            horizon,
            BASE_WINDOW,
            &ds,
            Threshold::percent(THRESHOLD_PCT),
            |p| p.src,
        ))
        .collect()
        .run();
    let baseline = &out[0];
    let windows = baseline.len();
    let series = ds
        .iter()
        .enumerate()
        .map(|(i, delta)| {
            let sims: Vec<f64> =
                baseline.iter().zip(&out[1 + i]).map(|(b, v)| jaccard_reports(b, v)).collect();
            (*delta, sims)
        })
        .collect();
    Fig3Results { series, windows, scale }
}

impl Fig3Results {
    /// The ECDF of (1 − Jaccard) "difference" values for a delta.
    pub fn difference_ecdf(&self, delta: TimeSpan) -> Ecdf {
        let (_, sims) = self
            .series
            .iter()
            .find(|(d, _)| *d == delta)
            .unwrap_or_else(|| panic!("no series for delta {delta}"));
        Ecdf::new(sims.iter().map(|s| 1.0 - s).collect())
    }

    /// Fraction of windows whose sets differ by at least `diff`
    /// (1 − Jaccard ≥ diff) for a delta — the paper's "differs by X%
    /// in at least Y% of the cases" statistic.
    pub fn fraction_differing_by(&self, delta: TimeSpan, diff: f64) -> f64 {
        let e = self.difference_ecdf(delta);
        1.0 - e.eval(diff - 1e-12)
    }

    /// The per-delta similarity quantile table (the figure, as text).
    pub fn table(&self) -> String {
        let mut t = Table::new(vec![
            "delta",
            "median J",
            "p30 J",
            "mean diff %",
            "windows ≥10% diff",
            "windows ≥25% diff",
        ]);
        for (delta, sims) in &self.series {
            let e = Ecdf::new(sims.clone());
            let diffs: Vec<f64> = sims.iter().map(|s| (1.0 - s) * 100.0).collect();
            t.row(vec![
                format!("{delta}"),
                fmt_f(e.quantile(0.5), 3),
                fmt_f(e.quantile(0.3), 3),
                fmt_f(hhh_analysis::mean(&diffs), 1),
                fmt_f(self.fraction_differing_by(*delta, 0.10) * 100.0, 1),
                fmt_f(self.fraction_differing_by(*delta, 0.25) * 100.0, 1),
            ]);
        }
        t.render()
    }

    /// CSV of the similarity ECDFs on a fixed grid (one column per
    /// delta), ready for plotting as Figure 3.
    pub fn to_csv(&self) -> String {
        let grid_steps = 50;
        let headers: Vec<String> = std::iter::once("similarity".to_string())
            .chain(self.series.iter().map(|(d, _)| format!("cdf_delta_{d}")))
            .collect();
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let ecdfs: Vec<Ecdf> = self.series.iter().map(|(_, s)| Ecdf::new(s.clone())).collect();
        let rows: Vec<Vec<String>> = (0..=grid_steps)
            .map(|i| {
                let x = i as f64 / grid_steps as f64;
                std::iter::once(format!("{x:.3}"))
                    .chain(ecdfs.iter().map(|e| format!("{:.4}", e.eval(x))))
                    .collect()
            })
            .collect();
        csv::to_csv_string(&header_refs, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shapes() {
        let res = run(Scale::Smoke);
        assert_eq!(res.series.len(), 10, "ten deltas");
        assert!(res.windows >= 10, "need enough windows for an ECDF");
        for (_, sims) in &res.series {
            assert_eq!(sims.len(), res.windows);
            assert!(sims.iter().all(|s| (0.0..=1.0).contains(s)));
        }
        // Monotone trend: the mean similarity for the largest delta
        // must not exceed the mean for the smallest.
        let mean_small = hhh_analysis::mean(&res.series.first().unwrap().1);
        let mean_large = hhh_analysis::mean(&res.series.last().unwrap().1);
        assert!(
            mean_large <= mean_small + 1e-9,
            "100 ms delta ({mean_large}) should disturb at least as much as 10 ms ({mean_small})"
        );
        assert!(res.table().contains("delta"));
        let csv = res.to_csv();
        assert!(csv.starts_with("similarity,"));
        assert_eq!(csv.lines().count(), 52);
    }
}
