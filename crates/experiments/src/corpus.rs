//! The **codec test corpus** generator: committed wire-format
//! exemplars under `tests/golden/snapshots/`.
//!
//! For every snapshot-capable detector kind the corpus holds one v1
//! JSONL stream and one v2 binary frame stream — produced by the real
//! pipeline + both snapshot sinks over a tiny deterministic trace, so
//! the committed bytes are exactly what the shipping encoders write —
//! plus a `malformed/` directory of v2 frames broken in each
//! documented way (truncation, bad magic, version skew, config-digest
//! mismatch, oversize length prefix).
//!
//! `tests/codec_corpus.rs` decodes every file and asserts the exact
//! [`SnapshotError`](hhh_core::SnapshotError) variants; the CI
//! corpus-freshness step re-runs [`write_corpus`] and diffs the output
//! against the committed tree, so the wire formats cannot drift
//! silently.

use hhh_core::snapshot::binary::SnapshotFrame;
use hhh_core::{
    DetectorSnapshot, ExactHhh, MvPipeHhh, Rhhh, SpaceSavingHhh, TdbfHhh, TdbfHhhConfig, Threshold,
    WireFormat,
};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::{Nanos, PacketRecord, TimeSpan};
use hhh_window::{Pipeline, ShardedContinuous, ShardedDisjoint, SnapshotSink};
use std::fs;
use std::io;
use std::path::Path;

/// Report window of the corpus streams.
const WINDOW: TimeSpan = TimeSpan::from_secs(5);

/// Space-Saving counters of the corpus `ss-hhh`/`rhhh` detectors.
const CAPACITY: usize = 32;

/// Majority-vote buckets of the corpus `mvpipe` detector — deliberately
/// small so the committed stream exercises bucket collisions.
const MVPIPE_BUCKETS: usize = 32;

/// The corpus trace: ~200 packets, a couple of heavy sources over a
/// thin tail — small enough to keep the committed files readable,
/// rich enough that every detector has non-trivial state.
fn corpus_trace() -> Vec<PacketRecord> {
    let mut out = Vec::new();
    for i in 0..200u64 {
        let ts = Nanos::from_millis(i * 20); // 0 .. 4 s
        let src: u32 = match i % 10 {
            0..=3 => 0x0A01_0101,                      // 10.1.1.1 — heavy
            4 | 5 => 0x0A01_0202,                      // 10.1.2.2 — moderate
            _ => 0x1400_0000 | ((i as u32 * 37) % 32), // 20.0.0.x — tail
        };
        out.push(PacketRecord::new(ts, src, 1, 100 + (i % 5) as u32 * 50));
    }
    out
}

fn tdbf_config() -> TdbfHhhConfig {
    TdbfHhhConfig {
        cells_per_level: 256,
        hashes: 2,
        half_life: WINDOW / 2,
        candidates_per_level: 16,
        admit_fraction: 0.001,
        seed: 0x7DBF,
    }
}

/// One corpus stream: the tiny trace through the real pipeline and the
/// real sink, in the requested format. `kind` must be one of the five
/// snapshot-capable labels.
pub fn corpus_stream(kind: &str, format: WireFormat) -> Vec<u8> {
    let h = Ipv4Hierarchy::bytes();
    let trace = corpus_trace();
    let threshold = [Threshold::percent(5.0)];
    let sink = SnapshotSink::with_format(Vec::new(), format);
    let (bytes, err) = match kind {
        "exact" => Pipeline::new(trace.iter().copied())
            .engine(ShardedDisjoint::new(vec![ExactHhh::new(h)], WINDOW, WINDOW, &threshold, |p| {
                p.src
            }))
            .sink(sink)
            .run(),
        "ss-hhh" => Pipeline::new(trace.iter().copied())
            .engine(ShardedDisjoint::new(
                vec![SpaceSavingHhh::new(h, CAPACITY)],
                WINDOW,
                WINDOW,
                &threshold,
                |p| p.src,
            ))
            .sink(sink)
            .run(),
        "rhhh" => Pipeline::new(trace.iter().copied())
            .engine(ShardedDisjoint::new(
                vec![Rhhh::new(h, CAPACITY, 0x5EED)],
                WINDOW,
                WINDOW,
                &threshold,
                |p| p.src,
            ))
            .sink(sink)
            .run(),
        "mvpipe" => Pipeline::new(trace.iter().copied())
            .engine(ShardedDisjoint::new(
                vec![MvPipeHhh::new(h, MVPIPE_BUCKETS)],
                WINDOW,
                WINDOW,
                &threshold,
                |p| p.src,
            ))
            .sink(sink)
            .run(),
        "tdbf-hhh" => Pipeline::new(trace.iter().copied())
            .engine(ShardedContinuous::new(
                vec![TdbfHhh::new(h, tdbf_config())],
                &[Nanos::ZERO + WINDOW],
                threshold[0],
                |p| p.src,
            ))
            .sink(sink)
            .run(),
        other => panic!("unknown corpus kind `{other}`"),
    };
    assert!(err.is_none(), "Vec<u8> writes cannot fail");
    bytes
}

/// The five corpus detector kinds, in file order.
pub const CORPUS_KINDS: [&str; 5] = ["exact", "ss-hhh", "rhhh", "mvpipe", "tdbf-hhh"];

/// The malformed-case file names under `malformed/`.
pub const MALFORMED_CASES: [&str; 7] = [
    "truncated.v2.bin",
    "bad_magic.v2.bin",
    "version_skew.v2.bin",
    "config_mismatch.v2.bin",
    "oversize_len.v2.bin",
    "mvpipe_total_skew.v2.bin",
    "mvpipe_vote_overflow.v2.bin",
];

/// The state frame of a kind's v2 corpus stream (skipping any report
/// frames in front of it).
fn state_frame_of(kind: &str) -> SnapshotFrame {
    let stream = corpus_stream(kind, WireFormat::Binary);
    let mut rest = &stream[..];
    loop {
        let (frame, used) = SnapshotFrame::decode(rest).expect("corpus stream decodes");
        if frame.kind == kind {
            return frame;
        }
        rest = &rest[used..];
    }
}

/// The state frame of the `tdbf-hhh` v2 corpus stream — the donor of
/// the generic malformed cases (it is the kind with the most
/// configuration to corrupt).
fn donor_state_frame() -> (SnapshotFrame, Vec<u8>) {
    let frame = state_frame_of("tdbf-hhh");
    let bytes = frame.encode();
    (frame, bytes)
}

/// Write the whole corpus under `dir` (creating `dir` and
/// `dir/malformed/`). Deterministic: re-running reproduces every byte,
/// which is exactly what the CI freshness check asserts.
pub fn write_corpus(dir: &Path) -> io::Result<()> {
    let malformed = dir.join("malformed");
    fs::create_dir_all(&malformed)?;

    for kind in CORPUS_KINDS {
        fs::write(dir.join(format!("{kind}.v1.jsonl")), corpus_stream(kind, WireFormat::Json))?;
        fs::write(dir.join(format!("{kind}.v2.bin")), corpus_stream(kind, WireFormat::Binary))?;
    }

    let (frame, good) = donor_state_frame();

    // Truncated: the frame cut mid-payload.
    fs::write(malformed.join("truncated.v2.bin"), &good[..good.len() * 3 / 5])?;

    // Bad magic: the first four bytes are not the frame magic.
    let mut bad_magic = good.clone();
    bad_magic[..4].copy_from_slice(b"NOPE");
    fs::write(malformed.join("bad_magic.v2.bin"), &bad_magic)?;

    // Version skew: a frame from a future format version.
    let mut skew = good.clone();
    skew[4] = 3;
    fs::write(malformed.join("version_skew.v2.bin"), &skew)?;

    // Config mismatch: the header digest disagrees with the body's
    // configuration fields.
    let mut mismatch = frame.clone();
    mismatch.digest ^= 0xDEAD_BEEF;
    fs::write(malformed.join("config_mismatch.v2.bin"), mismatch.encode())?;

    // Oversize length prefix: a hostile allocation request.
    let mut oversize =
        good[..SnapshotFrame::decode(&good).map(|(_, n)| n).unwrap_or(9).min(9)].to_vec();
    oversize.resize(9, 0);
    oversize[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
    fs::write(malformed.join("oversize_len.v2.bin"), &oversize)?;

    // Envelope-total skew: a well-formed mvpipe frame whose header
    // total no longer equals the sum of its bucket counts — the frame
    // decodes, but rebuilding the detector must refuse it.
    let mut skewed = state_frame_of("mvpipe");
    skewed.total += 1;
    fs::write(malformed.join("mvpipe_total_skew.v2.bin"), skewed.encode())?;

    // Vote overflow: an mvpipe body claiming a vote margin larger than
    // its bucket count — impossible from an honest encoder, so the
    // restorer must reject the row.
    let geometry = state_frame_of("mvpipe");
    let overflow = DetectorSnapshot {
        kind: "mvpipe".into(),
        total: 5,
        state_json: "{\"buckets\":8,\"entries\":[[\"10.1.1.1/32\",5,9]]}".to_owned(),
    };
    let overflow_frame =
        overflow.to_frame(geometry.start, geometry.at).expect("shape-valid body transcodes");
    fs::write(malformed.join("mvpipe_vote_overflow.v2.bin"), overflow_frame.encode())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic() {
        for kind in CORPUS_KINDS {
            assert_eq!(
                corpus_stream(kind, WireFormat::Json),
                corpus_stream(kind, WireFormat::Json),
                "{kind} v1"
            );
            assert_eq!(
                corpus_stream(kind, WireFormat::Binary),
                corpus_stream(kind, WireFormat::Binary),
                "{kind} v2"
            );
        }
    }

    #[test]
    fn corpus_streams_hold_one_state_record() {
        use hhh_window::SnapshotSource;
        for kind in CORPUS_KINDS {
            for format in [WireFormat::Json, WireFormat::Binary] {
                let bytes = corpus_stream(kind, format);
                let mut src = SnapshotSource::new(bytes.as_slice());
                let states: Vec<_> = (&mut src).collect();
                assert!(src.error().is_none(), "{kind} {format:?}: {:?}", src.error());
                assert_eq!(states.len(), 1, "{kind} {format:?}");
                assert_eq!(states[0].kind(), kind);
            }
        }
    }
}
