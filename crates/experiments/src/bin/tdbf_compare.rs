//! Run the §3 comparison: the windowless TDBF proof of concept against
//! existing solutions on accuracy, performance and resource
//! utilization.
//!
//! Usage: `tdbf_compare [smoke|quick|paper]`

use hhh_experiments::{compare, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!(
        "tdbf_compare: scale={} ({} trace; 10 s window; 5% threshold; probes every 1 s)",
        scale.label(),
        scale.compare_duration(),
    );
    let t0 = std::time::Instant::now();
    let res = compare::run(scale);
    eprintln!(
        "tdbf_compare: done in {:.1}s over {} packets",
        t0.elapsed().as_secs_f64(),
        res.packets
    );

    println!("== E3a — accuracy vs the exact trailing-window oracle (probes every 1 s) ==\n");
    print!("{}", res.accuracy_table());
    println!(
        "\n(recall@aligned: probes on disjoint boundaries, where windowed detectors are \
         freshest; the overall/aligned gap is the staleness cost of disjoint windows)\n"
    );
    println!("== E3b — per-packet update cost ==\n");
    print!("{}", res.performance_table());
    println!("\n== E3c — resource utilization ==\n");
    print!("{}", res.resources_table());
}
