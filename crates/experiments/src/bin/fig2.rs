//! Regenerate the paper's **Figure 2**: percentage of hidden HHHs per
//! window size and threshold.
//!
//! Usage: `fig2 [smoke|quick|paper] [--csv]`

use hhh_experiments::{fig2, Scale};

fn main() {
    let scale = Scale::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    eprintln!(
        "fig2: hidden HHHs, scale={} (4 days × {} each; windows 5/10/20 s; step 1 s; thresholds 1/5/10%)",
        scale.label(),
        scale.day_duration(),
    );
    let t0 = std::time::Instant::now();
    let res = fig2::run(scale);
    eprintln!("fig2: done in {:.1}s", t0.elapsed().as_secs_f64());

    if csv {
        print!("{}", res.to_csv());
        return;
    }
    println!("== Figure 2 — % of HHHs hidden from disjoint windows (per day) ==\n");
    print!("{}", res.table());
    println!("\n== Figure 2 — summary bands over the four days ==\n");
    print!("{}", res.summary());
    println!(
        "\npaper's finding at this point: up to 34% hidden overall; 24–34% at the 1% \
         threshold and 18–24% at 5% (CAIDA Tier-1 traces; shapes, not absolutes, are \
         expected to transfer to synthetic traffic — see EXPERIMENTS.md)"
    );
}
