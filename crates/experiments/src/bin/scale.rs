//! E-scale — the shard-count sweep over the batched, mergeable
//! ingestion pipeline, and the sliding-window pkts/s scoreboard.
//!
//! ```text
//! cargo run --release -p hhh-experiments --bin scale -- [smoke|quick|paper] [out.json]
//! cargo run --release -p hhh-experiments --bin scale -- sliding [smoke|quick|paper] [out.json]
//! ```
//!
//! Prints the throughput/fidelity table; with an output path, also
//! writes the rows as JSON lines (the formats committed as
//! `BENCH_pr1.json` and `BENCH_pr6.json`).

use hhh_experiments::{shard_sweep, sliding_scoreboard, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let sliding = args.first().is_some_and(|a| a == "sliding");
    let rest = if sliding { &args[1..] } else { &args[..] };
    let scale = rest.first().and_then(|a| Scale::parse(a)).unwrap_or(Scale::Quick);
    let out = rest.get(1).cloned();
    eprintln!(
        "{} at scale '{}' on {} hardware thread(s)…",
        if sliding { "sliding scoreboard" } else { "shard sweep" },
        scale.label(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let (table, json) = if sliding {
        let results = sliding_scoreboard(scale);
        (results.table(), results.json_lines())
    } else {
        let results = shard_sweep(scale);
        (results.table(), results.json_lines())
    };
    print!("{table}");
    if let Some(path) = out {
        std::fs::write(&path, json).expect("write JSON output");
        eprintln!("wrote {path}");
    }
}
