//! E-scale — the shard-count sweep over the batched, mergeable
//! ingestion pipeline, the sliding-window pkts/s scoreboard, the
//! daemon end-to-end benchmark, and the same-memory fairness
//! shoot-out.
//!
//! ```text
//! cargo run --release -p hhh-experiments --bin scale -- [smoke|quick|paper] [out.json]
//! cargo run --release -p hhh-experiments --bin scale -- sliding [smoke|quick|paper] [out.json]
//! cargo run --release -p hhh-experiments --bin scale -- aggd [smoke|quick|paper] [out.json]
//! cargo run --release -p hhh-experiments --bin scale -- fairness [smoke|quick|paper] [out.json]
//! cargo run --release -p hhh-experiments --bin scale -- loadgen [smoke|quick|paper] [out.json]
//! cargo run --release -p hhh-experiments --bin scale -- mitigate [smoke|quick|paper] [out.json]
//! ```
//!
//! Prints the throughput/fidelity table; with an output path, also
//! writes the rows as JSON lines (the formats committed as
//! `BENCH_pr1.json`, `BENCH_pr6.json`, `BENCH_pr7.json`,
//! `BENCH_pr8.json`, `BENCH_pr9.json`, and `BENCH_pr10.json`).

use hhh_experiments::aggd_e2e::{aggd_json, aggd_table, run_aggd};
use hhh_experiments::fairness::fairness;
use hhh_experiments::{shard_sweep, sliding_scoreboard, Scale};
use hhh_loadgen::{DriveOptions, LoadScale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = match args.first().map(String::as_str) {
        Some("sliding") => "sliding",
        Some("aggd") => "aggd",
        Some("fairness") => "fairness",
        Some("loadgen") => "loadgen",
        Some("mitigate") => "mitigate",
        _ => "sweep",
    };
    let rest = if mode == "sweep" { &args[..] } else { &args[1..] };
    let scale = rest.first().and_then(|a| Scale::parse(a)).unwrap_or(Scale::Quick);
    let out = rest.get(1).cloned();
    eprintln!(
        "{} at scale '{}' on {} hardware thread(s)…",
        match mode {
            "sliding" => "sliding scoreboard",
            "aggd" => "daemon e2e",
            "fairness" => "fairness shoot-out",
            "loadgen" => "closed-loop scenario suite",
            "mitigate" => "mitigation closed loop",
            _ => "shard sweep",
        },
        scale.label(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let (table, json) = match mode {
        "sliding" => {
            let results = sliding_scoreboard(scale);
            (results.table(), results.json_lines())
        }
        "aggd" => {
            let rows = vec![run_aggd(scale, 4)];
            (aggd_table(&rows), aggd_json(&rows))
        }
        "fairness" => {
            let results = fairness(scale);
            (results.table(), results.json_lines())
        }
        "loadgen" => {
            let load_scale = match scale {
                Scale::Smoke => LoadScale::Smoke,
                Scale::Quick => LoadScale::Quick,
                Scale::Paper => LoadScale::Paper,
            };
            let results = hhh_loadgen::sweep(
                load_scale,
                hhh_loadgen::SUITE_SEED,
                None,
                &DriveOptions::default(),
                |msg| eprintln!("loadgen: {msg}"),
            )
            .expect("closed-loop sweep");
            (results.table(), results.json_lines())
        }
        "mitigate" => {
            let load_scale = match scale {
                Scale::Smoke => LoadScale::Smoke,
                Scale::Quick => LoadScale::Quick,
                Scale::Paper => LoadScale::Paper,
            };
            let results = hhh_loadgen::mitigate_sweep(
                load_scale,
                hhh_loadgen::SUITE_SEED,
                None,
                &DriveOptions::default(),
                &hhh_mitigate::PolicyConfig::default(),
                |msg| eprintln!("loadgen: {msg}"),
            )
            .expect("mitigation sweep");
            (results.table(), results.json_lines())
        }
        _ => {
            let results = shard_sweep(scale);
            (results.table(), results.json_lines())
        }
    };
    print!("{table}");
    if let Some(path) = out {
        std::fs::write(&path, json).expect("write JSON output");
        eprintln!("wrote {path}");
    }
}
