//! E-scale — the shard-count sweep over the batched, mergeable
//! ingestion pipeline.
//!
//! ```text
//! cargo run --release -p hhh-experiments --bin scale -- [smoke|quick|paper] [out.json]
//! ```
//!
//! Prints the throughput/fidelity table; with a second argument, also
//! writes the rows as JSON lines (the format committed as
//! `BENCH_pr1.json`).

use hhh_experiments::{shard_sweep, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!(
        "shard sweep at scale '{}' on {} hardware thread(s)…",
        scale.label(),
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );
    let results = shard_sweep(scale);
    print!("{}", results.table());
    if let Some(path) = std::env::args().nth(2) {
        std::fs::write(&path, results.json_lines()).expect("write JSON output");
        eprintln!("wrote {path}");
    }
}
