//! Characterize the synthetic workloads (the stand-ins for the paper's
//! CAIDA traces).
//!
//! Usage: `workloads [smoke|quick|paper]`

use hhh_experiments::{workloads, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("workloads: characterizing all scenarios at scale={}", scale.label());
    let rows = workloads::run(scale);
    println!("== Synthetic workloads ({} days of {}) ==\n", 4, scale.day_duration());
    print!("{}", workloads::table(&rows));
}
