//! Run the design-choice ablations: TDBF half-life, TDBF candidate
//! capacity, RHHH counters per level.
//!
//! Usage: `ablations [smoke|quick|paper]`

use hhh_experiments::{ablations, Scale};

fn main() {
    let scale = Scale::from_args();
    eprintln!("ablations: scale={} (10 s window, 5% threshold, probes every 1 s)", scale.label());
    let t0 = std::time::Instant::now();
    let res = ablations::run(scale);
    eprintln!("ablations: done in {:.1}s", t0.elapsed().as_secs_f64());

    println!("== TDBF-HHH half-life (decay memory vs the 10 s reference window) ==\n");
    print!("{}", res.half_life_table());
    println!("\n== TDBF-HHH candidate table capacity per level ==\n");
    print!("{}", res.candidates_table());
    println!("\n== RHHH counters per level ==\n");
    print!("{}", res.rhhh_table());
}
