//! D-scale — the distributed-aggregation scenario and its codec bench.
//!
//! ```text
//! # full in-process scenario (all four kinds, K ∈ {1,2,4}):
//! cargo run --release -p hhh-experiments --bin distagg -- run [smoke|quick|paper]
//!
//! # one shard's snapshot JSONL on stdout (the CI cross-process smoke
//! # spawns K of these and pipes them into the hhh-agg binary):
//! cargo run --release -p hhh-experiments --bin distagg -- shard <kind> <k> <i> [scale]
//!
//! # snapshot encode/decode + aggregator fold throughput:
//! cargo run --release -p hhh-experiments --bin distagg -- bench [scale] [out.json]
//! ```
//!
//! `<kind>` is one of `exact`, `ss-hhh`, `rhhh`, `tdbf-hhh`.

use hhh_experiments::distagg::{
    codec_bench, codec_bench_json, codec_bench_table, distagg_table, run_distagg, shard_jsonl, Kind,
};
use hhh_experiments::Scale;
use std::io::Write;

fn scale_at(n: usize) -> Scale {
    std::env::args().nth(n).and_then(|a| Scale::parse(&a)).unwrap_or(Scale::Smoke)
}

fn usage() -> ! {
    eprintln!(
        "usage: distagg run [scale]\n\
         \x20      distagg shard <kind> <k> <i> [scale]\n\
         \x20      distagg bench [scale] [out.json]\n\
         kinds: exact ss-hhh rhhh tdbf-hhh; scales: smoke quick paper (default smoke)"
    );
    std::process::exit(2)
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "run".into());
    match mode.as_str() {
        "run" => {
            let scale = scale_at(2);
            eprintln!("distributed-aggregation scenario at scale '{}'…", scale.label());
            let rows = run_distagg(scale, &[1, 2, 4]);
            print!("{}", distagg_table(&rows));
            let bad: Vec<_> = rows
                .iter()
                .filter(|r| !r.state_identical || (r.detector == "exact" && !r.reports_identical))
                .collect();
            if !bad.is_empty() {
                eprintln!("FAILED: {} row(s) violated the aggregation contract", bad.len());
                std::process::exit(1);
            }
        }
        "shard" => {
            let args: Vec<String> = std::env::args().collect();
            if args.len() < 5 {
                usage();
            }
            let kind = Kind::parse(&args[2]).unwrap_or_else(|| usage());
            let k: usize = args[3].parse().unwrap_or_else(|_| usage());
            let shard: usize = args[4].parse().unwrap_or_else(|_| usage());
            if k == 0 || shard >= k {
                usage();
            }
            let scale = scale_at(5);
            let bytes = shard_jsonl(kind, scale, k, shard);
            std::io::stdout().write_all(&bytes).expect("write stdout");
        }
        "bench" => {
            let scale = scale_at(2);
            eprintln!("snapshot codec bench at scale '{}'…", scale.label());
            let rows = codec_bench(scale, &[1, 2, 4, 8]);
            print!("{}", codec_bench_table(&rows));
            if let Some(path) = std::env::args().nth(3) {
                std::fs::write(&path, codec_bench_json(&rows, scale)).expect("write JSON output");
                eprintln!("wrote {path}");
            }
        }
        _ => usage(),
    }
}
