//! D-scale — the distributed-aggregation scenario and its codec bench.
//!
//! ```text
//! # full in-process scenario (all five kinds, both wire formats,
//! # K ∈ {1,2,4}):
//! cargo run --release -p hhh-experiments --bin distagg -- run [smoke|quick|paper]
//!
//! # the same K-shard parity check end-to-end over localhost TCP:
//! # K shard pipelines stream natively encoded v2 frames into one
//! # listener; the fold must be byte-identical to the file-based fold
//! # and the in-process sharded run:
//! cargo run --release -p hhh-experiments --bin distagg -- socket [scale]
//!
//! # one shard's snapshot stream on stdout (the CI cross-process smoke
//! # spawns K of these and pipes them into the hhh-agg binary), or —
//! # with --connect — streamed as v2 frames over TCP to a listening
//! # aggregator (`hhh-agg --listen ADDR --expect K`):
//! cargo run --release -p hhh-experiments --bin distagg -- \
//!     shard <kind> <k> <i> [scale] [--format json|binary] [--connect ADDR]
//!
//! # snapshot encode/decode + aggregator fold throughput, v1 vs v2
//! # (including native vs transcode v2 encode):
//! cargo run --release -p hhh-experiments --bin distagg -- bench [scale] [out.json]
//!
//! # (re)generate the committed codec test corpus:
//! cargo run --release -p hhh-experiments --bin distagg -- corpus <dir>
//! ```
//!
//! `<kind>` is one of `exact`, `ss-hhh`, `rhhh`, `mvpipe`, `tdbf-hhh`.

use hhh_core::WireFormat;
use hhh_experiments::corpus::write_corpus;
use hhh_experiments::distagg::{
    codec_bench, codec_bench_json, codec_bench_table, distagg_table, run_distagg, run_socket,
    shard_stream, shard_to_addr, socket_table, Kind,
};
use hhh_experiments::Scale;
use std::io::Write;

fn scale_at(args: &[String], n: usize) -> Scale {
    args.get(n).and_then(|a| Scale::parse(a)).unwrap_or(Scale::Smoke)
}

fn usage() -> ! {
    eprintln!(
        "usage: distagg run [scale]\n\
         \x20      distagg socket [scale]\n\
         \x20      distagg shard <kind> <k> <i> [scale] [--format json|binary] [--connect ADDR]\n\
         \x20      distagg bench [scale] [out.json]\n\
         \x20      distagg corpus <dir>\n\
         kinds: exact ss-hhh rhhh mvpipe tdbf-hhh; scales: smoke quick paper (default smoke)"
    );
    std::process::exit(2)
}

fn main() {
    let mut args: Vec<String> = std::env::args().collect();
    // --format / --connect may appear anywhere; pull them out of the
    // positionals.
    let mut format = WireFormat::Json;
    let mut format_given = false;
    if let Some(pos) = args.iter().position(|a| a == "--format") {
        if pos + 1 >= args.len() {
            usage();
        }
        format = WireFormat::parse(&args[pos + 1]).unwrap_or_else(|| usage());
        format_given = true;
        args.drain(pos..=pos + 1);
    }
    let mut connect: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--connect") {
        if pos + 1 >= args.len() {
            usage();
        }
        connect = Some(args[pos + 1].clone());
        args.drain(pos..=pos + 1);
    }
    let mode = args.get(1).cloned().unwrap_or_else(|| "run".into());
    if format_given && mode != "shard" {
        // Only `shard` emits a stream; silently accepting the flag
        // elsewhere would let a user believe they picked a format.
        eprintln!("distagg: --format only applies to `shard`");
        usage();
    }
    if connect.is_some() && mode != "shard" {
        eprintln!("distagg: --connect only applies to `shard`");
        usage();
    }
    if format_given && connect.is_some() {
        // Sockets carry v2 frames, period — a frame on a socket is the
        // same bytes as a frame in a file.
        eprintln!("distagg: --connect always streams v2 frames; drop --format");
        usage();
    }
    match mode.as_str() {
        "run" => {
            let scale = scale_at(&args, 2);
            eprintln!("distributed-aggregation scenario at scale '{}'…", scale.label());
            let rows = run_distagg(scale, &[1, 2, 4]);
            print!("{}", distagg_table(&rows));
            let bad: Vec<_> = rows
                .iter()
                .filter(|r| {
                    !r.state_identical
                        || !r.state_identical_v2
                        || (r.detector == "exact" && !r.reports_identical)
                })
                .collect();
            if !bad.is_empty() {
                eprintln!("FAILED: {} row(s) violated the aggregation contract", bad.len());
                std::process::exit(1);
            }
        }
        "socket" => {
            let scale = scale_at(&args, 2);
            eprintln!("socket aggregation scenario at scale '{}'…", scale.label());
            let rows = run_socket(scale, &[4]);
            print!("{}", socket_table(&rows));
            let bad = rows.iter().filter(|r| !r.socket_eq_file || !r.state_identical).count();
            if bad > 0 {
                eprintln!("FAILED: {bad} row(s) violated the socket aggregation contract");
                std::process::exit(1);
            }
        }
        "shard" => {
            if args.len() < 5 {
                usage();
            }
            let kind = Kind::parse(&args[2]).unwrap_or_else(|| usage());
            let k: usize = args[3].parse().unwrap_or_else(|_| usage());
            let shard: usize = args[4].parse().unwrap_or_else(|_| usage());
            if k == 0 || shard >= k {
                usage();
            }
            let scale = scale_at(&args, 5);
            match connect {
                Some(addr) => {
                    if let Err(e) = shard_to_addr(kind, scale, k, shard, &addr) {
                        eprintln!("distagg: shard {shard}/{k} -> {addr}: {e}");
                        std::process::exit(1);
                    }
                }
                None => {
                    let bytes = shard_stream(kind, scale, k, shard, format);
                    std::io::stdout().write_all(&bytes).expect("write stdout");
                }
            }
        }
        "bench" => {
            let scale = scale_at(&args, 2);
            eprintln!("snapshot codec bench at scale '{}'…", scale.label());
            let rows = codec_bench(scale, &[1, 2, 4, 8]);
            print!("{}", codec_bench_table(&rows));
            if let Some(path) = args.get(3) {
                std::fs::write(path, codec_bench_json(&rows, scale)).expect("write JSON output");
                eprintln!("wrote {path}");
            }
        }
        "corpus" => {
            let dir = args.get(2).unwrap_or_else(|| usage());
            write_corpus(std::path::Path::new(dir)).expect("write corpus");
            eprintln!("wrote codec corpus under {dir}");
        }
        _ => usage(),
    }
}
