//! Regenerate the paper's **Figure 3**: ECDFs of the Jaccard
//! similarity between a 10 s baseline window's HHH set and windows
//! 10–100 ms shorter.
//!
//! Usage: `fig3 [smoke|quick|paper] [--csv]`

use hhh_experiments::{fig3, Scale};
use hhh_nettypes::TimeSpan;

fn main() {
    let scale = Scale::from_args();
    let csv = std::env::args().any(|a| a == "--csv");
    eprintln!(
        "fig3: window micro-variation, scale={} ({} trace; base 10 s; deltas 10–100 ms; threshold 5%)",
        scale.label(),
        scale.microvar_duration(),
    );
    let t0 = std::time::Instant::now();
    let res = fig3::run(scale);
    eprintln!(
        "fig3: done in {:.1}s ({} baseline windows)",
        t0.elapsed().as_secs_f64(),
        res.windows
    );

    if csv {
        print!("{}", res.to_csv());
        return;
    }
    println!("== Figure 3 — similarity of shortened windows to the 10 s baseline ==\n");
    print!("{}", res.table());
    let f100 = res.fraction_differing_by(TimeSpan::from_millis(100), 0.25);
    let f40 = res.fraction_differing_by(TimeSpan::from_millis(40), 0.11);
    println!(
        "\nheadline statistic (paper: ≥25% / ≥11% difference in ≥70% of cases):\n\
         windows 100 ms shorter differ by ≥25% in {:.0}% of cases\n\
         windows  40 ms shorter differ by ≥11% in {:.0}% of cases",
        f100 * 100.0,
        f40 * 100.0
    );
}
