//! # hhh-experiments
//!
//! The experiment harness: one module per paper artifact, each with a
//! library entry point (used by the integration tests and benches) and
//! a binary (`fig2`, `fig3`, `tdbf_compare`, `workloads`) that prints
//! the table/series the paper reports.
//!
//! | Artifact | Module | Binary |
//! |----------|--------|--------|
//! | Figure 2 (hidden HHHs) | [`fig2`] | `cargo run --release -p hhh-experiments --bin fig2` |
//! | Figure 3 (Jaccard ECDFs) | [`fig3`] | `cargo run --release -p hhh-experiments --bin fig3` |
//! | §3 comparison (accuracy/performance/resources) | [`compare`] | `cargo run --release -p hhh-experiments --bin tdbf_compare` |
//! | Workload characterization (the "four days") | [`workloads`] | `cargo run --release -p hhh-experiments --bin workloads` |
//!
//! Every entry point takes a [`Scale`]: `Smoke` for CI-sized runs,
//! `Quick` (the default) for minutes-scale laptop runs, `Paper` for
//! the paper's full durations (hour-long days). Shapes — who wins, how
//! fractions order across thresholds — are stable across scales;
//! absolute percentages tighten as the scale grows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod aggd_e2e;
pub mod compare;
pub mod corpus;
pub mod distagg;
pub mod fairness;
pub mod fig2;
pub mod fig3;
mod scale;
pub mod workloads;

pub use scale::{
    shard_sweep, sliding_scoreboard, Scale, ShardSweepResults, ShardSweepRow,
    SlidingScoreboardResults, SHARD_COUNTS,
};
