//! The **same-memory fairness shoot-out** (PR 8): every snapshot-capable
//! detector kind, sized to one shared byte budget, on the same traces,
//! scored against the same exact ground truth.
//!
//! Published throughput comparisons routinely give each algorithm
//! whatever capacity its authors picked, so "A is faster than B" often
//! means "A was given more memory than B". This experiment removes that
//! variable: [`FAIRNESS_BUDGET_BYTES`] is the budget, and each
//! approximate kind's sizing knob (Space-Saving counters, RHHH
//! counters, MVPipe buckets, TDBF cells) is fitted to the **largest
//! provisioned state that stays under it** — the `state_bytes()` each
//! detector itself reports. The exact detector rides along unbudgeted
//! as the reference (its state grows with the key population; its row
//! records what that costs).
//!
//! Two traces per kind:
//!
//! * `zipf` — day-0 ISP-like traffic (Zipf sources, bursts);
//! * `attack` — background plus a planted pulsed DDoS from one /16
//!   ([`scenarios::ddos`]), where the heavy hitter exists *only* as a
//!   hierarchical aggregate.
//!
//! Three measurements per (kind, trace):
//!
//! * **precision / recall** of the kind's final HHH report against the
//!   exact detector's report on the identical stream;
//! * **convergence** — trace-time seconds until the kind's report first
//!   reaches [`CONVERGE_RECALL`] recall of that final ground truth
//!   (checked at [`CONVERGE_CHECKPOINTS`] points, untimed pass);
//! * **single-core pkts/s** through `observe_batch`, nothing else on
//!   the clock.
//!
//! A depth-flatness rider pins MVPipe's headline claim: per-packet cost
//! is one bucket probe regardless of hierarchy depth, so byte-level
//! IPv4 (H = 5) and hextet-level IPv6 (H = 9) must cost the same —
//! within 15% — while every level-ancestry kind pays ~H× more as H
//! grows. `scale -- fairness` prints the tables and writes the JSON
//! lines committed as `BENCH_pr8.json`; the `fairness` criterion group
//! in `hhh-bench` mirrors the throughput axis.

use crate::Scale;
use hhh_analysis::{fmt_f, SetAccuracy, Table};
use hhh_core::{
    ContinuousDetector, ExactHhh, HhhDetector, MvPipeHhh, Rhhh, SpaceSavingHhh, TdbfHhh,
    TdbfHhhConfig, Threshold,
};
use hhh_hierarchy::{Hierarchy, Ipv4Hierarchy, Ipv6Hierarchy};
use hhh_nettypes::{Ipv4Prefix, Nanos, PacketRecord, TimeSpan};
use hhh_trace::{scenarios, TraceGenerator};
use hhh_window::DEFAULT_BATCH;
use std::collections::BTreeSet;
use std::time::Instant;

/// The shared provisioned-state budget every approximate kind is
/// fitted under. 128 KiB ≈ the Space-Saving full-ancestry detector at
/// its long-standing 512-counter default, so the shoot-out meets the
/// existing benchmarks on familiar ground.
pub const FAIRNESS_BUDGET_BYTES: usize = 128 * 1024;

/// Report threshold of the shoot-out (fraction of total bytes).
pub const FAIRNESS_THRESHOLD_PCT: f64 = 1.0;

/// Recall of the final ground truth that counts as "converged".
pub const CONVERGE_RECALL: f64 = 0.9;

/// Report points of the untimed convergence pass.
pub const CONVERGE_CHECKPOINTS: usize = 32;

/// RHHH sampling seed (fixed so runs are reproducible).
const RHHH_SEED: u64 = 0x5EED;

/// One (kind, trace) measurement.
#[derive(Clone, Debug)]
pub struct FairnessRow {
    /// Trace label (`zipf` or `attack`).
    pub trace: &'static str,
    /// Detector kind under test.
    pub detector: &'static str,
    /// Byte budget the kind was fitted under (0 for the unbudgeted
    /// exact reference).
    pub budget_bytes: usize,
    /// Provisioned state bytes the fitted detector actually reports.
    pub state_bytes: usize,
    /// Packets in the trace.
    pub packets: u64,
    /// Wall-clock seconds of the timed single-core ingest pass.
    pub seconds: f64,
    /// Single-core `observe_batch` throughput.
    pub pkts_per_sec: f64,
    /// Precision of the final report vs exact ground truth.
    pub precision: f64,
    /// Recall of the final report vs exact ground truth.
    pub recall: f64,
    /// Trace-time seconds until recall first reached
    /// [`CONVERGE_RECALL`] (the full trace duration if it never did).
    pub converge_seconds: f64,
}

/// One hierarchy-depth measurement of the MVPipe flatness rider.
#[derive(Clone, Debug)]
pub struct DepthRow {
    /// Hierarchy label (`ipv4-bytes` or `ipv6-hextets`).
    pub hierarchy: &'static str,
    /// Levels in that hierarchy (5 or 9).
    pub levels: usize,
    /// Packets ingested.
    pub packets: u64,
    /// Wall-clock seconds of the ingest pass.
    pub seconds: f64,
    /// Nanoseconds per packet.
    pub ns_per_packet: f64,
}

/// Full shoot-out results.
#[derive(Clone, Debug)]
pub struct FairnessResults {
    /// One row per (kind, trace).
    pub rows: Vec<FairnessRow>,
    /// The MVPipe depth-flatness rows (IPv4 then IPv6).
    pub depth: Vec<DepthRow>,
    /// Scale the shoot-out ran at.
    pub scale: Scale,
}

impl FairnessResults {
    /// The row for a detector on a trace, if measured.
    pub fn row(&self, detector: &str, trace: &str) -> Option<&FairnessRow> {
        self.rows.iter().find(|r| r.detector == detector && r.trace == trace)
    }

    /// Slowest-over-fastest ratio of the depth rows (1.0 = perfectly
    /// flat across hierarchy depth).
    pub fn depth_ratio(&self) -> f64 {
        let ns: Vec<f64> = self.depth.iter().map(|d| d.ns_per_packet).collect();
        let max = ns.iter().copied().fold(f64::MIN, f64::max);
        let min = ns.iter().copied().fold(f64::MAX, f64::min);
        max / min
    }

    /// Render both tables (shoot-out, then depth flatness).
    pub fn table(&self) -> String {
        let mut t = Table::new(vec![
            "trace",
            "detector",
            "budget-B",
            "state-B",
            "packets",
            "pkts/s",
            "precision",
            "recall",
            "converge-s",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.trace.to_string(),
                r.detector.to_string(),
                r.budget_bytes.to_string(),
                r.state_bytes.to_string(),
                r.packets.to_string(),
                format!("{:.0}", r.pkts_per_sec),
                fmt_f(r.precision, 4),
                fmt_f(r.recall, 4),
                fmt_f(r.converge_seconds, 2),
            ]);
        }
        let mut d = Table::new(vec!["hierarchy", "levels", "packets", "ns/pkt"]);
        for r in &self.depth {
            d.row(vec![
                r.hierarchy.to_string(),
                r.levels.to_string(),
                r.packets.to_string(),
                fmt_f(r.ns_per_packet, 1),
            ]);
        }
        format!(
            "{}\nmvpipe depth flatness (slowest/fastest = {:.3}):\n{}",
            t.render(),
            self.depth_ratio(),
            d.render()
        )
    }

    /// Render as JSON lines, the format committed as `BENCH_pr8.json`.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            out.push_str(&format!(
                "{{\"experiment\": \"fairness\", \"scale\": \"{}\", \"trace\": \"{}\", \
                 \"detector\": \"{}\", \"budget_bytes\": {}, \"state_bytes\": {}, \
                 \"packets\": {}, \"seconds\": {:.6}, \"pkts_per_sec\": {:.1}, \
                 \"precision\": {:.6}, \"recall\": {:.6}, \"converge_seconds\": {:.3}}}\n",
                self.scale.label(),
                r.trace,
                r.detector,
                r.budget_bytes,
                r.state_bytes,
                r.packets,
                r.seconds,
                r.pkts_per_sec,
                r.precision,
                r.recall,
                r.converge_seconds,
            ));
        }
        for r in &self.depth {
            out.push_str(&format!(
                "{{\"experiment\": \"fairness_depth\", \"scale\": \"{}\", \
                 \"detector\": \"mvpipe\", \"hierarchy\": \"{}\", \"levels\": {}, \
                 \"packets\": {}, \"seconds\": {:.6}, \"ns_per_packet\": {:.3}}}\n",
                self.scale.label(),
                r.hierarchy,
                r.levels,
                r.packets,
                r.seconds,
                r.ns_per_packet,
            ));
        }
        out.push_str(&format!(
            "{{\"experiment\": \"fairness_depth_ratio\", \"scale\": \"{}\", \
             \"detector\": \"mvpipe\", \"ratio\": {:.4}}}\n",
            self.scale.label(),
            self.depth_ratio(),
        ));
        out
    }
}

/// The largest integer parameter whose provisioned state stays within
/// `budget` bytes (1 when even the smallest build exceeds it).
fn fit_param(budget: usize, bytes_at: impl Fn(usize) -> usize) -> usize {
    if bytes_at(1) > budget {
        return 1;
    }
    let (mut lo, mut hi) = (1usize, 2usize);
    while bytes_at(hi) <= budget {
        lo = hi;
        hi *= 2;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if bytes_at(mid) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

fn tdbf_config(cells_per_level: usize, horizon: TimeSpan) -> TdbfHhhConfig {
    TdbfHhhConfig {
        cells_per_level,
        hashes: 2,
        // Mild decay: the shoot-out scores whole-trace ground truth, so
        // a short half-life would penalize the windowless kind for its
        // defining feature rather than its memory/accuracy trade-off.
        half_life: horizon,
        candidates_per_level: 64,
        admit_fraction: 0.001,
        seed: 0x7DBF,
    }
}

fn report_set<D: HhhDetector<Ipv4Hierarchy>>(
    det: &D,
    threshold: Threshold,
) -> BTreeSet<Ipv4Prefix> {
    det.report(threshold).iter().map(|r| r.prefix).collect()
}

/// Trace-time seconds from trace start to the checkpoint where the
/// detector's report first covers [`CONVERGE_RECALL`] of `truth`.
fn converge_at(
    packets: &[PacketRecord],
    truth: &BTreeSet<Ipv4Prefix>,
    mut set_after: impl FnMut(&[PacketRecord]) -> BTreeSet<Ipv4Prefix>,
) -> f64 {
    let t0 = packets.first().map(|p| p.ts).unwrap_or(Nanos::ZERO);
    let tn = packets.last().map(|p| p.ts).unwrap_or(Nanos::ZERO);
    let per = (packets.len() / CONVERGE_CHECKPOINTS).max(1);
    let mut fed = 0;
    while fed < packets.len() {
        let end = (fed + per).min(packets.len());
        let set = set_after(&packets[fed..end]);
        if SetAccuracy::compare(truth, &set).recall() >= CONVERGE_RECALL {
            return (packets[end - 1].ts - t0).as_secs_f64();
        }
        fed = end;
    }
    (tn - t0).as_secs_f64()
}

#[allow(clippy::too_many_arguments)] // internal helper; the arguments are the shoot-out's fixed context
fn run_windowed<D: HhhDetector<Ipv4Hierarchy>>(
    detector: &'static str,
    trace: &'static str,
    budget_bytes: usize,
    packets: &[PacketRecord],
    items: &[(u32, u64)],
    truth: &BTreeSet<Ipv4Prefix>,
    threshold: Threshold,
    make: impl Fn() -> D,
) -> FairnessRow {
    let n = items.len() as u64;

    // Timed pass: pure observe_batch, single core, nothing else.
    let mut det = make();
    let start = Instant::now();
    for chunk in items.chunks(DEFAULT_BATCH) {
        det.observe_batch(chunk);
    }
    let seconds = start.elapsed().as_secs_f64();
    let acc = SetAccuracy::compare(truth, &report_set(&det, threshold));
    let state_bytes = det.state_bytes();

    // Untimed pass: fresh detector, checkpointed convergence.
    let mut fresh = make();
    let converge_seconds = converge_at(packets, truth, |chunk| {
        let batch: Vec<(u32, u64)> = chunk.iter().map(|p| (p.src, p.wire_len as u64)).collect();
        fresh.observe_batch(&batch);
        report_set(&fresh, threshold)
    });

    FairnessRow {
        trace,
        detector,
        budget_bytes,
        state_bytes,
        packets: n,
        seconds,
        pkts_per_sec: n as f64 / seconds,
        precision: acc.precision(),
        recall: acc.recall(),
        converge_seconds,
    }
}

fn run_continuous<D: ContinuousDetector<Ipv4Hierarchy>>(
    detector: &'static str,
    trace: &'static str,
    budget_bytes: usize,
    packets: &[PacketRecord],
    truth: &BTreeSet<Ipv4Prefix>,
    threshold: Threshold,
    make: impl Fn() -> D,
) -> FairnessRow {
    let n = packets.len() as u64;
    let stamped: Vec<(Nanos, u32, u64)> =
        packets.iter().map(|p| (p.ts, p.src, p.wire_len as u64)).collect();
    let at = packets.last().map(|p| p.ts).unwrap_or(Nanos::ZERO);

    let mut det = make();
    let start = Instant::now();
    for chunk in stamped.chunks(DEFAULT_BATCH) {
        det.observe_batch(chunk);
    }
    let seconds = start.elapsed().as_secs_f64();
    let set: BTreeSet<Ipv4Prefix> = det.report_at(at, threshold).iter().map(|r| r.prefix).collect();
    let acc = SetAccuracy::compare(truth, &set);
    let state_bytes = det.state_bytes();

    let mut fresh = make();
    let converge_seconds = converge_at(packets, truth, |chunk| {
        let batch: Vec<(Nanos, u32, u64)> =
            chunk.iter().map(|p| (p.ts, p.src, p.wire_len as u64)).collect();
        fresh.observe_batch(&batch);
        let now = chunk.last().expect("non-empty chunk").ts;
        fresh.report_at(now, threshold).iter().map(|r| r.prefix).collect()
    });

    FairnessRow {
        trace,
        detector,
        budget_bytes,
        state_bytes,
        packets: n,
        seconds,
        pkts_per_sec: n as f64 / seconds,
        precision: acc.precision(),
        recall: acc.recall(),
        converge_seconds,
    }
}

/// Spread a 32-bit source across the 128-bit space so every hextet
/// level of the IPv6 hierarchy sees real variation (a bare widening
/// would leave the upper levels constant).
fn spread_v6(src: u32) -> u128 {
    let s = src as u128;
    (s << 96) | (s << 64) | (s << 32) | s
}

/// Packets per depth-flatness pass. Both slices stay cache-resident
/// (the IPv4 stream is 16 B/packet, the spread IPv6 stream 32 B/packet,
/// so 512 KiB vs 1 MiB), which makes the rows measure the update path
/// — one bucket probe per packet — rather than the DRAM streaming cost
/// of wider items, which every detector pays identically for IPv6 and
/// has nothing to do with hierarchy depth.
const DEPTH_SLICE: usize = 32_768;

/// Timed passes per depth row; each row keeps its fastest pass (the
/// standard microbenchmark guard against scheduler noise on a
/// sub-millisecond measurement).
const DEPTH_REPS: usize = 15;

/// Steady-state per-packet seconds of MVPipe over a prepared stream:
/// one untimed pass fills the pipe (the insert transient is a one-time
/// cost, not the per-packet update rule), then `DEPTH_REPS` timed
/// passes over the warm pipe, keeping the fastest. Returns (best pass
/// seconds, per-pass weight) — the weight checks both depths saw the
/// identical stream.
fn depth_pass<H: Hierarchy>(hierarchy: H, buckets: usize, stream: &[(H::Item, u64)]) -> (f64, u64) {
    let mut det = MvPipeHhh::new(hierarchy, buckets);
    for chunk in stream.chunks(DEFAULT_BATCH) {
        det.observe_batch(chunk);
    }
    let warm_total = det.total();
    let mut best = f64::INFINITY;
    for _ in 0..DEPTH_REPS {
        let start = Instant::now();
        for chunk in stream.chunks(DEFAULT_BATCH) {
            det.observe_batch(chunk);
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, warm_total)
}

/// Time MVPipe's `observe_batch` over the same stream at two hierarchy
/// depths, each side's pipe fitted to the same state-byte budget (the
/// shoot-out's own fairness rule, which also equalizes the cache
/// footprint of the two tables). The update rule touches exactly one
/// bucket per packet, so both rows must land within a whisker of each
/// other — the per-packet-cost-flat-in-H acceptance this PR pins.
fn depth_rows(packets: &[PacketRecord], budget: usize) -> Vec<DepthRow> {
    let slice = &packets[..packets.len().min(DEPTH_SLICE)];
    let n = slice.len() as u64;
    let v4: Vec<(u32, u64)> = slice.iter().map(|p| (p.src, p.wire_len as u64)).collect();
    let v6: Vec<(u128, u64)> =
        slice.iter().map(|p| (spread_v6(p.src), p.wire_len as u64)).collect();

    let h4 = Ipv4Hierarchy::bytes();
    let h6 = Ipv6Hierarchy::hextets();
    let b4 = fit_param(budget, |b| HhhDetector::state_bytes(&MvPipeHhh::new(h4, b)));
    let b6 = fit_param(budget, |b| HhhDetector::state_bytes(&MvPipeHhh::new(h6, b)));

    let (s4, total4) = depth_pass(h4, b4, &v4);
    let (s6, total6) = depth_pass(h6, b6, &v6);
    assert!(total4 == total6, "both depths must see the identical stream");

    vec![
        DepthRow {
            hierarchy: "ipv4-bytes",
            levels: h4.levels(),
            packets: n,
            seconds: s4,
            ns_per_packet: s4 * 1e9 / n as f64,
        },
        DepthRow {
            hierarchy: "ipv6-hextets",
            levels: h6.levels(),
            packets: n,
            seconds: s6,
            ns_per_packet: s6 * 1e9 / n as f64,
        },
    ]
}

/// Run the whole shoot-out at a scale. Single-threaded by design —
/// every number is a one-core measurement.
pub fn fairness(scale: Scale) -> FairnessResults {
    let horizon = scale.compare_duration();
    let h = Ipv4Hierarchy::bytes();
    let threshold = Threshold::percent(FAIRNESS_THRESHOLD_PCT);
    let budget = FAIRNESS_BUDGET_BYTES;

    // Fit each kind's sizing knob under the shared budget, using the
    // provisioned state the detector itself reports.
    let ss_cap = fit_param(budget, |c| HhhDetector::state_bytes(&SpaceSavingHhh::new(h, c)));
    let rhhh_cap = fit_param(budget, |c| HhhDetector::state_bytes(&Rhhh::new(h, c, RHHH_SEED)));
    let mv_buckets = fit_param(budget, |b| HhhDetector::state_bytes(&MvPipeHhh::new(h, b)));
    let tdbf_cells = fit_param(budget, |c| {
        ContinuousDetector::state_bytes(&TdbfHhh::new(h, tdbf_config(c, horizon)))
    });

    let traces: [(&'static str, Vec<PacketRecord>); 2] = [
        (
            "zipf",
            TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect(),
        ),
        ("attack", scenarios::ddos(horizon, scenarios::day_seed(1)).collect()),
    ];

    let mut rows = Vec::new();
    for (label, packets) in &traces {
        let items: Vec<(u32, u64)> = packets.iter().map(|p| (p.src, p.wire_len as u64)).collect();
        let mut oracle = ExactHhh::new(h);
        for chunk in items.chunks(DEFAULT_BATCH) {
            HhhDetector::<Ipv4Hierarchy>::observe_batch(&mut oracle, chunk);
        }
        let truth = report_set(&oracle, threshold);

        rows.push(run_windowed("exact", label, 0, packets, &items, &truth, threshold, || {
            ExactHhh::new(h)
        }));
        rows.push(run_windowed(
            "ss-hhh",
            label,
            budget,
            packets,
            &items,
            &truth,
            threshold,
            || SpaceSavingHhh::new(h, ss_cap),
        ));
        rows.push(run_windowed("rhhh", label, budget, packets, &items, &truth, threshold, || {
            Rhhh::new(h, rhhh_cap, RHHH_SEED)
        }));
        rows.push(run_windowed(
            "mvpipe",
            label,
            budget,
            packets,
            &items,
            &truth,
            threshold,
            || MvPipeHhh::new(h, mv_buckets),
        ));
        rows.push(run_continuous("tdbf-hhh", label, budget, packets, &truth, threshold, || {
            TdbfHhh::new(h, tdbf_config(tdbf_cells, horizon))
        }));
    }

    let depth = depth_rows(&traces[0].1, budget);
    FairnessResults { rows, depth, scale }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_param_maximizes_under_budget() {
        // bytes = 48 × p: budget 1000 fits p = 20, not 21.
        assert_eq!(fit_param(1000, |p| p * 48), 20);
        // Even p = 1 over budget still returns a constructible size.
        assert_eq!(fit_param(10, |p| p * 48), 1);
        // Exact fits are kept.
        assert_eq!(fit_param(96, |p| p * 48), 2);
    }

    #[test]
    fn fitted_kinds_share_the_budget() {
        let h = Ipv4Hierarchy::bytes();
        let budget = FAIRNESS_BUDGET_BYTES;
        let ss_cap = fit_param(budget, |c| HhhDetector::state_bytes(&SpaceSavingHhh::new(h, c)));
        let mv = fit_param(budget, |b| HhhDetector::state_bytes(&MvPipeHhh::new(h, b)));
        let ss = SpaceSavingHhh::new(h, ss_cap);
        let mvp = MvPipeHhh::new(h, mv);
        for bytes in
            [HhhDetector::<Ipv4Hierarchy>::state_bytes(&ss), HhhDetector::state_bytes(&mvp)]
        {
            assert!(bytes <= budget, "{bytes} over budget");
            // Within one doubling of the budget floor: the fit is
            // maximal, not merely legal.
            assert!(bytes * 2 > budget, "{bytes} leaves half the budget idle");
        }
    }

    /// Structural smoke on a seconds-long trace: every kind × trace row
    /// present, scores in range, depth rows populated. Timing-dependent
    /// acceptance (mvpipe ≥ 2× ss-hhh, depth ratio ≤ 1.15) is pinned by
    /// the committed release-mode `BENCH_pr8.json`, not by this debug
    /// test.
    #[test]
    fn shootout_covers_every_kind_on_both_traces() {
        let results = fairness(Scale::Smoke);
        let kinds = ["exact", "ss-hhh", "rhhh", "mvpipe", "tdbf-hhh"];
        assert_eq!(results.rows.len(), kinds.len() * 2);
        for kind in kinds {
            for trace in ["zipf", "attack"] {
                let r = results.row(kind, trace).expect("row present");
                assert!(r.packets > 0 && r.pkts_per_sec > 0.0, "{kind}/{trace}");
                assert!((0.0..=1.0).contains(&r.precision), "{kind}/{trace}");
                assert!((0.0..=1.0).contains(&r.recall), "{kind}/{trace}");
                assert!(r.converge_seconds >= 0.0, "{kind}/{trace}");
                if kind == "exact" {
                    assert_eq!((r.precision, r.recall), (1.0, 1.0), "exact is its own truth");
                } else {
                    assert!(r.state_bytes <= r.budget_bytes, "{kind} over budget");
                }
            }
        }
        assert_eq!(results.depth.len(), 2);
        assert!(results.depth_ratio() >= 1.0);
        let json = results.json_lines();
        assert!(json.contains("\"experiment\": \"fairness\""));
        assert!(json.contains("\"experiment\": \"fairness_depth\""));
        assert!(json.contains("\"experiment\": \"fairness_depth_ratio\""));
        assert!(results.table().contains("depth flatness"));
    }
}
