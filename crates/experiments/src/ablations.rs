//! Ablations: the design choices behind the TDBF-HHH detector and
//! RHHH, swept one knob at a time (DESIGN.md §6b calls these out).
//!
//! * **Half-life** — the windowless detector's one time constant. Too
//!   short and borderline traffic decays below threshold before it can
//!   be reported; too long and stale traffic pollutes the present.
//!   Expect a broad optimum around *half the reference window* (the
//!   equivalence argument in `hhh-sketches::decay`).
//! * **Candidate table capacity** — the "who" memory that complements
//!   the TDBF's "how much". Too small and heavy prefixes get evicted
//!   between bursts; beyond a few hundred entries per level the F1
//!   curve flattens while state grows linearly.
//! * **RHHH counters per level** — the space/recall trade of the
//!   randomized detector; its sampling noise needs headroom over the
//!   exact bound `levels/θ`.

use crate::compare::{score_with_staleness, trace, PROBE_EVERY, THRESHOLD_PCT, WINDOW};
use crate::Scale;
use hhh_analysis::{fmt_f, SetAccuracy, Table};
use hhh_core::{ContinuousDetector, HhhDetector, Rhhh, TdbfHhh, TdbfHhhConfig, Threshold};
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::{Ipv4Prefix, Nanos, PacketRecord};
use hhh_window::WindowReport;
use hhh_window::{Continuous, Disjoint, Pipeline, SlidingExact};
use std::collections::BTreeSet;

/// One ablation data point.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Knob value, as a display string.
    pub setting: String,
    /// Accuracy at that setting.
    pub accuracy: SetAccuracy,
    /// Detector state bytes at that setting.
    pub state_bytes: usize,
}

/// All three sweeps.
#[derive(Clone, Debug)]
pub struct AblationResults {
    /// TDBF half-life sweep (window is 10 s).
    pub half_life: Vec<AblationRow>,
    /// TDBF candidate-capacity sweep.
    pub candidates: Vec<AblationRow>,
    /// RHHH counters-per-level sweep.
    pub rhhh_counters: Vec<AblationRow>,
    /// Scale used.
    pub scale: Scale,
}

fn oracle_and_probes(
    pkts: &[PacketRecord],
    scale: Scale,
) -> (Vec<WindowReport<Ipv4Prefix>>, Vec<Nanos>) {
    let hierarchy = Ipv4Hierarchy::bytes();
    let threshold = Threshold::percent(THRESHOLD_PCT);
    let oracle = Pipeline::new(pkts.iter().copied())
        .engine(SlidingExact::new(
            &hierarchy,
            scale.compare_duration(),
            WINDOW,
            PROBE_EVERY,
            &[threshold],
            |p| p.src,
        ))
        .collect()
        .run()
        .remove(0);
    let probes: Vec<Nanos> = oracle.iter().map(|r| r.end).collect();
    (oracle, probes)
}

fn tdbf_accuracy(
    pkts: &[PacketRecord],
    oracle: &[WindowReport<Ipv4Prefix>],
    probes: &[Nanos],
    cfg: TdbfHhhConfig,
) -> (SetAccuracy, usize) {
    let hierarchy = Ipv4Hierarchy::bytes();
    let threshold = Threshold::percent(THRESHOLD_PCT);
    let mut det = TdbfHhh::new(hierarchy, cfg);
    let reports = Pipeline::new(pkts.iter().copied())
        .engine(Continuous::new(&mut det, probes, threshold, |p| p.src))
        .collect()
        .run()
        .remove(0);
    let sets: Vec<(Nanos, BTreeSet<Ipv4Prefix>)> =
        reports.iter().map(|r| (r.start, r.prefix_set())).collect();
    let row = score_with_staleness(oracle, probes, &sets, WINDOW, false);
    (row.overall, ContinuousDetector::<Ipv4Hierarchy>::state_bytes(&det))
}

/// Run all three sweeps.
pub fn run(scale: Scale) -> AblationResults {
    let pkts = trace(scale);
    let (oracle, probes) = oracle_and_probes(&pkts, scale);
    let base_cfg = TdbfHhhConfig {
        half_life: WINDOW / 2,
        admit_fraction: THRESHOLD_PCT / 100.0 / 10.0,
        ..TdbfHhhConfig::default()
    };

    // --- Half-life sweep. ---
    let mut half_life = Vec::new();
    for (label, hl) in [
        ("w/8 = 1.25s", WINDOW / 8),
        ("w/4 = 2.5s", WINDOW / 4),
        ("w/2 = 5s", WINDOW / 2),
        ("w = 10s", WINDOW),
        ("2w = 20s", WINDOW * 2),
    ] {
        let cfg = TdbfHhhConfig { half_life: hl, ..base_cfg.clone() };
        let (accuracy, state_bytes) = tdbf_accuracy(&pkts, &oracle, &probes, cfg);
        half_life.push(AblationRow { setting: label.to_string(), accuracy, state_bytes });
    }

    // --- Candidate capacity sweep. ---
    let mut candidates = Vec::new();
    for cap in [16usize, 64, 256, 1024] {
        let cfg = TdbfHhhConfig { candidates_per_level: cap, ..base_cfg.clone() };
        let (accuracy, state_bytes) = tdbf_accuracy(&pkts, &oracle, &probes, cfg);
        candidates.push(AblationRow { setting: format!("{cap}/level"), accuracy, state_bytes });
    }

    // --- RHHH counters sweep (windowed detector, scored with
    // staleness like in E3 so numbers are comparable). ---
    let hierarchy = Ipv4Hierarchy::bytes();
    let threshold = Threshold::percent(THRESHOLD_PCT);
    let mut rhhh_counters = Vec::new();
    for counters in [32usize, 128, 512] {
        let mut det = Rhhh::new(hierarchy, counters, 0xAB);
        let reports = Pipeline::new(pkts.iter().copied())
            .engine(Disjoint::new(&mut det, scale.compare_duration(), WINDOW, &[threshold], |p| {
                p.src
            }))
            .collect()
            .run()
            .remove(0);
        let sets: Vec<(Nanos, BTreeSet<Ipv4Prefix>)> =
            reports.iter().map(|r| (r.end, r.prefix_set())).collect();
        let row = score_with_staleness(&oracle, &probes, &sets, WINDOW, false);
        rhhh_counters.push(AblationRow {
            setting: format!("{counters} counters"),
            accuracy: row.overall,
            state_bytes: det.state_bytes(),
        });
    }

    AblationResults { half_life, candidates, rhhh_counters, scale }
}

fn render(rows: &[AblationRow], knob: &str) -> String {
    let mut t = Table::new(vec![knob, "precision", "recall", "F1", "state KiB"]);
    for r in rows {
        t.row(vec![
            r.setting.clone(),
            fmt_f(r.accuracy.precision(), 3),
            fmt_f(r.accuracy.recall(), 3),
            fmt_f(r.accuracy.f1(), 3),
            fmt_f(r.state_bytes as f64 / 1024.0, 1),
        ]);
    }
    t.render()
}

impl AblationResults {
    /// Render the half-life table.
    pub fn half_life_table(&self) -> String {
        render(&self.half_life, "half-life")
    }

    /// Render the candidate-capacity table.
    pub fn candidates_table(&self) -> String {
        render(&self.candidates, "candidates")
    }

    /// Render the RHHH counters table.
    pub fn rhhh_table(&self) -> String {
        render(&self.rhhh_counters, "rhhh")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_have_expected_structure() {
        let res = run(Scale::Smoke);
        assert_eq!(res.half_life.len(), 5);
        assert_eq!(res.candidates.len(), 4);
        assert_eq!(res.rhhh_counters.len(), 3);

        // The w/2 half-life should not be dominated by the extremes on
        // F1 (the design-choice argument).
        let f1 = |rows: &[AblationRow], i: usize| rows[i].accuracy.f1();
        let mid = f1(&res.half_life, 2);
        let shortest = f1(&res.half_life, 0);
        assert!(mid >= shortest - 0.05, "w/2 ({mid}) unexpectedly dominated by w/8 ({shortest})");

        // State grows monotonically with candidate capacity; F1 does
        // not decrease drastically with more memory.
        for w in res.candidates.windows(2) {
            assert!(w[1].state_bytes > w[0].state_bytes);
            assert!(w[1].accuracy.f1() >= w[0].accuracy.f1() - 0.1);
        }

        // RHHH: more counters never hurt much.
        for w in res.rhhh_counters.windows(2) {
            assert!(w[1].accuracy.f1() >= w[0].accuracy.f1() - 0.05);
        }

        assert!(res.half_life_table().contains("half-life"));
        assert!(res.candidates_table().contains("candidates"));
        assert!(res.rhhh_table().contains("rhhh"));
    }
}
