//! Experiment E1 — the paper's **Figure 2**: percentage of hidden HHHs
//! for three window sizes and three thresholds, over four day traces.
//!
//! Method (paper §2, "Unveiling Hidden HHHs"): for each day trace,
//! window size w ∈ {5, 10, 20} s and threshold θ ∈ {1, 5, 10} % of the
//! bytes in each window, compare the HHH sets of disjoint w-windows
//! against a sliding w-window with a 1 s step. A single pass of the
//! pipeline's sliding-exact engine yields both schedules: the disjoint
//! windows are exactly the sliding positions whose start is a multiple
//! of w.
//!
//! Expected shape (the paper's findings): the hidden fraction is
//! largest at the 1 % threshold (paper: 24–34 %), smaller at 5 %
//! (18–24 %), smaller again at 10 %; consistent across window sizes.

use crate::Scale;
use hhh_analysis::hidden::{hidden_hhh, HiddenHhh};
use hhh_analysis::{csv, fmt_f, Table};
use hhh_core::Threshold;
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::{Ipv4Prefix, TimeSpan};
use hhh_trace::{scenarios, TraceGenerator};
use hhh_window::{Pipeline, SlidingExact};
use std::sync::Mutex;

/// The thresholds of Figure 2.
pub const THRESHOLDS_PCT: [f64; 3] = [1.0, 5.0, 10.0];
/// The window sizes of Figure 2 (seconds).
pub const WINDOW_SECS: [u64; 3] = [5, 10, 20];
/// The sliding step (paper: 1 s).
pub const STEP: TimeSpan = TimeSpan::from_secs(1);

/// One cell of Figure 2.
#[derive(Clone, Debug)]
pub struct Fig2Row {
    /// Which of the four day traces.
    pub day: usize,
    /// Window length in seconds.
    pub window_secs: u64,
    /// Threshold in percent of window bytes.
    pub threshold_pct: f64,
    /// The hidden-HHH comparison for this configuration.
    pub hidden: HiddenHhh<Ipv4Prefix>,
}

/// The full Figure 2 data set.
#[derive(Clone, Debug)]
pub struct Fig2Results {
    /// One row per (day, window, threshold).
    pub rows: Vec<Fig2Row>,
    /// Scale the experiment ran at.
    pub scale: Scale,
}

/// Run E1. Parallelizes over (day, window) jobs with one generator
/// pass each; deterministic regardless of thread interleaving.
pub fn run(scale: Scale) -> Fig2Results {
    let thresholds: Vec<Threshold> =
        THRESHOLDS_PCT.iter().map(|p| Threshold::percent(*p)).collect();
    let rows = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for day in 0..4 {
            for &w_secs in &WINDOW_SECS {
                let thresholds = &thresholds;
                let rows = &rows;
                s.spawn(move || {
                    let window = TimeSpan::from_secs(w_secs);
                    let horizon = scale.day_duration();
                    let model = scenarios::day_trace(day, horizon);
                    let packets = TraceGenerator::new(model, scenarios::day_seed(day));
                    let hierarchy = Ipv4Hierarchy::bytes();
                    let sliding = Pipeline::new(packets)
                        .engine(SlidingExact::new(
                            &hierarchy,
                            horizon,
                            window,
                            STEP,
                            thresholds,
                            |p| p.src,
                        ))
                        .collect()
                        .run();
                    let epw = window / STEP;
                    for (ti, per_threshold) in sliding.iter().enumerate() {
                        // Disjoint windows = sliding positions whose
                        // start is a multiple of the window length.
                        let disjoint: Vec<_> =
                            per_threshold.iter().filter(|r| r.index % epw == 0).cloned().collect();
                        let h = hidden_hhh(per_threshold, &disjoint);
                        rows.lock().expect("rows mutex poisoned").push(Fig2Row {
                            day,
                            window_secs: w_secs,
                            threshold_pct: THRESHOLDS_PCT[ti],
                            hidden: h,
                        });
                    }
                });
            }
        }
    });

    let mut rows = rows.into_inner().expect("rows mutex poisoned");
    rows.sort_by(|a, b| {
        (a.day, a.window_secs, a.threshold_pct as u64).cmp(&(
            b.day,
            b.window_secs,
            b.threshold_pct as u64,
        ))
    });
    Fig2Results { rows, scale }
}

impl Fig2Results {
    /// Hidden-fraction percentages across days for a (window,
    /// threshold) cell: `(min, mean, max)`.
    pub fn band(&self, window_secs: u64, threshold_pct: f64) -> (f64, f64, f64) {
        let vals: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.window_secs == window_secs && r.threshold_pct == threshold_pct)
            .map(|r| r.hidden.hidden_fraction * 100.0)
            .collect();
        assert!(!vals.is_empty(), "no rows for w={window_secs}s θ={threshold_pct}%");
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (min, hhh_analysis::mean(&vals), max)
    }

    /// Render the per-day table (the figure's bars, as text).
    pub fn table(&self) -> String {
        let mut t = Table::new(vec![
            "day",
            "window",
            "threshold",
            "sliding HHHs",
            "disjoint HHHs",
            "hidden",
            "hidden %",
            "occurrence %",
        ]);
        for r in &self.rows {
            t.row(vec![
                format!("{}", r.day),
                format!("{}s", r.window_secs),
                format!("{}%", r.threshold_pct),
                format!("{}", r.hidden.sliding_distinct),
                format!("{}", r.hidden.disjoint_distinct),
                format!("{}", r.hidden.hidden_prefixes.len()),
                fmt_f(r.hidden.hidden_fraction * 100.0, 1),
                fmt_f(r.hidden.occurrence_fraction * 100.0, 1),
            ]);
        }
        t.render()
    }

    /// Render the summary bands (what the paper's prose quotes).
    pub fn summary(&self) -> String {
        let mut t =
            Table::new(vec!["window", "threshold", "hidden % (min..max over days)", "mean"]);
        for &w in &WINDOW_SECS {
            for &p in &THRESHOLDS_PCT {
                let (min, mean, max) = self.band(w, p);
                t.row(vec![
                    format!("{w}s"),
                    format!("{p}%"),
                    format!("{:.1}..{:.1}", min, max),
                    fmt_f(mean, 1),
                ]);
            }
        }
        t.render()
    }

    /// CSV series (one row per day×window×threshold), for plotting.
    pub fn to_csv(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.day.to_string(),
                    r.window_secs.to_string(),
                    r.threshold_pct.to_string(),
                    r.hidden.sliding_distinct.to_string(),
                    r.hidden.disjoint_distinct.to_string(),
                    r.hidden.hidden_prefixes.len().to_string(),
                    format!("{:.4}", r.hidden.hidden_fraction),
                    format!("{:.4}", r.hidden.occurrence_fraction),
                ]
            })
            .collect();
        csv::to_csv_string(
            &[
                "day",
                "window_s",
                "threshold_pct",
                "sliding_distinct",
                "disjoint_distinct",
                "hidden_distinct",
                "hidden_fraction",
                "occurrence_fraction",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_expected_grid_and_shape() {
        let res = run(Scale::Smoke);
        assert_eq!(res.rows.len(), 4 * 3 * 3, "4 days × 3 windows × 3 thresholds");
        // Structural invariants on every cell.
        for r in &res.rows {
            let h = &r.hidden;
            assert!(h.disjoint_distinct <= h.sliding_distinct, "disjoint ⊆ sliding");
            assert_eq!(
                h.sliding_distinct - h.disjoint_distinct,
                h.hidden_prefixes.len(),
                "hidden = sliding − disjoint when schedules nest"
            );
            assert!(h.hidden_fraction >= 0.0 && h.hidden_fraction <= 1.0);
            assert!(h.sliding_distinct > 0, "no HHHs at all — trace too thin");
        }
        // The headline shape: hidden HHHs exist at the 1% threshold.
        let (_, mean_1pct, _) = res.band(5, 1.0);
        assert!(mean_1pct > 0.0, "1% threshold shows no hidden HHHs at all");
        // Tables render.
        assert!(res.table().contains("hidden %"));
        assert!(res.summary().contains("min..max"));
        assert!(res.to_csv().lines().count() == res.rows.len() + 1);
    }
}
