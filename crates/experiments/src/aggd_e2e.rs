//! F-scale — the **daemon end-to-end** benchmark: an in-process
//! `hhh-aggd` fed the full scenario (5 kinds × K shards) over real
//! localhost sockets, measured on three axes:
//!
//! * **ingest**: frames/s from first connect until every writer has
//!   drained its pre-encoded stream — pure hub delivery + fold rate,
//!   with no polling on the clock;
//! * **convergence**: seconds from the last writer finishing until the
//!   daemon's `GET /hhh?all=1&state=1` answer is byte-identical to the
//!   single-process reference fold;
//! * **query**: p50/p99 latency of `GET /hhh?kind=exact` (the latest
//!   merged point) against the daemon's steady-state fold.
//!
//! The writers replay **pre-encoded** shard streams, so the clock
//! measures the daemon (hub delivery + fold + serve), not detector
//! compute. The convergence check doubles as a correctness gate: a
//! bench run that never reaches byte-identity panics rather than
//! reporting a number for a wrong fold.

use crate::distagg::distagg_trace;
use crate::Scale;
use hhh_agg::{read_stream, write_merged, FoldState};
use hhh_aggd::scenario::{self, KINDS};
use hhh_aggd::{spawn_daemon, DaemonConfig};
use hhh_analysis::{fmt_f, Table};
use hhh_core::WireFormat;
use hhh_window::{hello_frame, read_frame_from};
use std::io::{BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One daemon e2e measurement.
#[derive(Clone, Debug)]
pub struct AggdRow {
    /// Scale label the run used.
    pub scale: &'static str,
    /// Shards per kind.
    pub shards: usize,
    /// Concurrent streams (kinds × shards).
    pub streams: usize,
    /// Frames the daemon delivered to its fold.
    pub frames: u64,
    /// Seconds from first connect until every writer drained its
    /// stream (the poll-for-convergence tail is *not* on this clock).
    pub ingest_seconds: f64,
    /// Seconds from the last writer finishing to byte-identical
    /// convergence of the daemon's fold.
    pub converge_seconds: f64,
    /// Frames per second over the ingest phase alone.
    pub ingest_frames_per_sec: f64,
    /// Median `GET /hhh?kind=exact` latency, milliseconds.
    pub query_p50_ms: f64,
    /// 99th-percentile `GET /hhh?kind=exact` latency, milliseconds.
    pub query_p99_ms: f64,
}

/// Query samples taken for the latency quantiles.
const QUERY_SAMPLES: usize = 200;

fn http_get(addr: &str, path: &str) -> (u16, Vec<u8>) {
    let mut conn = TcpStream::connect(addr).expect("connect to daemon http");
    write!(conn, "GET {path} HTTP/1.1\r\nHost: aggd\r\nConnection: close\r\n\r\n")
        .expect("request writes");
    let mut buf = Vec::new();
    conn.read_to_end(&mut buf).expect("response reads");
    let head_end =
        buf.windows(4).position(|w| w == b"\r\n\r\n").expect("response has a header block") + 4;
    let head = std::str::from_utf8(&buf[..head_end]).expect("headers are ASCII");
    let status: u16 =
        head.split_whitespace().nth(1).expect("status line").parse().expect("numeric status");
    (status, buf[head_end..].to_vec())
}

/// Run the daemon e2e benchmark: K shards of every kind at `scale`.
pub fn run_aggd(scale: Scale, k: usize) -> AggdRow {
    run_aggd_on(distagg_trace(scale), scale.compare_duration(), k, scale.label())
}

/// [`run_aggd`] over an explicit trace and horizon (tests use a short
/// ad-hoc horizon so the pre-encode phase stays cheap in debug builds).
pub fn run_aggd_on(
    trace: &[hhh_nettypes::PacketRecord],
    horizon: hhh_nettypes::TimeSpan,
    k: usize,
    scale_label: &'static str,
) -> AggdRow {
    // Pre-encode every stream and build the byte-exact expectation.
    let mut streams: Vec<(u64, String, Vec<u8>)> = Vec::new();
    let mut fold = FoldState::new();
    for &kind in &KINDS {
        for shard in 0..k {
            let id = scenario::stream_id(kind, k, shard);
            let bytes =
                scenario::shard_stream_on(kind, trace, horizon, k, shard, WireFormat::Binary);
            for snap in read_stream(shard, bytes.as_slice()).expect("shard stream parses") {
                fold.push(id, snap);
            }
            streams.push((id, scenario::shard_label(kind, k, shard), bytes));
        }
    }
    fold.refold(&scenario::hierarchy()).expect("reference fold");
    let expected = {
        let mut out = Vec::new();
        write_merged(
            &mut out,
            fold.points(),
            &[scenario::distagg_threshold()],
            true,
            WireFormat::Json,
        )
        .expect("reference renders");
        out
    };

    let handle = spawn_daemon(DaemonConfig {
        thresholds: vec![scenario::distagg_threshold()],
        retain: None,
        ..DaemonConfig::default()
    })
    .expect("daemon spawns");
    let frame_addr = handle.frame_addr.to_string();
    let http_addr = handle.http_addr.to_string();

    // Ingest phase: every stream on its own connection, replayed as
    // fast as the daemon accepts bytes.
    let start = Instant::now();
    std::thread::scope(|s| {
        for (id, label, bytes) in &streams {
            let frame_addr = frame_addr.clone();
            s.spawn(move || {
                let mut conn = TcpStream::connect(&frame_addr).expect("connect to daemon hub");
                conn.set_nodelay(true).expect("nodelay");
                conn.write_all(&hello_frame(*id, label, 0).encode()).expect("hello writes");
                // Read the hub's ack before streaming: closing a
                // socket with the unread ack still buffered raises an
                // RST that can discard the stream's own tail in
                // flight (a real transport always consumes its ack).
                let mut reader = BufReader::new(conn.try_clone().expect("socket clones"));
                let _ack = read_frame_from(&mut reader).expect("hub ack reads");
                conn.write_all(bytes).expect("stream writes");
                conn.flush().expect("stream flushes");
            });
        }
    });
    // All writers have drained: ingest proper ends here. The tail —
    // waiting for the daemon's fold to answer byte-identically — is
    // timed separately, so `ingest_frames_per_sec` no longer folds
    // polling sleeps into the daemon's delivery rate.
    let ingest_seconds = start.elapsed().as_secs_f64();
    let converge_start = Instant::now();
    let deadline = converge_start + Duration::from_secs(600);
    loop {
        let (status, body) = http_get(&http_addr, "/hhh?all=1&state=1");
        if status == 200 && body == expected {
            break;
        }
        assert!(Instant::now() < deadline, "daemon never converged on the reference fold");
        std::thread::sleep(Duration::from_millis(10));
    }
    let converge_seconds = converge_start.elapsed().as_secs_f64();
    let frames = handle.metrics.frames_total();

    // Query phase: steady-state latest-point queries.
    let mut samples: Vec<f64> = (0..QUERY_SAMPLES)
        .map(|_| {
            let t = Instant::now();
            let (status, body) = http_get(&http_addr, "/hhh?kind=exact");
            assert_eq!(status, 200);
            assert!(!body.is_empty(), "steady-state query must see the fold");
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let at = |q: f64| samples[((samples.len() - 1) as f64 * q).round() as usize];
    let row = AggdRow {
        scale: scale_label,
        shards: k,
        streams: streams.len(),
        frames,
        ingest_seconds,
        converge_seconds,
        ingest_frames_per_sec: frames as f64 / ingest_seconds,
        query_p50_ms: at(0.5),
        query_p99_ms: at(0.99),
    };
    handle.shutdown();
    row
}

/// Render rows as JSON lines (the `BENCH_pr7.json` format).
pub fn aggd_json(rows: &[AggdRow]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{{\"experiment\": \"aggd\", \"scale\": \"{}\", \"shards\": {}, \"streams\": {}, \
             \"frames\": {}, \"ingest_seconds\": {:.6}, \"converge_seconds\": {:.6}, \
             \"ingest_frames_per_sec\": {:.1}, \
             \"query_p50_ms\": {:.3}, \"query_p99_ms\": {:.3}}}\n",
            r.scale,
            r.shards,
            r.streams,
            r.frames,
            r.ingest_seconds,
            r.converge_seconds,
            r.ingest_frames_per_sec,
            r.query_p50_ms,
            r.query_p99_ms,
        ));
    }
    out
}

/// Render rows as an aligned text table.
pub fn aggd_table(rows: &[AggdRow]) -> String {
    let mut t = Table::new(vec![
        "scale",
        "shards",
        "streams",
        "frames",
        "ingest-s",
        "converge-s",
        "ingest-frames/s",
        "query-p50-ms",
        "query-p99-ms",
    ]);
    for r in rows {
        t.row(vec![
            r.scale.to_string(),
            r.shards.to_string(),
            r.streams.to_string(),
            r.frames.to_string(),
            fmt_f(r.ingest_seconds, 3),
            fmt_f(r.converge_seconds, 3),
            format!("{:.0}", r.ingest_frames_per_sec),
            fmt_f(r.query_p50_ms, 3),
            fmt_f(r.query_p99_ms, 3),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full e2e at a tiny ad-hoc horizon: daemon up, 10 streams
    /// in, byte-identity reached (run_aggd_on panics otherwise), sane
    /// row with ingest and convergence on separate clocks.
    #[test]
    fn daemon_e2e_converges_and_reports() {
        let horizon = hhh_nettypes::TimeSpan::from_secs(10);
        let trace = scenario::scenario_trace(horizon);
        let row = run_aggd_on(&trace, horizon, 2, "test");
        assert_eq!(row.streams, 10);
        assert!(row.frames > 0);
        assert!(row.ingest_frames_per_sec > 0.0);
        assert!(row.ingest_seconds > 0.0);
        assert!(row.converge_seconds >= 0.0);
        assert!(row.query_p50_ms > 0.0 && row.query_p50_ms <= row.query_p99_ms);
        let json = aggd_json(std::slice::from_ref(&row));
        assert!(json.contains("\"experiment\": \"aggd\""));
        assert!(json.contains("\"converge_seconds\""));
        assert!(json.contains("\"ingest_frames_per_sec\""));
        assert!(aggd_table(&[row]).contains("ingest-frames/s"));
    }
}
