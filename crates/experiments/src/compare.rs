//! Experiment E3 — the comparison the paper's §3 promises: the
//! time-decaying proof of concept against existing solutions, on
//! **accuracy**, **performance** and **resource utilization**.
//!
//! Setup: one bursty day trace; a 10 s measurement window at a 5 %
//! byte threshold. The *oracle* is the exact HHH set of the trailing
//! 10 s window, evaluated every second (the sliding-exact driver).
//! Detectors answer at every probe instant with their freshest
//! available report:
//!
//! * windowed detectors (exact, Space-Saving HHH, RHHH) report at
//!   their disjoint window boundaries; between boundaries their answer
//!   is *stale* — that staleness is precisely the disjoint-window
//!   blindness the paper demonstrates, now measured as lost recall;
//! * the windowless TDBF detector (half-life = w/2) answers at any
//!   instant;
//! * the HH baselines (HashPipe \[5\], UnivMon \[4\]) are scored on the
//!   level-0 (host) subset of the oracle, since they do not aggregate
//!   prefixes.
//!
//! Performance is wall-clock per packet on the same stream;
//! resources are detector state bytes plus, for the two match-action
//! programs, the pipeline model's stage/SRAM/hash accounting.

use crate::Scale;
use hhh_analysis::{fmt_f, SetAccuracy, Table};
use hhh_core::{
    ContinuousDetector, ExactHhh, HashPipe, HhhDetector, Rhhh, SpaceSavingHhh, TdbfHhh,
    TdbfHhhConfig, Threshold, UnivMonLite,
};
use hhh_dataplane::programs::{DpHashPipe, DpTdbf};
use hhh_dataplane::ResourceReport;
use hhh_hierarchy::Ipv4Hierarchy;
use hhh_nettypes::{Ipv4Prefix, Nanos, PacketRecord, TimeSpan};
use hhh_sketches::DecayRate;
use hhh_trace::{scenarios, TraceGenerator};
use hhh_window::WindowReport;
use hhh_window::{Continuous, Disjoint, Pipeline, SlidingExact};
use std::collections::BTreeSet;
use std::time::Instant;

/// The measurement window.
pub const WINDOW: TimeSpan = TimeSpan::from_secs(10);
/// Probe period (the oracle's sliding step).
pub const PROBE_EVERY: TimeSpan = TimeSpan::from_secs(1);
/// The byte threshold.
pub const THRESHOLD_PCT: f64 = 5.0;

/// Accuracy of one detector against the oracle.
#[derive(Clone, Debug)]
pub struct AccuracyRow {
    /// Detector name.
    pub name: &'static str,
    /// Micro-averaged accuracy over all probes.
    pub overall: SetAccuracy,
    /// Accuracy over only the probes aligned with disjoint window
    /// boundaries (where windowed detectors are freshest).
    pub aligned: SetAccuracy,
    /// Number of probes evaluated.
    pub probes: usize,
}

/// Update throughput of one detector.
#[derive(Clone, Debug)]
pub struct PerfRow {
    /// Detector name.
    pub name: &'static str,
    /// Nanoseconds per packet (wall clock, single thread).
    pub ns_per_packet: f64,
    /// Millions of packets per second.
    pub mpps: f64,
}

/// State size of one detector (and pipeline resources when the
/// detector is a match-action program).
#[derive(Clone, Debug)]
pub struct ResourceRow {
    /// Detector name.
    pub name: &'static str,
    /// In-memory state bytes.
    pub state_bytes: usize,
    /// Match-action pipeline accounting, when applicable.
    pub pipeline: Option<ResourceReport>,
}

/// Full E3 results.
#[derive(Clone, Debug)]
pub struct CompareResults {
    /// HHH detectors vs the sliding-exact oracle.
    pub hhh_accuracy: Vec<AccuracyRow>,
    /// HH baselines vs the level-0 oracle subset.
    pub hh_accuracy: Vec<AccuracyRow>,
    /// Per-packet update cost.
    pub performance: Vec<PerfRow>,
    /// Memory / pipeline resources.
    pub resources: Vec<ResourceRow>,
    /// Packets in the evaluation trace.
    pub packets: usize,
    /// Scale used.
    pub scale: Scale,
}

pub(crate) fn trace(scale: Scale) -> Vec<PacketRecord> {
    let mut model = scenarios::day_trace(0, scale.compare_duration());
    model.total_pps = match scale {
        Scale::Smoke => 4_000.0,
        Scale::Quick => 15_000.0,
        Scale::Paper => 25_000.0,
    };
    TraceGenerator::new(model, scenarios::day_seed(0)).collect()
}

/// Score stale-capable reports: for each probe, pick the freshest
/// report with `end ≤ probe` and compare its prefix set to the oracle.
pub(crate) fn score_with_staleness(
    oracle: &[WindowReport<Ipv4Prefix>],
    probes: &[Nanos],
    reports: &[(Nanos, BTreeSet<Ipv4Prefix>)],
    window: TimeSpan,
    level0_only: bool,
) -> AccuracyRow {
    let mut overall = SetAccuracy::default();
    let mut aligned = SetAccuracy::default();
    let mut fresh: usize = 0;
    for (o, probe) in oracle.iter().zip(probes) {
        let truth: BTreeSet<Ipv4Prefix> = if level0_only {
            o.hhhs.iter().filter(|h| h.level == 0).map(|h| h.prefix).collect()
        } else {
            o.prefix_set()
        };
        while fresh + 1 < reports.len() && reports[fresh + 1].0 <= *probe {
            fresh += 1;
        }
        let predicted: BTreeSet<Ipv4Prefix> = if !reports.is_empty() && reports[fresh].0 <= *probe {
            reports[fresh].1.clone()
        } else {
            BTreeSet::new()
        };
        let acc = SetAccuracy::compare(&truth, &predicted);
        overall.merge(acc);
        let is_aligned = (*probe - Nanos::ZERO) % window == TimeSpan::ZERO;
        if is_aligned {
            aligned.merge(acc);
        }
    }
    AccuracyRow { name: "", overall, aligned, probes: probes.len() }
}

/// Run E3.
pub fn run(scale: Scale) -> CompareResults {
    let pkts = trace(scale);
    let horizon = scale.compare_duration();
    let hierarchy = Ipv4Hierarchy::bytes();
    let threshold = Threshold::percent(THRESHOLD_PCT);

    // ---- Oracle: exact trailing-window HHH at every probe. ----
    let oracle_all = Pipeline::new(pkts.iter().copied())
        .engine(SlidingExact::new(&hierarchy, horizon, WINDOW, PROBE_EVERY, &[threshold], |p| {
            p.src
        }))
        .collect()
        .run();
    let oracle = &oracle_all[0];
    // Probe instants = window ends.
    let probes: Vec<Nanos> = oracle.iter().map(|r| r.end).collect();

    // ---- Windowed HHH detectors over disjoint windows. ----
    let mut hhh_accuracy = Vec::new();
    {
        let mut exact = ExactHhh::new(hierarchy);
        let mut ss = SpaceSavingHhh::new(hierarchy, 256);
        let mut rhhh = Rhhh::new(hierarchy, 256, 0xE3);
        type Run = (&'static str, Vec<(Nanos, BTreeSet<Ipv4Prefix>)>);
        let runs: Vec<Run> = vec![
            (
                "exact (disjoint)",
                Pipeline::new(pkts.iter().copied())
                    .engine(Disjoint::new(&mut exact, horizon, WINDOW, &[threshold], |p| p.src))
                    .collect()
                    .run()
                    .remove(0)
                    .iter()
                    .map(|r| (r.end, r.prefix_set()))
                    .collect(),
            ),
            (
                "ss-hhh (disjoint)",
                Pipeline::new(pkts.iter().copied())
                    .engine(Disjoint::new(&mut ss, horizon, WINDOW, &[threshold], |p| p.src))
                    .collect()
                    .run()
                    .remove(0)
                    .iter()
                    .map(|r| (r.end, r.prefix_set()))
                    .collect(),
            ),
            (
                "rhhh (disjoint)",
                Pipeline::new(pkts.iter().copied())
                    .engine(Disjoint::new(&mut rhhh, horizon, WINDOW, &[threshold], |p| p.src))
                    .collect()
                    .run()
                    .remove(0)
                    .iter()
                    .map(|r| (r.end, r.prefix_set()))
                    .collect(),
            ),
        ];
        for (name, reports) in runs {
            let mut row = score_with_staleness(oracle, &probes, &reports, WINDOW, false);
            row.name = name;
            hhh_accuracy.push(row);
        }
    }

    // ---- The windowless TDBF detector, probed directly. ----
    {
        let mut tdbf = TdbfHhh::new(
            hierarchy,
            TdbfHhhConfig {
                half_life: WINDOW / 2,
                admit_fraction: THRESHOLD_PCT / 100.0 / 10.0,
                ..TdbfHhhConfig::default()
            },
        );
        let reports = Pipeline::new(pkts.iter().copied())
            .engine(Continuous::new(&mut tdbf, &probes, threshold, |p| p.src))
            .collect()
            .run()
            .remove(0);
        let sets: Vec<(Nanos, BTreeSet<Ipv4Prefix>)> =
            reports.iter().map(|r| (r.start, r.prefix_set())).collect();
        let mut row = score_with_staleness(oracle, &probes, &sets, WINDOW, false);
        row.name = "tdbf-hhh (windowless)";
        hhh_accuracy.push(row);
    }

    // ---- HH baselines on the level-0 oracle. ----
    let mut hh_accuracy = Vec::new();
    {
        // HashPipe and UnivMon run disjoint windows by hand (they are
        // plain HH structures, not HhhDetector implementors).
        let n_windows = horizon / WINDOW;
        let mut hashpipe = HashPipe::<u32>::new(4, 1024, 0xE3);
        let mut univmon = UnivMonLite::<u32>::new(12, 512, 5, 64, 0xE3);
        let mut hp_reports: Vec<(Nanos, BTreeSet<Ipv4Prefix>)> = Vec::new();
        let mut um_reports: Vec<(Nanos, BTreeSet<Ipv4Prefix>)> = Vec::new();
        let mut cur = 0u64;
        let mut window_bytes = 0u64;
        let flush = |cur: u64,
                     window_bytes: u64,
                     hashpipe: &mut HashPipe<u32>,
                     univmon: &mut UnivMonLite<u32>,
                     hp_reports: &mut Vec<(Nanos, BTreeSet<Ipv4Prefix>)>,
                     um_reports: &mut Vec<(Nanos, BTreeSet<Ipv4Prefix>)>| {
            let end = Nanos::ZERO + WINDOW * (cur + 1);
            let t_abs = threshold.absolute(window_bytes);
            hp_reports.push((
                end,
                hashpipe
                    .heavy_hitters(t_abs)
                    .into_iter()
                    .map(|(k, _)| Ipv4Prefix::host(k))
                    .collect(),
            ));
            um_reports.push((
                end,
                univmon
                    .heavy_hitters(t_abs)
                    .into_iter()
                    .map(|(k, _)| Ipv4Prefix::host(k))
                    .collect(),
            ));
            hashpipe.reset();
            univmon.reset();
        };
        for p in &pkts {
            let w = p.ts.bin_index(WINDOW);
            if w >= n_windows {
                break;
            }
            while cur < w {
                flush(
                    cur,
                    window_bytes,
                    &mut hashpipe,
                    &mut univmon,
                    &mut hp_reports,
                    &mut um_reports,
                );
                window_bytes = 0;
                cur += 1;
            }
            hashpipe.observe(p.src, p.wire_len as u64);
            univmon.observe(p.src, p.wire_len as u64);
            window_bytes += p.wire_len as u64;
        }
        while cur < n_windows {
            flush(cur, window_bytes, &mut hashpipe, &mut univmon, &mut hp_reports, &mut um_reports);
            window_bytes = 0;
            cur += 1;
        }
        let mut row = score_with_staleness(oracle, &probes, &hp_reports, WINDOW, true);
        row.name = "hashpipe (disjoint, HH)";
        hh_accuracy.push(row);
        let mut row = score_with_staleness(oracle, &probes, &um_reports, WINDOW, true);
        row.name = "univmon (disjoint, HH)";
        hh_accuracy.push(row);
    }

    // ---- Performance: per-packet update cost on the same stream. ----
    let mut performance = Vec::new();
    let mut resources = Vec::new();
    {
        let time_it = |name: &'static str, mut f: Box<dyn FnMut(&PacketRecord)>| -> PerfRow {
            let start = Instant::now();
            for p in &pkts {
                f(p);
            }
            let ns = start.elapsed().as_nanos() as f64 / pkts.len() as f64;
            PerfRow { name, ns_per_packet: ns, mpps: 1e3 / ns }
        };

        let mut exact = ExactHhh::new(hierarchy);
        performance.push(time_it(
            "exact",
            Box::new(move |p| {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut exact, p.src, p.wire_len as u64)
            }),
        ));
        let mut ss = SpaceSavingHhh::new(hierarchy, 256);
        performance
            .push(time_it("ss-hhh", Box::new(move |p| ss.observe(p.src, p.wire_len as u64))));
        let mut rhhh = Rhhh::new(hierarchy, 256, 1);
        performance
            .push(time_it("rhhh", Box::new(move |p| rhhh.observe(p.src, p.wire_len as u64))));
        let mut tdbf = TdbfHhh::new(
            hierarchy,
            TdbfHhhConfig { half_life: WINDOW / 2, ..TdbfHhhConfig::default() },
        );
        performance.push(time_it(
            "tdbf-hhh",
            Box::new(move |p| tdbf.observe(p.ts, p.src, p.wire_len as u64)),
        ));
        let mut hp = HashPipe::<u32>::new(4, 1024, 1);
        performance
            .push(time_it("hashpipe", Box::new(move |p| hp.observe(p.src, p.wire_len as u64))));
        let mut um = UnivMonLite::<u32>::new(12, 512, 5, 64, 1);
        performance
            .push(time_it("univmon", Box::new(move |p| um.observe(p.src, p.wire_len as u64))));
        let mut dhp = DpHashPipe::new(4, 1024, 1);
        performance.push(time_it(
            "dp-hashpipe (model)",
            Box::new(move |p| {
                dhp.observe(p.src, p.wire_len as u64).expect("discipline holds");
            }),
        ));
        let rate = DecayRate::from_half_life(WINDOW / 2);
        let mut dtdbf = DpTdbf::new(4096, 4, rate, TimeSpan::from_millis(1), 1);
        performance.push(time_it(
            "dp-tdbf (model)",
            Box::new(move |p| {
                dtdbf.insert(p.src, p.wire_len as u64, p.ts).expect("discipline holds");
            }),
        ));

        // ---- Resources ----
        let exact = {
            // Re-observe to measure populated state (worst case: one
            // full window of traffic).
            let mut d = ExactHhh::new(hierarchy);
            for p in pkts.iter().take_while(|p| p.ts < Nanos::ZERO + WINDOW) {
                HhhDetector::<Ipv4Hierarchy>::observe(&mut d, p.src, p.wire_len as u64);
            }
            d
        };
        resources.push(ResourceRow {
            name: "exact (one window)",
            state_bytes: HhhDetector::<Ipv4Hierarchy>::state_bytes(&exact),
            pipeline: None,
        });
        let ss = SpaceSavingHhh::new(hierarchy, 256);
        resources.push(ResourceRow {
            name: "ss-hhh",
            state_bytes: ss.state_bytes(),
            pipeline: None,
        });
        let rhhh = Rhhh::new(hierarchy, 256, 1);
        resources.push(ResourceRow {
            name: "rhhh",
            state_bytes: rhhh.state_bytes(),
            pipeline: None,
        });
        let tdbf = TdbfHhh::new(
            hierarchy,
            TdbfHhhConfig { half_life: WINDOW / 2, ..TdbfHhhConfig::default() },
        );
        resources.push(ResourceRow {
            name: "tdbf-hhh",
            state_bytes: ContinuousDetector::<Ipv4Hierarchy>::state_bytes(&tdbf),
            pipeline: None,
        });
        let hp = HashPipe::<u32>::new(4, 1024, 1);
        resources.push(ResourceRow {
            name: "hashpipe",
            state_bytes: hp.state_bytes(),
            pipeline: None,
        });
        let um = UnivMonLite::<u32>::new(12, 512, 5, 64, 1);
        resources.push(ResourceRow {
            name: "univmon",
            state_bytes: um.state_bytes(),
            pipeline: None,
        });

        let mut dhp = DpHashPipe::new(4, 1024, 1);
        for p in pkts.iter().take(10_000) {
            dhp.observe(p.src, p.wire_len as u64).expect("discipline holds");
        }
        resources.push(ResourceRow {
            name: "dp-hashpipe",
            state_bytes: 0,
            pipeline: Some(dhp.resources()),
        });
        let mut dtdbf = DpTdbf::new(4096, 4, rate, TimeSpan::from_millis(1), 1);
        for p in pkts.iter().take(10_000) {
            dtdbf.insert(p.src, p.wire_len as u64, p.ts).expect("discipline holds");
        }
        resources.push(ResourceRow {
            name: "dp-tdbf",
            state_bytes: 0,
            pipeline: Some(dtdbf.resources()),
        });
    }

    CompareResults { hhh_accuracy, hh_accuracy, performance, resources, packets: pkts.len(), scale }
}

impl CompareResults {
    /// Render the accuracy table.
    pub fn accuracy_table(&self) -> String {
        let mut t =
            Table::new(vec!["detector", "precision", "recall", "F1", "recall@aligned", "probes"]);
        for r in self.hhh_accuracy.iter().chain(&self.hh_accuracy) {
            t.row(vec![
                r.name.to_string(),
                fmt_f(r.overall.precision(), 3),
                fmt_f(r.overall.recall(), 3),
                fmt_f(r.overall.f1(), 3),
                fmt_f(r.aligned.recall(), 3),
                r.probes.to_string(),
            ]);
        }
        t.render()
    }

    /// Render the performance table.
    pub fn performance_table(&self) -> String {
        let mut t = Table::new(vec!["detector", "ns/packet", "Mpps"]);
        for r in &self.performance {
            t.row(vec![r.name.to_string(), fmt_f(r.ns_per_packet, 0), fmt_f(r.mpps, 2)]);
        }
        t.render()
    }

    /// Render the resources table.
    pub fn resources_table(&self) -> String {
        let mut t = Table::new(vec![
            "detector",
            "state KiB",
            "stages",
            "SRAM KiB",
            "hashes/pkt",
            "max reg/pkt",
        ]);
        for r in &self.resources {
            match &r.pipeline {
                None => {
                    t.row(vec![
                        r.name.to_string(),
                        fmt_f(r.state_bytes as f64 / 1024.0, 1),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
                Some(p) => {
                    t.row(vec![
                        r.name.to_string(),
                        "-".into(),
                        p.stages.to_string(),
                        fmt_f(p.sram_kib(), 1),
                        p.hash_units_per_packet.to_string(),
                        p.max_register_accesses.to_string(),
                    ]);
                }
            }
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_comparison_shapes() {
        let res = run(Scale::Smoke);
        assert_eq!(res.hhh_accuracy.len(), 4);
        assert_eq!(res.hh_accuracy.len(), 2);
        assert_eq!(res.performance.len(), 8);
        assert_eq!(res.resources.len(), 8);
        assert!(res.packets > 50_000);

        let by_name = |n: &str| {
            res.hhh_accuracy
                .iter()
                .find(|r| r.name.starts_with(n))
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        // Exact disjoint is perfect at aligned probes (it IS the
        // oracle there)…
        let exact = by_name("exact");
        assert!(exact.aligned.recall() > 0.999, "exact@aligned recall {}", exact.aligned.recall());
        assert!(exact.aligned.precision() > 0.999);
        // …and staleness between boundaries can only hurt, never help.
        // (At smoke scale the HHH set can be stable enough that the
        // stale answer still matches; the Quick/Paper runs in
        // EXPERIMENTS.md show the actual recall gap.)
        assert!(
            exact.overall.recall() <= exact.aligned.recall() + 1e-9,
            "staleness helped recall?! {} > {}",
            exact.overall.recall(),
            exact.aligned.recall()
        );
        // The windowless detector must beat the *approximate* windowed
        // detectors on overall recall (its entire reason to exist).
        let tdbf = by_name("tdbf-hhh");
        let ss = by_name("ss-hhh");
        assert!(
            tdbf.overall.recall() >= ss.overall.recall() - 0.05,
            "tdbf recall {} vs ss {}",
            tdbf.overall.recall(),
            ss.overall.recall()
        );

        // Tables render without panicking.
        assert!(res.accuracy_table().contains("tdbf"));
        assert!(res.performance_table().contains("ns/packet"));
        assert!(res.resources_table().contains("SRAM"));

        // RHHH must be the fastest HHH detector (constant-time update
        // is its claim) — compare against the full-ancestry detector.
        let perf = |n: &str| {
            res.performance
                .iter()
                .find(|r| r.name == n)
                .unwrap_or_else(|| panic!("{n} missing"))
                .ns_per_packet
        };
        assert!(
            perf("rhhh") < perf("ss-hhh"),
            "rhhh ({}) should be faster than full-ancestry ss-hhh ({})",
            perf("rhhh"),
            perf("ss-hhh")
        );
    }
}
