//! IPv4 source/destination address hierarchies at configurable
//! granularity.

use crate::chain::Hierarchy;
use hhh_nettypes::Ipv4Prefix;

/// The IPv4 address hierarchy with a configurable generalization step.
///
/// With granularity `g`, the prefix lengths are `32, 32-g, 32-2g, …`
/// down to (and always including) `0`. The two standard instantiations:
///
/// * [`Ipv4Hierarchy::bits()`] — `g = 1`, 33 levels, the full binary
///   trie. What "HHH on source IPs" means in the exact literature.
/// * [`Ipv4Hierarchy::bytes()`] — `g = 8`, 5 levels (/32, /24, /16, /8,
///   /0). What RHHH and most data-plane work use, because the level
///   count bounds per-packet work.
///
/// Any `g` in `1..=32` is allowed; when `g` does not divide 32 the last
/// step before the root is simply shorter (e.g. `g = 12` gives /32, /20,
/// /8, /0).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv4Hierarchy {
    granularity: u8,
    // Network mask per level, precomputed at construction so the
    // per-packet `generalize` is one load + one AND instead of a
    // length computation and a branchy shift. Entries past the root
    // level repeat the root mask (0) and are never indexed.
    masks: [u32; 33],
}

impl Ipv4Hierarchy {
    /// A hierarchy that generalizes `granularity` bits per level.
    /// Panics unless `1 <= granularity <= 32`.
    pub const fn new(granularity: u8) -> Self {
        assert!(granularity >= 1 && granularity <= 32, "granularity must be in 1..=32");
        let mut masks = [0u32; 33];
        let mut level = 0usize;
        while level < 33 {
            let drop = level as u32 * granularity as u32;
            let len = if drop >= 32 { 0 } else { (32 - drop) as u8 };
            masks[level] = Ipv4Prefix::mask(len);
            level += 1;
        }
        Ipv4Hierarchy { granularity, masks }
    }

    /// Bit-granularity: 33 levels, /32 … /0.
    pub const fn bits() -> Self {
        Self::new(1)
    }

    /// Byte-granularity: 5 levels, /32, /24, /16, /8, /0.
    pub const fn bytes() -> Self {
        Self::new(8)
    }

    /// The generalization step in bits.
    pub const fn granularity(&self) -> u8 {
        self.granularity
    }

    /// The prefix length at a level (level 0 → 32, root level → 0).
    #[inline]
    pub fn prefix_len_at(&self, level: usize) -> u8 {
        let drop = (level as u32) * self.granularity as u32;
        32u32.saturating_sub(drop) as u8
    }

    /// The precomputed network mask at a level (level 0 → all ones,
    /// root level → 0). Panics if `level >= levels()`.
    #[inline]
    pub fn mask_at(&self, level: usize) -> u32 {
        assert!(level < self.levels(), "level {level} out of range");
        self.masks[level]
    }

    /// The level of a given prefix length. Panics if `len` is not one of
    /// this hierarchy's lengths.
    #[inline]
    pub fn level_for_len(&self, len: u8) -> usize {
        if len == 0 {
            return self.levels() - 1;
        }
        let drop = 32 - len as u32;
        assert!(
            drop.is_multiple_of(self.granularity as u32),
            "prefix length /{len} is not a level of the g={} hierarchy",
            self.granularity
        );
        (drop / self.granularity as u32) as usize
    }
}

impl Hierarchy for Ipv4Hierarchy {
    type Item = u32;
    type Prefix = Ipv4Prefix;

    #[inline]
    fn levels(&self) -> usize {
        // ceil(32 / g) intermediate steps plus the item level.
        32usize.div_ceil(self.granularity as usize) + 1
    }

    #[inline]
    fn generalize(&self, item: u32, level: usize) -> Ipv4Prefix {
        assert!(level < self.levels(), "level {level} out of range");
        // Table-driven: one load + one AND. In a level-major loop the
        // mask is loop-invariant, so the per-item masking vectorizes.
        Ipv4Prefix::from_masked(item & self.masks[level], self.prefix_len_at(level))
    }

    #[inline]
    fn item_prefix(&self, item: u32) -> Ipv4Prefix {
        // Level 0 is always /32, so the host constructor skips the
        // level check, the mask-table load, and the masking AND that
        // `generalize` pays. Bottom-pipe detectors call this per packet.
        Ipv4Prefix::host(item)
    }

    #[inline]
    fn prefix_item(&self, p: Ipv4Prefix) -> Option<u32> {
        (p.len() == 32).then(|| p.addr())
    }

    #[inline]
    fn level_of(&self, p: Ipv4Prefix) -> usize {
        self.level_for_len(p.len())
    }

    #[inline]
    fn parent(&self, p: Ipv4Prefix) -> Option<Ipv4Prefix> {
        if p.is_root() {
            None
        } else {
            Some(p.ancestor(p.len().saturating_sub(self.granularity)))
        }
    }

    #[inline]
    fn root(&self) -> Ipv4Prefix {
        Ipv4Prefix::ROOT
    }

    #[inline]
    fn contains(&self, ancestor: Ipv4Prefix, descendant: Ipv4Prefix) -> bool {
        ancestor.contains(descendant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn byte_hierarchy_shape() {
        let h = Ipv4Hierarchy::bytes();
        assert_eq!(h.levels(), 5);
        let item = 0x0A010203; // 10.1.2.3
        let want = ["10.1.2.3/32", "10.1.2.0/24", "10.1.0.0/16", "10.0.0.0/8", "0.0.0.0/0"];
        for (l, w) in want.iter().enumerate() {
            assert_eq!(h.generalize(item, l).to_string(), *w);
            assert_eq!(h.level_of(h.generalize(item, l)), l);
        }
    }

    #[test]
    fn bit_hierarchy_shape() {
        let h = Ipv4Hierarchy::bits();
        assert_eq!(h.levels(), 33);
        assert_eq!(h.generalize(u32::MAX, 0).len(), 32);
        assert_eq!(h.generalize(u32::MAX, 32), Ipv4Prefix::ROOT);
    }

    /// Golden: the precomputed mask table must match the arithmetic
    /// definition `mask(len) = len == 0 ? 0 : !0 << (32 - len)` at every
    /// level, for every granularity — spot-pinned values included so a
    /// table-generation bug can't silently redefine both sides.
    #[test]
    fn mask_table_pinned_at_every_level() {
        for g in 1u8..=32 {
            let h = Ipv4Hierarchy::new(g);
            for l in 0..h.levels() {
                let len = h.prefix_len_at(l);
                let want = if len == 0 { 0u32 } else { u32::MAX << (32 - len) };
                assert_eq!(h.mask_at(l), want, "g={g} level={l}");
                assert_eq!(Ipv4Prefix::mask(len), want, "len={len}");
                // generalize must agree with mask-then-construct.
                assert_eq!(h.generalize(0xDEAD_BEEF, l), Ipv4Prefix::new(0xDEAD_BEEF, len));
            }
        }
        let h = Ipv4Hierarchy::bytes();
        assert_eq!(
            (0..h.levels()).map(|l| h.mask_at(l)).collect::<Vec<_>>(),
            vec![0xFFFF_FFFF, 0xFFFF_FF00, 0xFFFF_0000, 0xFF00_0000, 0x0000_0000],
        );
        let b = Ipv4Hierarchy::bits();
        assert_eq!(b.mask_at(0), u32::MAX);
        assert_eq!(b.mask_at(1), 0xFFFF_FFFE);
        assert_eq!(b.mask_at(31), 0x8000_0000);
        assert_eq!(b.mask_at(32), 0);
    }

    #[test]
    fn non_dividing_granularity() {
        let h = Ipv4Hierarchy::new(12);
        // /32, /20, /8, /0
        assert_eq!(h.levels(), 4);
        assert_eq!(h.prefix_len_at(0), 32);
        assert_eq!(h.prefix_len_at(1), 20);
        assert_eq!(h.prefix_len_at(2), 8);
        assert_eq!(h.prefix_len_at(3), 0);
        // Parent of the /8 level is the root, even though 8 < 12.
        let p = h.generalize(0xDEADBEEF, 2);
        assert_eq!(h.parent(p), Some(Ipv4Prefix::ROOT));
    }

    #[test]
    fn parent_matches_next_level() {
        for g in [1u8, 2, 4, 8, 12, 16, 32] {
            let h = Ipv4Hierarchy::new(g);
            let item = 0xC0A80A01u32;
            for l in 0..h.levels() - 1 {
                let p = h.generalize(item, l);
                assert_eq!(h.parent(p), Some(h.generalize(item, l + 1)), "g={g} level={l}");
            }
            assert_eq!(h.parent(h.root()), None);
        }
    }

    #[test]
    fn all_prefixes_ends_at_root() {
        let h = Ipv4Hierarchy::bytes();
        let ps = h.all_prefixes(0x01020304);
        assert_eq!(ps.len(), 5);
        assert_eq!(*ps.last().unwrap(), Ipv4Prefix::ROOT);
    }

    #[test]
    #[should_panic(expected = "not a level")]
    fn level_of_foreign_prefix_panics() {
        let h = Ipv4Hierarchy::bytes();
        let _ = h.level_of("10.0.0.0/9".parse().unwrap());
    }

    proptest! {
        #[test]
        fn contract_holds(item in any::<u32>(), g in 1u8..=32) {
            let h = Ipv4Hierarchy::new(g);
            let root_level = h.levels() - 1;
            prop_assert_eq!(h.generalize(item, root_level), h.root());
            for l in 0..h.levels() {
                let p = h.generalize(item, l);
                prop_assert_eq!(h.level_of(p), l);
                prop_assert!(p.contains_addr(item));
                if l + 1 < h.levels() {
                    prop_assert_eq!(h.parent(p).unwrap(), h.generalize(item, l + 1));
                    prop_assert!(h.contains(h.generalize(item, l + 1), p));
                }
            }
        }

        #[test]
        fn prefix_item_inverts_level_zero_only(item in any::<u32>(), g in 1u8..=32) {
            let h = Ipv4Hierarchy::new(g);
            prop_assert_eq!(h.prefix_item(h.item_prefix(item)), Some(item));
            for l in 1..h.levels() {
                prop_assert_eq!(h.prefix_item(h.generalize(item, l)), None);
            }
        }

        #[test]
        fn distinct_items_share_ancestors_correctly(a in any::<u32>(), b in any::<u32>()) {
            let h = Ipv4Hierarchy::bytes();
            for l in 0..h.levels() {
                let pa = h.generalize(a, l);
                let pb = h.generalize(b, l);
                // Same level prefixes are either equal or disjoint.
                if pa != pb {
                    prop_assert!(!h.contains(pa, pb));
                    prop_assert!(!h.contains(pb, pa));
                }
            }
        }
    }
}
