//! # hhh-hierarchy
//!
//! Prefix hierarchies: the generalization structure that turns heavy
//! hitter detection into *hierarchical* heavy hitter detection.
//!
//! A one-dimensional hierarchy (this crate's [`Hierarchy`] trait) is a
//! chain: every item (e.g. an IPv4 source address) generalizes to exactly
//! one prefix per level, and each level's prefix is contained in the next
//! level's. The paper's experiments use the one-dimensional source-IP
//! hierarchy; the classic instantiations are *bit-granularity* (33 levels
//! for IPv4: /32, /31, …, /0) and *byte-granularity* (5 levels: /32, /24,
//! /16, /8, /0), both provided by [`Ipv4Hierarchy`].
//!
//! Two-dimensional HHH over (source, destination) pairs forms a lattice,
//! not a chain — a node can have two parents (generalize source, or
//! generalize destination). That structure is provided by
//! [`TwoDimHierarchy`] with its own node type and parent enumeration, and
//! `hhh-core` has a dedicated exact algorithm for it.
//!
//! ## Level numbering convention
//!
//! Level `0` is the most specific (the item itself); higher levels are
//! more general; the last level (`levels() - 1`) is the root. This is the
//! convention of the RHHH paper and makes "walk up `k` levels" a simple
//! addition. All algorithms in `hhh-core` assume it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod ipv4;
mod ipv6;
mod twodim;

pub use chain::Hierarchy;
pub use ipv4::Ipv4Hierarchy;
pub use ipv6::Ipv6Hierarchy;
pub use twodim::{TwoDimHierarchy, TwoDimNode};
