//! The one-dimensional hierarchy trait.

use core::fmt::{Debug, Display};
use core::hash::Hash;

/// A one-dimensional (chain) prefix hierarchy.
///
/// Implementations define, for a domain of items, a fixed set of
/// generalization levels. The contract (checked by the property tests in
/// this crate and relied upon by every detector in `hhh-core`):
///
/// 1. `generalize(item, 0)` is the unique most-specific prefix of `item`,
///    and `generalize(item, levels() - 1) == root()` for every item.
/// 2. For `l + 1 < levels()`,
///    `parent(generalize(item, l)) == Some(generalize(item, l + 1))`,
///    and `parent(root()) == None`.
/// 3. `level_of(generalize(item, l)) == l`.
/// 4. `contains(generalize(item, l2), generalize(item, l1))` for
///    `l1 <= l2` (higher levels contain lower levels of the same item).
///
/// Implementations are small value types (a granularity and little
/// else), so the trait takes `&self` everywhere and implementations are
/// `Copy`.
pub trait Hierarchy: Clone {
    /// The exact-level item observed on the wire (e.g. `u32` source
    /// IP). Items are plain wire integers: `Default` gives detectors a
    /// filler value for empty sentinel slots, and `Ord` a canonical
    /// order for deterministic tie-breaks.
    type Item: Copy + Eq + Ord + Hash + Debug + Default;
    /// A generalization of an item (e.g. an IPv4 prefix).
    type Prefix: Copy + Eq + Hash + Ord + Debug + Display;

    /// Number of levels including both the item level (0) and the root.
    fn levels(&self) -> usize;

    /// The prefix of `item` at `level`. Panics if `level >= levels()`.
    fn generalize(&self, item: Self::Item, level: usize) -> Self::Prefix;

    /// The level a prefix sits at.
    fn level_of(&self, p: Self::Prefix) -> usize;

    /// The next more-general prefix, or `None` at the root.
    fn parent(&self, p: Self::Prefix) -> Option<Self::Prefix>;

    /// The root prefix (contains everything).
    fn root(&self) -> Self::Prefix;

    /// Ancestor-or-self containment between two prefixes.
    fn contains(&self, ancestor: Self::Prefix, descendant: Self::Prefix) -> bool;

    /// The most specific prefix of an item (level 0).
    #[inline]
    fn item_prefix(&self, item: Self::Item) -> Self::Prefix {
        self.generalize(item, 0)
    }

    /// The item whose [`item_prefix`](Self::item_prefix) is `p`, or
    /// `None` when `p` sits above level 0. Level-0 prefixes are
    /// bijective with items, which lets bottom-level detectors store
    /// raw items (narrower than prefixes — no length byte, no
    /// padding) and rebuild prefixes only at report and decode time.
    fn prefix_item(&self, p: Self::Prefix) -> Option<Self::Item>;

    /// All prefixes of `item`, from level 0 up to the root.
    fn all_prefixes(&self, item: Self::Item) -> Vec<Self::Prefix> {
        (0..self.levels()).map(|l| self.generalize(item, l)).collect()
    }
}
