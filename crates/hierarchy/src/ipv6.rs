//! IPv6 address hierarchy at configurable granularity.

use crate::chain::Hierarchy;
use hhh_nettypes::Ipv6Prefix;

/// The IPv6 address hierarchy with a configurable generalization step.
///
/// Mirrors [`crate::Ipv4Hierarchy`] for the 128-bit domain. Sensible
/// granularities: `4` (nibble, follows the written representation), `8`
/// (byte), `16` (hextet). Bit granularity (`g = 1`) gives 129 levels,
/// which works but makes full-ancestry algorithms expensive — exactly
/// the trade-off the RHHH line of work addresses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv6Hierarchy {
    granularity: u8,
}

impl Ipv6Hierarchy {
    /// A hierarchy that generalizes `granularity` bits per level.
    /// Panics unless `1 <= granularity <= 128`.
    pub const fn new(granularity: u8) -> Self {
        assert!(granularity >= 1, "granularity must be >= 1");
        Ipv6Hierarchy { granularity }
    }

    /// Nibble granularity: 33 levels.
    pub const fn nibbles() -> Self {
        Self::new(4)
    }

    /// Hextet granularity: 9 levels (/128, /112, …, /0).
    pub const fn hextets() -> Self {
        Self::new(16)
    }

    /// The prefix length at a level.
    #[inline]
    pub fn prefix_len_at(&self, level: usize) -> u8 {
        let drop = (level as u32) * self.granularity as u32;
        128u32.saturating_sub(drop) as u8
    }

    /// The network mask at a level (a branchless table lookup; a
    /// per-instance table like [`crate::Ipv4Hierarchy`]'s would cost
    /// 2 KiB per `Copy` — at 128 bits the shared length-indexed table
    /// in `hhh-nettypes` is the same single load). Panics if
    /// `level >= levels()`.
    #[inline]
    pub fn mask_at(&self, level: usize) -> u128 {
        assert!(level < self.levels(), "level {level} out of range");
        Ipv6Prefix::mask(self.prefix_len_at(level))
    }
}

impl Hierarchy for Ipv6Hierarchy {
    type Item = u128;
    type Prefix = Ipv6Prefix;

    #[inline]
    fn levels(&self) -> usize {
        128usize.div_ceil(self.granularity as usize) + 1
    }

    #[inline]
    fn generalize(&self, item: u128, level: usize) -> Ipv6Prefix {
        assert!(level < self.levels(), "level {level} out of range");
        let len = self.prefix_len_at(level);
        Ipv6Prefix::from_masked(item & Ipv6Prefix::mask(len), len)
    }

    #[inline]
    fn item_prefix(&self, item: u128) -> Ipv6Prefix {
        // Level 0 is always /128, so the host constructor skips the
        // level check, the mask-table load, and the masking AND that
        // `generalize` pays. Bottom-pipe detectors call this per packet.
        Ipv6Prefix::host(item)
    }

    #[inline]
    fn prefix_item(&self, p: Ipv6Prefix) -> Option<u128> {
        (p.len() == 128).then(|| p.addr())
    }

    #[inline]
    fn level_of(&self, p: Ipv6Prefix) -> usize {
        if p.is_root() {
            return self.levels() - 1;
        }
        let drop = 128 - p.len() as u32;
        assert!(
            drop.is_multiple_of(self.granularity as u32),
            "prefix length /{} is not a level of the g={} hierarchy",
            p.len(),
            self.granularity
        );
        (drop / self.granularity as u32) as usize
    }

    #[inline]
    fn parent(&self, p: Ipv6Prefix) -> Option<Ipv6Prefix> {
        if p.is_root() {
            None
        } else {
            Some(p.ancestor(p.len().saturating_sub(self.granularity)))
        }
    }

    #[inline]
    fn root(&self) -> Ipv6Prefix {
        Ipv6Prefix::ROOT
    }

    #[inline]
    fn contains(&self, ancestor: Ipv6Prefix, descendant: Ipv6Prefix) -> bool {
        ancestor.contains(descendant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hextet_shape() {
        let h = Ipv6Hierarchy::hextets();
        assert_eq!(h.levels(), 9);
        let item = 0x2001_0db8_0000_0000_0000_0000_0000_0001u128;
        assert_eq!(h.generalize(item, 0).len(), 128);
        assert_eq!(h.generalize(item, 6).to_string(), "2001:db8::/32");
        assert_eq!(h.generalize(item, 8), Ipv6Prefix::ROOT);
    }

    /// Golden: mask table vs the arithmetic definition at every level,
    /// with spot-pinned values for the two standard granularities.
    #[test]
    fn mask_table_pinned_at_every_level() {
        for g in [1u8, 4, 8, 16, 32, 64, 128] {
            let h = Ipv6Hierarchy::new(g);
            for l in 0..h.levels() {
                let len = h.prefix_len_at(l);
                let want = if len == 0 { 0u128 } else { u128::MAX << (128 - len) };
                assert_eq!(h.mask_at(l), want, "g={g} level={l}");
                assert_eq!(Ipv6Prefix::mask(len), want, "len={len}");
                assert_eq!(h.generalize(u128::MAX, l), Ipv6Prefix::new(u128::MAX, len));
            }
        }
        let h = Ipv6Hierarchy::hextets();
        assert_eq!(h.mask_at(0), u128::MAX);
        assert_eq!(h.mask_at(6), 0xFFFF_FFFF_0000_0000_0000_0000_0000_0000);
        assert_eq!(h.mask_at(8), 0);
        let n = Ipv6Hierarchy::nibbles();
        assert_eq!(n.mask_at(1), u128::MAX << 4);
        assert_eq!(n.mask_at(32), 0);
    }

    #[test]
    fn nibble_levels() {
        let h = Ipv6Hierarchy::nibbles();
        assert_eq!(h.levels(), 33);
        assert_eq!(h.prefix_len_at(1), 124);
    }

    proptest! {
        #[test]
        fn contract_holds(item in any::<u128>(), g in prop::sample::select(vec![1u8, 4, 8, 16, 32, 64, 128])) {
            let h = Ipv6Hierarchy::new(g);
            prop_assert_eq!(h.generalize(item, h.levels() - 1), h.root());
            for l in 0..h.levels() {
                let p = h.generalize(item, l);
                prop_assert_eq!(h.level_of(p), l);
                prop_assert!(p.contains_addr(item));
                if l + 1 < h.levels() {
                    prop_assert_eq!(h.parent(p).unwrap(), h.generalize(item, l + 1));
                }
            }
        }

        #[test]
        fn prefix_item_inverts_level_zero_only(item in any::<u128>(), g in prop::sample::select(vec![1u8, 4, 8, 16, 32, 64, 128])) {
            let h = Ipv6Hierarchy::new(g);
            prop_assert_eq!(h.prefix_item(h.item_prefix(item)), Some(item));
            for l in 1..h.levels() {
                prop_assert_eq!(h.prefix_item(h.generalize(item, l)), None);
            }
        }
    }
}
