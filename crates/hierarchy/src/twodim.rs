//! The two-dimensional (source, destination) lattice.
//!
//! Generalizing a (src, dst) pair is not a chain: from `(s/32, d/32)` you
//! can generalize the source *or* the destination, so the structure is a
//! product lattice with `levels_src × levels_dst` node shapes. This
//! module provides the lattice operations; the exact 2-D HHH algorithm
//! (in `hhh-core::twodim`) consumes them.

use crate::chain::Hierarchy;
use crate::ipv4::Ipv4Hierarchy;
use core::fmt;
use hhh_nettypes::Ipv4Prefix;

/// A node in the 2-D lattice: a source prefix paired with a destination
/// prefix.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TwoDimNode {
    /// Source prefix.
    pub src: Ipv4Prefix,
    /// Destination prefix.
    pub dst: Ipv4Prefix,
}

impl fmt::Display for TwoDimNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} -> {})", self.src, self.dst)
    }
}

/// The product lattice of two IPv4 hierarchies.
#[derive(Clone, Copy, Debug)]
pub struct TwoDimHierarchy {
    src: Ipv4Hierarchy,
    dst: Ipv4Hierarchy,
}

impl TwoDimHierarchy {
    /// Build from per-dimension hierarchies.
    pub const fn new(src: Ipv4Hierarchy, dst: Ipv4Hierarchy) -> Self {
        TwoDimHierarchy { src, dst }
    }

    /// The standard byte-granularity 5×5 lattice (25 node shapes).
    pub const fn bytes() -> Self {
        Self::new(Ipv4Hierarchy::bytes(), Ipv4Hierarchy::bytes())
    }

    /// Levels along the source dimension.
    pub fn src_levels(&self) -> usize {
        self.src.levels()
    }

    /// Levels along the destination dimension.
    pub fn dst_levels(&self) -> usize {
        self.dst.levels()
    }

    /// Total number of node shapes (`src_levels × dst_levels`), the `H`
    /// constant of the RHHH paper's 2-D analysis.
    pub fn node_shapes(&self) -> usize {
        self.src_levels() * self.dst_levels()
    }

    /// Number of diagonal levels (`src_levels + dst_levels - 1`): nodes
    /// whose source level plus destination level are equal sit on the
    /// same diagonal, and discounting proceeds diagonal by diagonal.
    pub fn diagonals(&self) -> usize {
        self.src_levels() + self.dst_levels() - 1
    }

    /// The diagonal (combined generalization depth) of a node.
    pub fn diagonal_of(&self, n: TwoDimNode) -> usize {
        self.src.level_of(n.src) + self.dst.level_of(n.dst)
    }

    /// The most specific node of an item pair.
    pub fn item_node(&self, item: (u32, u32)) -> TwoDimNode {
        TwoDimNode { src: self.src.item_prefix(item.0), dst: self.dst.item_prefix(item.1) }
    }

    /// The node at `(src_level, dst_level)` for an item pair.
    pub fn generalize(&self, item: (u32, u32), src_level: usize, dst_level: usize) -> TwoDimNode {
        TwoDimNode {
            src: self.src.generalize(item.0, src_level),
            dst: self.dst.generalize(item.1, dst_level),
        }
    }

    /// Every lattice node an item pair generalizes to, in row-major
    /// `(src_level, dst_level)` order. `node_shapes()` entries.
    pub fn all_nodes(&self, item: (u32, u32)) -> Vec<TwoDimNode> {
        let mut out = Vec::with_capacity(self.node_shapes());
        for sl in 0..self.src_levels() {
            for dl in 0..self.dst_levels() {
                out.push(self.generalize(item, sl, dl));
            }
        }
        out
    }

    /// The (up to two) parents of a node: source generalized one level,
    /// and destination generalized one level. The root has none.
    pub fn parents(&self, n: TwoDimNode) -> Vec<TwoDimNode> {
        let mut out = Vec::with_capacity(2);
        if let Some(s) = self.src.parent(n.src) {
            out.push(TwoDimNode { src: s, dst: n.dst });
        }
        if let Some(d) = self.dst.parent(n.dst) {
            out.push(TwoDimNode { src: n.src, dst: d });
        }
        out
    }

    /// The lattice root `(*/0, */0)`.
    pub fn root(&self) -> TwoDimNode {
        TwoDimNode { src: self.src.root(), dst: self.dst.root() }
    }

    /// Ancestor-or-self containment: both dimensions must contain.
    pub fn contains(&self, ancestor: TwoDimNode, descendant: TwoDimNode) -> bool {
        ancestor.src.contains(descendant.src) && ancestor.dst.contains(descendant.dst)
    }

    /// The meet (greatest common ancestor) of two nodes.
    pub fn common_ancestor(&self, a: TwoDimNode, b: TwoDimNode) -> TwoDimNode {
        // Walk each dimension up to the hierarchy level where they agree.
        let src = self.dim_common(&self.src, a.src, b.src);
        let dst = self.dim_common(&self.dst, a.dst, b.dst);
        TwoDimNode { src, dst }
    }

    fn dim_common(&self, h: &Ipv4Hierarchy, a: Ipv4Prefix, b: Ipv4Prefix) -> Ipv4Prefix {
        let mut l = self.levels_max(h, a, b);
        loop {
            let pa = Ipv4Prefix::new(a.addr(), h.prefix_len_at(l));
            let pb = Ipv4Prefix::new(b.addr(), h.prefix_len_at(l));
            if pa == pb {
                return pa;
            }
            l += 1;
        }
    }

    fn levels_max(&self, h: &Ipv4Hierarchy, a: Ipv4Prefix, b: Ipv4Prefix) -> usize {
        h.level_of(a).max(h.level_of(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn n(s: &str, d: &str) -> TwoDimNode {
        TwoDimNode { src: s.parse().unwrap(), dst: d.parse().unwrap() }
    }

    #[test]
    fn byte_lattice_shape() {
        let h = TwoDimHierarchy::bytes();
        assert_eq!(h.node_shapes(), 25);
        assert_eq!(h.diagonals(), 9);
        let item = (0x0A010203u32, 0xC0A80001u32);
        assert_eq!(h.all_nodes(item).len(), 25);
        assert_eq!(h.item_node(item), n("10.1.2.3/32", "192.168.0.1/32"));
        assert_eq!(h.generalize(item, 1, 2), n("10.1.2.0/24", "192.168.0.0/16"));
    }

    #[test]
    fn parents_are_one_step_up() {
        let h = TwoDimHierarchy::bytes();
        let node = n("10.1.0.0/16", "192.168.0.0/16");
        let ps = h.parents(node);
        assert_eq!(ps.len(), 2);
        assert!(ps.contains(&n("10.0.0.0/8", "192.168.0.0/16")));
        assert!(ps.contains(&n("10.1.0.0/16", "192.0.0.0/8")));
        for p in ps {
            assert!(h.contains(p, node));
            assert_eq!(h.diagonal_of(p), h.diagonal_of(node) + 1);
        }
        assert!(h.parents(h.root()).is_empty());
        // A node with one root dimension has exactly one parent.
        assert_eq!(h.parents(n("10.0.0.0/8", "0.0.0.0/0")).len(), 1);
    }

    #[test]
    fn containment_requires_both_dimensions() {
        let h = TwoDimHierarchy::bytes();
        let a = n("10.0.0.0/8", "192.0.0.0/8");
        assert!(h.contains(a, n("10.1.0.0/16", "192.168.0.0/16")));
        assert!(!h.contains(a, n("11.0.0.0/8", "192.168.0.0/16")));
        assert!(!h.contains(a, n("10.1.0.0/16", "10.0.0.0/8")));
    }

    #[test]
    fn common_ancestor_contains_both() {
        let h = TwoDimHierarchy::bytes();
        let a = n("10.1.2.3/32", "192.168.0.1/32");
        let b = n("10.1.9.9/32", "192.168.0.2/32");
        let c = h.common_ancestor(a, b);
        assert_eq!(c, n("10.1.0.0/16", "192.168.0.0/24"));
        assert!(h.contains(c, a) && h.contains(c, b));
    }

    proptest! {
        #[test]
        fn lattice_contract(s in any::<u32>(), d in any::<u32>()) {
            let h = TwoDimHierarchy::bytes();
            let item = (s, d);
            let nodes = h.all_nodes(item);
            // Every node contains the item node.
            let leaf = h.item_node(item);
            for node in &nodes {
                prop_assert!(h.contains(*node, leaf));
            }
            // The root is among them.
            prop_assert!(nodes.contains(&h.root()));
            // Parents found via the lattice equal generalizing one more step.
            for sl in 0..h.src_levels() {
                for dl in 0..h.dst_levels() {
                    let node = h.generalize(item, sl, dl);
                    let ps = h.parents(node);
                    if sl + 1 < h.src_levels() {
                        prop_assert!(ps.contains(&h.generalize(item, sl + 1, dl)));
                    }
                    if dl + 1 < h.dst_levels() {
                        prop_assert!(ps.contains(&h.generalize(item, sl, dl + 1)));
                    }
                }
            }
        }

        #[test]
        fn common_ancestor_is_minimal(s1 in any::<u32>(), d1 in any::<u32>(), s2 in any::<u32>(), d2 in any::<u32>()) {
            let h = TwoDimHierarchy::bytes();
            let a = h.item_node((s1, d1));
            let b = h.item_node((s2, d2));
            let c = h.common_ancestor(a, b);
            prop_assert!(h.contains(c, a));
            prop_assert!(h.contains(c, b));
            // No child of c contains both.
            for p in [(c.src, true), (c.dst, false)] {
                let _ = p; // structural check below via diagonals
            }
            // Minimality: every strict descendant of c along either
            // dimension fails to contain a or b.
            // (Checked by re-deriving: the per-dimension meet is minimal.)
            prop_assert_eq!(c.src, {
                let ha = Ipv4Hierarchy::bytes();
                let mut l = 0;
                loop {
                    let pa = ha.generalize(s1, l);
                    let pb = ha.generalize(s2, l);
                    if pa == pb { break pa; }
                    l += 1;
                }
            });
        }
    }
}
