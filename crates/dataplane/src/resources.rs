//! Resource accounting: the numbers a switch ASIC team asks for first.

use crate::model::Pipeline;
use core::fmt;

/// Hardware resource usage of a data-plane program.
#[derive(Clone, Debug, PartialEq)]
pub struct ResourceReport {
    /// Program name.
    pub program: &'static str,
    /// Pipeline stages occupied.
    pub stages: usize,
    /// Total register SRAM in bits.
    pub sram_bits: u64,
    /// Hash computations per packet.
    pub hash_units_per_packet: usize,
    /// Worst-case register (read-modify-write) accesses per packet.
    pub max_register_accesses: u64,
    /// Mean register accesses per packet over the measured run.
    pub mean_register_accesses: f64,
}

impl ResourceReport {
    /// Gather the pipeline-derived numbers, with program-specific hash
    /// count supplied by the caller.
    pub fn from_pipeline(
        program: &'static str,
        pipeline: &Pipeline,
        hash_units_per_packet: usize,
    ) -> Self {
        ResourceReport {
            program,
            stages: pipeline.stage_count(),
            sram_bits: pipeline.sram_bits(),
            hash_units_per_packet,
            max_register_accesses: pipeline.max_accesses_per_packet(),
            mean_register_accesses: pipeline.mean_accesses_per_packet(),
        }
    }

    /// SRAM in kibibytes (for human-facing tables).
    pub fn sram_kib(&self) -> f64 {
        self.sram_bits as f64 / 8.0 / 1024.0
    }
}

impl fmt::Display for ResourceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} stages, {:.1} KiB SRAM, {} hashes/pkt, ≤{} reg-accesses/pkt",
            self.program,
            self.stages,
            self.sram_kib(),
            self.hash_units_per_packet,
            self.max_register_accesses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StageSpec;

    #[test]
    fn derives_from_pipeline() {
        let mut p = Pipeline::new(&[StageSpec { arrays: vec![("a".into(), 1024, 64)] }]);
        p.begin_packet();
        p.rmw(0, 0, 0, |v| v + 1).unwrap();
        p.begin_packet();
        let r = ResourceReport::from_pipeline("test", &p, 2);
        assert_eq!(r.stages, 1);
        assert_eq!(r.sram_bits, 1024 * 64);
        assert_eq!(r.hash_units_per_packet, 2);
        assert_eq!(r.max_register_accesses, 1);
        assert!((r.sram_kib() - 8.0).abs() < 1e-9);
        assert!(r.to_string().contains("8.0 KiB"));
    }
}
