//! # hhh-dataplane
//!
//! A match-action pipeline *model* — the substrate for the paper's
//! programmable-data-plane angle.
//!
//! The paper motivates its analysis with P4-capable switches and closes
//! by calling for "match-action friendly" windowless algorithms,
//! promising a comparison of "performance, resource utilization and
//! result's accuracy". Real hardware is not available here (and was
//! future work in the paper too), so this crate provides the next best
//! thing: a software model of an RMT-style feed-forward pipeline that
//! **enforces** the structural constraints that make an algorithm
//! implementable in match-action hardware:
//!
//! * a packet traverses stages strictly in order (no going back);
//! * each register array is accessed **at most once per packet**
//!   (single read-modify-write — the atom hardware gives you);
//! * register cells have a fixed bit width; values saturate;
//! * no floating point — the TDBF decay is integer shifts plus an
//!   8-entry lookup table, exactly the kind of trick a P4 target
//!   permits.
//!
//! [`programs::DpHashPipe`] and [`programs::DpTdbf`] are HashPipe and
//! the on-demand time-decaying Bloom filter mapped onto this model;
//! both are tested for functional equivalence against their
//! unconstrained `hhh-core`/`hhh-sketches` counterparts, and both
//! report a [`ResourceReport`] — the §3 resource-utilization numbers.
//!
//! Emitting actual P4 source from the model is out of scope (DESIGN.md
//! §9), as it was for the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
pub mod programs;
mod resources;

pub use model::{Pipeline, PipelineError, RegisterArray, StageSpec};
pub use resources::ResourceReport;
