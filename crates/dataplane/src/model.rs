//! The pipeline model: stages, register arrays, and the per-packet
//! access discipline.

use core::fmt;

/// Errors raised when a program violates the match-action discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Attempted to access a stage at or before one already visited in
    /// this packet (pipelines are feed-forward).
    StageOrder {
        /// Stage the packet already reached.
        reached: usize,
        /// Stage the program tried to access.
        attempted: usize,
    },
    /// A register array was accessed twice for one packet.
    DoubleAccess {
        /// Offending stage.
        stage: usize,
        /// Offending array (index within the stage).
        array: usize,
    },
    /// Array index beyond the configured size.
    IndexOutOfRange {
        /// Offending index.
        index: usize,
        /// Array size.
        size: usize,
    },
    /// Unknown stage or array.
    NoSuchArray {
        /// Requested stage.
        stage: usize,
        /// Requested array.
        array: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::StageOrder { reached, attempted } => write!(
                f,
                "feed-forward violation: stage {attempted} accessed after stage {reached}"
            ),
            PipelineError::DoubleAccess { stage, array } => {
                write!(f, "register array {array} in stage {stage} accessed twice for one packet")
            }
            PipelineError::IndexOutOfRange { index, size } => {
                write!(f, "register index {index} out of range (size {size})")
            }
            PipelineError::NoSuchArray { stage, array } => {
                write!(f, "no register array {array} in stage {stage}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// One register array within a stage.
#[derive(Clone, Debug)]
pub struct RegisterArray {
    /// Human-readable name (appears in resource reports).
    pub name: String,
    /// Number of cells.
    pub size: usize,
    /// Cell width in bits (1..=64); writes saturate to this width.
    pub width_bits: u32,
    cells: Vec<u64>,
}

impl RegisterArray {
    /// A zeroed array. Panics on zero size or width outside 1..=64.
    pub fn new(name: &str, size: usize, width_bits: u32) -> Self {
        assert!(size > 0, "register array needs at least one cell");
        assert!((1..=64).contains(&width_bits), "width must be 1..=64 bits");
        RegisterArray { name: name.to_string(), size, width_bits, cells: vec![0; size] }
    }

    /// The saturation mask for this width.
    #[inline]
    pub fn max_value(&self) -> u64 {
        if self.width_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.width_bits) - 1
        }
    }

    /// SRAM footprint in bits.
    pub fn sram_bits(&self) -> u64 {
        self.size as u64 * self.width_bits as u64
    }
}

/// Declarative description of one stage's arrays, used to build a
/// [`Pipeline`].
#[derive(Clone, Debug)]
pub struct StageSpec {
    /// The arrays this stage holds: `(name, size, width_bits)`.
    pub arrays: Vec<(String, usize, u32)>,
}

/// The feed-forward pipeline.
#[derive(Clone, Debug)]
pub struct Pipeline {
    stages: Vec<Vec<RegisterArray>>,
    /// Feed-forward tracking: deepest stage touched by the current
    /// packet (`None` before any access).
    reached: Option<usize>,
    /// Arrays accessed by the current packet, as (stage, array).
    accessed: Vec<(usize, usize)>,
    /// Totals for resource accounting.
    packets: u64,
    total_accesses: u64,
    max_accesses_per_packet: u64,
    accesses_this_packet: u64,
}

impl Pipeline {
    /// Build from stage specs.
    pub fn new(specs: &[StageSpec]) -> Self {
        assert!(!specs.is_empty(), "pipeline needs at least one stage");
        Pipeline {
            stages: specs
                .iter()
                .map(|s| {
                    s.arrays.iter().map(|(n, size, w)| RegisterArray::new(n, *size, *w)).collect()
                })
                .collect(),
            reached: None,
            accessed: Vec::new(),
            packets: 0,
            total_accesses: 0,
            max_accesses_per_packet: 0,
            accesses_this_packet: 0,
        }
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Total SRAM across all arrays, in bits.
    pub fn sram_bits(&self) -> u64 {
        self.stages.iter().flatten().map(|a| a.sram_bits()).sum()
    }

    /// Packets processed (completed `begin_packet` cycles).
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Mean register accesses per packet.
    pub fn mean_accesses_per_packet(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_accesses as f64 / self.packets as f64
        }
    }

    /// Worst-case register accesses for any packet so far.
    pub fn max_accesses_per_packet(&self) -> u64 {
        self.max_accesses_per_packet
    }

    /// Start processing a new packet: resets the per-packet access
    /// discipline.
    pub fn begin_packet(&mut self) {
        self.reached = None;
        self.accessed.clear();
        self.packets += 1;
        self.max_accesses_per_packet = self.max_accesses_per_packet.max(self.accesses_this_packet);
        self.accesses_this_packet = 0;
    }

    /// One read-modify-write on `stages[stage].arrays[array][index]`:
    /// the modifier sees the current value and returns the new one
    /// (saturated to the array width). Returns the *old* value.
    ///
    /// Enforces feed-forward stage order and single access per array
    /// per packet.
    pub fn rmw(
        &mut self,
        stage: usize,
        array: usize,
        index: usize,
        f: impl FnOnce(u64) -> u64,
    ) -> Result<u64, PipelineError> {
        if let Some(reached) = self.reached {
            if stage < reached {
                return Err(PipelineError::StageOrder { reached, attempted: stage });
            }
        }
        if self.accessed.contains(&(stage, array)) {
            return Err(PipelineError::DoubleAccess { stage, array });
        }
        let arr = self
            .stages
            .get_mut(stage)
            .and_then(|s| s.get_mut(array))
            .ok_or(PipelineError::NoSuchArray { stage, array })?;
        if index >= arr.size {
            return Err(PipelineError::IndexOutOfRange { index, size: arr.size });
        }
        let old = arr.cells[index];
        arr.cells[index] = f(old).min(arr.max_value());
        self.reached = Some(stage);
        self.accessed.push((stage, array));
        self.total_accesses += 1;
        self.accesses_this_packet += 1;
        Ok(old)
    }

    /// Control-plane read: not subject to the per-packet discipline
    /// (the switch CPU reads registers out of band).
    pub fn control_read(
        &self,
        stage: usize,
        array: usize,
        index: usize,
    ) -> Result<u64, PipelineError> {
        let arr = self
            .stages
            .get(stage)
            .and_then(|s| s.get(array))
            .ok_or(PipelineError::NoSuchArray { stage, array })?;
        if index >= arr.size {
            return Err(PipelineError::IndexOutOfRange { index, size: arr.size });
        }
        Ok(arr.cells[index])
    }

    /// Control-plane snapshot of a whole array.
    pub fn control_dump(&self, stage: usize, array: usize) -> Result<&[u64], PipelineError> {
        self.stages
            .get(stage)
            .and_then(|s| s.get(array))
            .map(|a| a.cells.as_slice())
            .ok_or(PipelineError::NoSuchArray { stage, array })
    }

    /// Control-plane reset of every register.
    pub fn control_clear(&mut self) {
        for s in &mut self.stages {
            for a in s {
                a.cells.fill(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage() -> Pipeline {
        Pipeline::new(&[
            StageSpec { arrays: vec![("k0".into(), 8, 32), ("c0".into(), 8, 32)] },
            StageSpec { arrays: vec![("k1".into(), 8, 32)] },
        ])
    }

    #[test]
    fn rmw_reads_old_writes_new() {
        let mut p = two_stage();
        p.begin_packet();
        assert_eq!(p.rmw(0, 0, 3, |v| v + 7).unwrap(), 0);
        assert_eq!(p.control_read(0, 0, 3).unwrap(), 7);
    }

    #[test]
    fn feed_forward_enforced() {
        let mut p = two_stage();
        p.begin_packet();
        p.rmw(1, 0, 0, |v| v).unwrap();
        let err = p.rmw(0, 0, 0, |v| v).unwrap_err();
        assert_eq!(err, PipelineError::StageOrder { reached: 1, attempted: 0 });
        // Same stage again is fine (different array).
        p.begin_packet();
        p.rmw(0, 0, 0, |v| v).unwrap();
        p.rmw(0, 1, 0, |v| v).unwrap();
    }

    #[test]
    fn single_access_per_array_per_packet() {
        let mut p = two_stage();
        p.begin_packet();
        p.rmw(0, 0, 1, |v| v + 1).unwrap();
        let err = p.rmw(0, 0, 2, |v| v + 1).unwrap_err();
        assert_eq!(err, PipelineError::DoubleAccess { stage: 0, array: 0 });
        // Next packet may touch it again.
        p.begin_packet();
        p.rmw(0, 0, 2, |v| v + 1).unwrap();
    }

    #[test]
    fn width_saturates() {
        let mut p = Pipeline::new(&[StageSpec { arrays: vec![("n".into(), 2, 8)] }]);
        p.begin_packet();
        p.rmw(0, 0, 0, |_| 1_000_000).unwrap();
        assert_eq!(p.control_read(0, 0, 0).unwrap(), 255);
    }

    #[test]
    fn bounds_checked() {
        let mut p = two_stage();
        p.begin_packet();
        assert!(matches!(p.rmw(0, 0, 99, |v| v), Err(PipelineError::IndexOutOfRange { .. })));
        assert!(matches!(p.rmw(9, 0, 0, |v| v), Err(PipelineError::NoSuchArray { .. })));
        assert!(matches!(p.control_read(0, 9, 0), Err(PipelineError::NoSuchArray { .. })));
    }

    #[test]
    fn accounting() {
        let mut p = two_stage();
        assert_eq!(p.sram_bits(), 8 * 32 * 3);
        assert_eq!(p.stage_count(), 2);
        for i in 0..4 {
            p.begin_packet();
            p.rmw(0, 0, i, |v| v + 1).unwrap();
            if i % 2 == 0 {
                p.rmw(1, 0, i, |v| v + 1).unwrap();
            }
        }
        p.begin_packet(); // flush counters of the 4th packet
        assert_eq!(p.packets(), 5);
        assert_eq!(p.max_accesses_per_packet(), 2);
        assert!(p.mean_accesses_per_packet() > 1.0);
        p.control_clear();
        assert_eq!(p.control_read(0, 0, 0).unwrap(), 0);
    }

    #[test]
    fn error_messages_readable() {
        let e = PipelineError::StageOrder { reached: 2, attempted: 1 };
        assert!(e.to_string().contains("feed-forward"));
        let e = PipelineError::DoubleAccess { stage: 0, array: 1 };
        assert!(e.to_string().contains("twice"));
    }
}
