//! Data-plane programs: HashPipe and the on-demand TDBF, expressed
//! against the [`crate::Pipeline`] discipline.
//!
//! Both programs are functionally cross-checked (in this module's tests
//! and in the workspace integration tests) against their unconstrained
//! reference implementations: [`hhh_core::HashPipe`] must match
//! *exactly* (same hashes, same slots, same counts), and the TDBF
//! program must track [`hhh_sketches::OnDemandTdbf`] within the
//! quantization error of its integer arithmetic.

use crate::model::{Pipeline, PipelineError, StageSpec};
use crate::resources::ResourceReport;
use hhh_nettypes::{Nanos, TimeSpan};
use hhh_sketches::hash::{hash_of, reduce, seed_sequence};
use hhh_sketches::DecayRate;

/// HashPipe on the pipeline model: `d` stages, each holding one
/// 64-bit register array packing `(key: u32, count: u32)` per cell so
/// the whole per-stage step is a single read-modify-write — the
/// paired-register layout of the SOSR'17 paper.
///
/// Key `0` is reserved as "empty slot" (the model's one concession;
/// 0.0.0.0 does not occur as a source address in any workload here).
#[derive(Debug)]
pub struct DpHashPipe {
    pipeline: Pipeline,
    seeds: Vec<u64>,
    slots: usize,
}

const KEY_SHIFT: u32 = 32;
const COUNT_MASK: u64 = 0xFFFF_FFFF;

impl DpHashPipe {
    /// A `stages × slots` HashPipe. Seeds match
    /// [`hhh_core::HashPipe::new`] given the same master seed.
    pub fn new(stages: usize, slots: usize, seed: u64) -> Self {
        assert!(stages > 0 && slots > 0, "dimensions must be non-zero");
        let specs: Vec<StageSpec> = (0..stages)
            .map(|i| StageSpec { arrays: vec![(format!("hp_stage{i}"), slots, 64)] })
            .collect();
        DpHashPipe { pipeline: Pipeline::new(&specs), seeds: seed_sequence(seed, stages), slots }
    }

    /// Process one packet. Returns a pipeline error only if the
    /// program itself violates the discipline (a bug, not a data
    /// condition) — surfaced as `Result` so the tests can prove it
    /// never happens.
    pub fn observe(&mut self, key: u32, weight: u64) -> Result<(), PipelineError> {
        assert_ne!(key, 0, "key 0 is the reserved empty marker");
        let weight = weight.min(COUNT_MASK);
        self.pipeline.begin_packet();

        // Stage 0: always insert.
        let idx = reduce(hash_of(&key, self.seeds[0]), self.slots);
        let packed_new = ((key as u64) << KEY_SHIFT) | weight;
        let old = self.pipeline.rmw(0, 0, idx, |cell| {
            let okey = (cell >> KEY_SHIFT) as u32;
            if okey == key {
                let count = (cell & COUNT_MASK).saturating_add(weight).min(COUNT_MASK);
                ((key as u64) << KEY_SHIFT) | count
            } else {
                packed_new
            }
        })?;
        let okey = (old >> KEY_SHIFT) as u32;
        if okey == key || okey == 0 {
            return Ok(());
        }
        let mut carry_key = okey;
        let mut carry_count = old & COUNT_MASK;

        for s in 1..self.seeds.len() {
            let idx = reduce(hash_of(&carry_key, self.seeds[s]), self.slots);
            let (ck, cc) = (carry_key, carry_count);
            let old = self.pipeline.rmw(s, 0, idx, |cell| {
                let okey = (cell >> KEY_SHIFT) as u32;
                let ocount = cell & COUNT_MASK;
                if okey == ck {
                    ((ck as u64) << KEY_SHIFT) | ocount.saturating_add(cc).min(COUNT_MASK)
                } else if okey == 0 || ocount < cc {
                    ((ck as u64) << KEY_SHIFT) | cc
                } else {
                    cell
                }
            })?;
            let okey = (old >> KEY_SHIFT) as u32;
            let ocount = old & COUNT_MASK;
            if okey == ck || okey == 0 {
                return Ok(()); // merged or placed
            }
            if ocount < cc {
                carry_key = okey;
                carry_count = ocount;
            }
            // else: carry unchanged, try next stage
        }
        Ok(()) // remnant dropped off the pipe end
    }

    /// Control-plane estimate: sum of this key's counts across stages.
    pub fn estimate(&self, key: u32) -> u64 {
        let mut est = 0u64;
        for s in 0..self.seeds.len() {
            let idx = reduce(hash_of(&key, self.seeds[s]), self.slots);
            let cell = self.pipeline.control_read(s, 0, idx).expect("in range");
            if (cell >> KEY_SHIFT) as u32 == key {
                est += cell & COUNT_MASK;
            }
        }
        est
    }

    /// Control-plane heavy hitters: all keys whose aggregated count
    /// meets `threshold`, descending.
    pub fn heavy_hitters(&self, threshold: u64) -> Vec<(u32, u64)> {
        let mut agg: std::collections::HashMap<u32, u64> = Default::default();
        for s in 0..self.seeds.len() {
            for &cell in self.pipeline.control_dump(s, 0).expect("exists") {
                let key = (cell >> KEY_SHIFT) as u32;
                if key != 0 {
                    *agg.entry(key).or_default() += cell & COUNT_MASK;
                }
            }
        }
        let mut out: Vec<_> = agg.into_iter().filter(|(_, c)| *c >= threshold).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Resource usage (one hash per stage).
    pub fn resources(&self) -> ResourceReport {
        ResourceReport::from_pipeline("hashpipe", &self.pipeline, self.seeds.len())
    }

    /// Control-plane reset.
    pub fn reset(&mut self) {
        self.pipeline.control_clear();
    }
}

/// The on-demand TDBF on the pipeline model: `k` stages (one hash
/// each), each a register array of 64-bit cells packing
/// `(last_touch_ticks: u24, value: 32.8 fixed point u40)`.
///
/// All arithmetic is integer. Decay `2^(−elapsed/half_life)` is
/// computed as a per-tick 0.32 fixed-point factor raised by
/// square-and-multiply (≤ 48 wide multiplies — the model idealization
/// of the lookup-table cascade a real target would use; DESIGN.md).
/// Time is quantized to ticks (default 1 ms); the 24-bit tick counter
/// covers ~4.6 h of trace at that tick, plenty for any workload here
/// (wraparound is unhandled, documented).
#[derive(Debug)]
pub struct DpTdbf {
    pipeline: Pipeline,
    seeds: Vec<u64>,
    cells: usize,
    tick: TimeSpan,
    /// Per-tick decay multiplier in 2^-32 units.
    factor_per_tick: u64,
}

const TS_SHIFT: u32 = 40;
const VALUE_MASK: u64 = (1 << TS_SHIFT) - 1;
const FRAC_BITS: u32 = 8;

impl DpTdbf {
    /// A `k`-hash filter of `cells` cells per stage with the given
    /// decay rate, quantized to `tick`.
    pub fn new(cells: usize, k: usize, rate: DecayRate, tick: TimeSpan, seed: u64) -> Self {
        assert!(cells > 0 && k > 0, "dimensions must be non-zero");
        assert!(!tick.is_zero(), "tick must be non-zero");
        let specs: Vec<StageSpec> =
            (0..k).map(|i| StageSpec { arrays: vec![(format!("tdbf_h{i}"), cells, 64)] }).collect();
        let per_tick = rate.factor(tick);
        let factor_per_tick = (per_tick * (1u64 << 32) as f64).round() as u64;
        DpTdbf {
            pipeline: Pipeline::new(&specs),
            seeds: seed_sequence(seed, k),
            cells,
            tick,
            factor_per_tick: factor_per_tick.min((1u64 << 32) - 1),
        }
    }

    fn ticks(&self, t: Nanos) -> u64 {
        (t - Nanos::ZERO) / self.tick
    }

    /// Integer decay of a 32.8 fixed-point value over `elapsed` ticks
    /// (`factor^e` via square-and-multiply in 0.32 fixed point).
    fn decay_value(&self, value: u64, elapsed_ticks: u64) -> u64 {
        decay_fixed(value, elapsed_ticks, self.factor_per_tick)
    }

    /// Record `weight` (integer, e.g. bytes) for `key` at `now`.
    pub fn insert(&mut self, key: u32, weight: u64, now: Nanos) -> Result<(), PipelineError> {
        let now_ticks = self.ticks(now);
        let add = (weight << FRAC_BITS).min(VALUE_MASK);
        self.pipeline.begin_packet();
        let fpt = self.factor_per_tick;
        for s in 0..self.seeds.len() {
            let idx = reduce(hash_of(&key, self.seeds[s]), self.cells);
            self.pipeline.rmw(s, 0, idx, |cell| {
                let ts = cell >> TS_SHIFT;
                let value = cell & VALUE_MASK;
                let elapsed = now_ticks.saturating_sub(ts);
                let decayed = decay_fixed(value, elapsed, fpt);
                let new_value = decayed.saturating_add(add).min(VALUE_MASK);
                ((now_ticks & 0xFF_FFFF) << TS_SHIFT) | new_value
            })?;
        }
        Ok(())
    }

    /// Control-plane estimate at `now`: min over the key's cells, in
    /// weight units (fixed point resolved to f64 only at the very edge
    /// for reporting).
    pub fn estimate(&self, key: u32, now: Nanos) -> f64 {
        let now_ticks = self.ticks(now);
        let mut min_v = u64::MAX;
        for s in 0..self.seeds.len() {
            let idx = reduce(hash_of(&key, self.seeds[s]), self.cells);
            let cell = self.pipeline.control_read(s, 0, idx).expect("in range");
            let ts = cell >> TS_SHIFT;
            let value = cell & VALUE_MASK;
            let decayed = self.decay_value(value, now_ticks.saturating_sub(ts));
            min_v = min_v.min(decayed);
        }
        min_v as f64 / (1u64 << FRAC_BITS) as f64
    }

    /// Resource usage (one hash per stage).
    pub fn resources(&self) -> ResourceReport {
        ResourceReport::from_pipeline("tdbf", &self.pipeline, self.seeds.len())
    }

    /// Control-plane reset.
    pub fn reset(&mut self) {
        self.pipeline.control_clear();
    }
}

/// Integer decay of a fixed-point value over `elapsed` ticks:
/// `value × factor^elapsed`, with the factor in 2^-32 units.
fn decay_fixed(value: u64, elapsed_ticks: u64, factor_per_tick: u64) -> u64 {
    if value == 0 || elapsed_ticks == 0 {
        return value;
    }
    let mut result: u128 = 1u128 << 32;
    let mut base: u128 = factor_per_tick as u128;
    let mut e = elapsed_ticks;
    let mut steps = 0;
    while e > 0 && steps < 64 {
        if e & 1 == 1 {
            result = (result * base) >> 32;
            if result == 0 {
                return 0;
            }
        }
        base = (base * base) >> 32;
        e >>= 1;
        steps += 1;
    }
    ((value as u128 * result) >> 32) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hhh_core::HashPipe;
    use hhh_sketches::OnDemandTdbf;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn dp_hashpipe_matches_reference_exactly() {
        let mut dp = DpHashPipe::new(4, 64, 42);
        let mut reference = HashPipe::<u32>::new(4, 64, 42);
        let mut rng = SmallRng::seed_from_u64(1);
        let keys: Vec<u32> = (0..20_000)
            .map(|i| if i % 4 == 0 { 1 + (i as u32 % 7) } else { 1000 + rng.gen_range(0..5000) })
            .collect();
        for &k in &keys {
            dp.observe(k, 3).unwrap();
            reference.observe(k, 3);
        }
        // Same hashes, same algorithm, same state: estimates must be
        // identical for every key that appeared.
        for &k in keys.iter().take(2000) {
            assert_eq!(dp.estimate(k), reference.estimate(&k), "divergence for key {k}");
        }
        let dp_hh = dp.heavy_hitters(1000);
        let ref_hh = reference.heavy_hitters(1000);
        assert_eq!(dp_hh, ref_hh);
    }

    #[test]
    fn dp_hashpipe_respects_discipline_by_construction() {
        // 4 stages → at most 4 register accesses per packet, ever.
        let mut dp = DpHashPipe::new(4, 16, 7);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..5_000 {
            dp.observe(1 + rng.gen_range(0..500u32), 1).unwrap();
        }
        let r = dp.resources();
        assert!(r.max_register_accesses <= 4);
        assert_eq!(r.stages, 4);
        assert_eq!(r.hash_units_per_packet, 4);
        assert_eq!(r.sram_bits, 4 * 16 * 64);
    }

    #[test]
    fn dp_tdbf_tracks_float_reference() {
        let rate = DecayRate::from_half_life(TimeSpan::from_secs(5));
        let mut dp = DpTdbf::new(1024, 3, rate, TimeSpan::from_millis(1), 9);
        let mut reference = OnDemandTdbf::<u32>::new(1024, 3, rate, 9);
        let mut t = Nanos::ZERO;
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..30_000 {
            let key = 1 + rng.gen_range(0..50u32);
            dp.insert(key, 100, t).unwrap();
            reference.insert(&key, 100.0, t);
            t += TimeSpan::from_micros(300);
        }
        for key in 1..=50u32 {
            let a = dp.estimate(key, t);
            let b = reference.estimate(&key, t);
            if b > 100.0 {
                let rel = (a - b).abs() / b;
                assert!(
                    rel < 0.05,
                    "quantized estimate diverged for {key}: dp {a}, float {b} (rel {rel})"
                );
            }
        }
    }

    #[test]
    fn dp_tdbf_decays_to_zero() {
        let rate = DecayRate::from_half_life(TimeSpan::from_secs(1));
        let mut dp = DpTdbf::new(64, 2, rate, TimeSpan::from_millis(1), 0);
        dp.insert(7, 1_000_000, Nanos::ZERO).unwrap();
        let v0 = dp.estimate(7, Nanos::ZERO);
        assert!(v0 >= 999_999.0);
        let v1 = dp.estimate(7, Nanos::from_secs(1));
        assert!((v1 - 500_000.0).abs() / 500_000.0 < 0.01, "one half-life: {v1}");
        let v50 = dp.estimate(7, Nanos::from_secs(50));
        assert_eq!(v50, 0.0, "fifty half-lives: {v50}");
    }

    #[test]
    fn dp_tdbf_never_negative_or_overflowing() {
        let rate = DecayRate::from_half_life(TimeSpan::from_millis(100));
        let mut dp = DpTdbf::new(8, 2, rate, TimeSpan::from_millis(1), 1);
        // Hammer one key with huge weights: value saturates at the
        // 32.8 cap instead of wrapping.
        for i in 0..100u64 {
            dp.insert(3, u64::MAX / 2, Nanos::from_millis(i)).unwrap();
        }
        let v = dp.estimate(3, Nanos::from_millis(100));
        assert!(v <= (VALUE_MASK >> FRAC_BITS) as f64);
        assert!(v > 0.0);
    }

    #[test]
    fn reset_clears_programs() {
        let mut hp = DpHashPipe::new(2, 8, 0);
        hp.observe(5, 10).unwrap();
        hp.reset();
        assert_eq!(hp.estimate(5), 0);

        let rate = DecayRate::from_half_life(TimeSpan::from_secs(1));
        let mut bf = DpTdbf::new(8, 2, rate, TimeSpan::from_millis(1), 0);
        bf.insert(5, 10, Nanos::ZERO).unwrap();
        bf.reset();
        assert_eq!(bf.estimate(5, Nanos::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn key_zero_rejected() {
        let mut hp = DpHashPipe::new(1, 4, 0);
        let _ = hp.observe(0, 1);
    }
}
