//! Quickstart: generate traffic, detect hierarchical heavy hitters.
//!
//! Run with: `cargo run --release --example quickstart`

use hidden_hhh::prelude::*;

fn main() {
    // Thirty seconds of ISP-like traffic: Zipf sources clustered into
    // networks, bursty mid-ranks, IMIX packet sizes.
    let model = scenarios::day_trace(0, TimeSpan::from_secs(30));
    let packets: Vec<PacketRecord> = TraceGenerator::new(model, 42).collect();
    let stats = TraceStats::from_stream(packets.iter().copied()).expect("non-empty");
    println!(
        "trace: {} packets, {:.1} MB, {} sources, {:.1} Mbit/s\n",
        stats.packets,
        stats.bytes as f64 / 1e6,
        stats.distinct_sources,
        stats.mean_bps() / 1e6
    );

    // Feed the whole trace to the exact detector (one 30 s window).
    let hierarchy = Ipv4Hierarchy::bytes();
    let mut det = ExactHhh::new(hierarchy);
    for p in &packets {
        HhhDetector::<Ipv4Hierarchy>::observe(&mut det, p.src, p.wire_len as u64);
    }

    // Report at the paper's three thresholds.
    for pct in [10.0, 5.0, 1.0] {
        let t = Threshold::percent(pct);
        let report = det.report(t);
        println!("== HHHs above {pct}% of bytes ({} found) ==", report.len());
        let mut table = Table::new(vec!["prefix", "level", "total MB", "discounted MB"]);
        for r in &report {
            table.row(vec![
                r.prefix.to_string(),
                r.level.to_string(),
                format!("{:.2}", r.estimate as f64 / 1e6),
                format!("{:.2}", r.discounted as f64 / 1e6),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
    println!(
        "note how ancestors of reported hosts are *not* reported unless they carry\n\
         ≥T of their own residual traffic — that discount is what makes HHH useful."
    );
}
