//! Quickstart: generate traffic, detect hierarchical heavy hitters
//! through the pipeline API.
//!
//! Run with: `cargo run --release --example quickstart`

use hidden_hhh::prelude::*;

fn main() {
    // Thirty seconds of ISP-like traffic: Zipf sources clustered into
    // networks, bursty mid-ranks, IMIX packet sizes.
    let horizon = TimeSpan::from_secs(30);
    let model = scenarios::day_trace(0, horizon);
    let packets: Vec<PacketRecord> = TraceGenerator::new(model, 42).collect();
    let stats = TraceStats::from_stream(packets.iter().copied()).expect("non-empty");
    println!(
        "trace: {} packets, {:.1} MB, {} sources, {:.1} Mbit/s\n",
        stats.packets,
        stats.bytes as f64 / 1e6,
        stats.distinct_sources,
        stats.mean_bps() / 1e6
    );

    // One pipeline pass: the whole trace as a single disjoint window,
    // reported at the paper's three thresholds (one series each).
    let hierarchy = Ipv4Hierarchy::bytes();
    let thresholds_pct = [10.0, 5.0, 1.0];
    let thresholds: Vec<Threshold> =
        thresholds_pct.iter().map(|p| Threshold::percent(*p)).collect();
    let mut det = ExactHhh::new(hierarchy);
    let reports = Pipeline::new(packets.iter().copied())
        .engine(Disjoint::new(&mut det, horizon, horizon, &thresholds, |p| p.src))
        .collect()
        .run();

    for (pct, series) in thresholds_pct.iter().zip(&reports) {
        let report = &series[0].hhhs;
        println!("== HHHs above {pct}% of bytes ({} found) ==", report.len());
        let mut table = Table::new(vec!["prefix", "level", "total MB", "discounted MB"]);
        for r in report {
            table.row(vec![
                r.prefix.to_string(),
                r.level.to_string(),
                format!("{:.2}", r.estimate as f64 / 1e6),
                format!("{:.2}", r.discounted as f64 / 1e6),
            ]);
        }
        print!("{}", table.render());
        println!();
    }
    println!(
        "note how ancestors of reported hosts are *not* reported unless they carry\n\
         ≥T of their own residual traffic — that discount is what makes HHH useful."
    );
}
