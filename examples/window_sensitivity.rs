//! Miniature Figure 3: how much does the reported HHH set change when
//! the window is a few *milliseconds* shorter?
//!
//! Run with: `cargo run --release --example window_sensitivity`

use hidden_hhh::prelude::*;

fn main() {
    let horizon = TimeSpan::from_secs(120);
    let base = TimeSpan::from_secs(10);
    let deltas = [TimeSpan::from_millis(10), TimeSpan::from_millis(40), TimeSpan::from_millis(100)];
    let model = scenarios::day_trace(0, horizon);
    let packets = TraceGenerator::new(model, 7);
    // Bit-granularity hierarchy: the most sensitive configuration (see
    // the fig3 experiment and EXPERIMENTS.md).
    let hierarchy = Ipv4Hierarchy::bits();

    // Micro-varied engine: series 0 is the baseline, series 1 + i the
    // i-th delta, index-aligned with the baseline.
    let out = Pipeline::new(packets)
        .engine(MicroVaried::new(
            &hierarchy,
            horizon,
            base,
            &deltas,
            Threshold::percent(5.0),
            |p| p.src,
        ))
        .collect()
        .run();
    let baseline = &out[0];

    println!(
        "baseline: {} disjoint windows of {base}; variants share each window's start\n\
         but end 10/40/100 ms earlier. Same traffic, same threshold. How similar are\n\
         the reported HHH sets?\n",
        baseline.len()
    );
    let mut table =
        Table::new(vec!["window#", "baseline |HHH|", "Δ=10ms J", "Δ=40ms J", "Δ=100ms J"]);
    for (i, b) in baseline.iter().enumerate() {
        let mut row = vec![i.to_string(), b.len().to_string()];
        for vi in 0..deltas.len() {
            let j = jaccard(&b.prefix_set(), &out[1 + vi][i].prefix_set());
            row.push(format!("{j:.3}"));
        }
        table.row(row);
    }
    print!("{}", table.render());

    for (vi, delta) in deltas.iter().enumerate() {
        let sims: Vec<f64> = baseline
            .iter()
            .zip(&out[1 + vi])
            .map(|(b, v)| jaccard(&b.prefix_set(), &v.prefix_set()))
            .collect();
        let changed = sims.iter().filter(|s| **s < 1.0).count();
        println!(
            "Δ={delta}: HHH set changed in {changed}/{} windows (mean J = {:.3})",
            sims.len(),
            sims.iter().sum::<f64>() / sims.len() as f64
        );
    }
    println!(
        "\nthe measurement interval is supposed to be an analysis *parameter*, yet\n\
         shaving off 0.1–1% of its length changes the answer — the paper's Figure 3."
    );
}
