//! Distributed aggregation end to end, in one process for show:
//!
//! 1. split a trace across two "processes" (key-partitioned, the same
//!    partition the sharded engines use) and run each through its own
//!    pipeline with a [`JsonSnapshotSink`] — producing the snapshot
//!    JSONL streams real shard processes would write;
//! 2. fold the streams with `hhh-agg`'s library API and print the
//!    merged per-window HHH counts next to a single-process reference —
//!    they match exactly, because exact-detector merges are lossless
//!    and the wire codec round-trips states bit-for-bit;
//! 3. replay one stream through [`SnapshotSource`] → [`FoldSnapshots`]
//!    to show snapshots are first-class pipeline input;
//! 4. re-run one shard with the **binary (v2) wire format** — the
//!    `--format binary` path — and show that the smaller frames fold
//!    to the byte-identical merged state;
//! 5. stream the shards over **transports** instead of buffers — both
//!    shard pipelines write natively encoded v2 frames over localhost
//!    TCP into one `TcpFrameListener` (the `distagg shard --connect` /
//!    `hhh-agg --listen` path) — and show the socket fold is
//!    byte-identical to the file fold: a frame on a socket is the
//!    same bytes as a frame in a file.
//!
//! Run with: `cargo run --release --example dist_agg`

use hidden_hhh::agg::{collect_socket_streams, fold_streams, read_stream};
use hidden_hhh::core::WireFormat;
use hidden_hhh::prelude::*;
use hidden_hhh::window::{shard_of, FoldSnapshots, SnapshotSink, SnapshotSource};

fn main() {
    let h = Ipv4Hierarchy::bytes();
    let horizon = TimeSpan::from_secs(20);
    let window = TimeSpan::from_secs(5);
    let threshold = Threshold::percent(1.0);
    let packets: Vec<PacketRecord> =
        TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect();
    println!("trace: {} packets over {horizon}", packets.len());

    // --- 1. two independent shard pipelines, as two processes would run.
    let shard_stream = |shard: usize, k: usize, format: WireFormat| -> Vec<u8> {
        let mine = packets.iter().copied().filter(|p| shard_of(&p.src, k) == shard);
        let (bytes, err) = Pipeline::new(mine)
            .engine(ShardedDisjoint::new(
                vec![ExactHhh::new(h)],
                horizon,
                window,
                &[threshold],
                |p| p.src,
            ))
            .sink(SnapshotSink::with_format(Vec::new(), format))
            .run();
        assert!(err.is_none());
        bytes
    };
    let streams = [shard_stream(0, 2, WireFormat::Json), shard_stream(1, 2, WireFormat::Json)];

    // --- 2. aggregate the two streams, compare with one process.
    let parsed: Vec<_> = streams
        .iter()
        .enumerate()
        .map(|(i, b)| read_stream(i, b.as_slice()).expect("own streams parse"))
        .collect();
    let merged = fold_streams(&h, &parsed).expect("shard snapshots fold");

    let mut single = ExactHhh::new(h);
    let reference = Pipeline::new(packets.iter().copied())
        .engine(Disjoint::new(&mut single, horizon, window, &[threshold], |p| p.src))
        .collect()
        .run();

    println!("\nwindow  folded-HHHs  single-process-HHHs  identical");
    for (i, (point, reference)) in merged.iter().zip(&reference[0]).enumerate() {
        let folded = point.report(i as u64, threshold);
        println!(
            "{:>6}  {:>11}  {:>19}  {}",
            i,
            folded.len(),
            reference.len(),
            folded.hhhs == reference.hhhs
        );
        assert_eq!(folded.hhhs, reference.hhhs, "exact aggregation is lossless");
    }

    // --- 3. snapshots as pipeline input: replay one stream.
    let mut source = SnapshotSource::new(streams[0].as_slice());
    let replayed =
        Pipeline::new(&mut source).engine(FoldSnapshots::new(&h, &[threshold])).collect().run();
    assert!(source.error().is_none(), "own streams replay cleanly");
    println!(
        "\nreplayed shard 0's stream through FoldSnapshots: {} report points",
        replayed[0].len()
    );

    // --- 4. the binary (v2) wire format: `hhh-agg --format binary`
    // territory. The same shard written as length-prefixed frames is
    // smaller on the wire and decodes straight into detectors — and
    // folding a binary shard with a JSON shard lands on the identical
    // merged state (SnapshotSource sniffs the format per stream).
    let shard0_v2 = shard_stream(0, 2, WireFormat::Binary);
    println!(
        "\nshard 0 wire size: {} B as v1 JSONL, {} B as v2 frames ({:.1}x smaller)",
        streams[0].len(),
        shard0_v2.len(),
        streams[0].len() as f64 / shard0_v2.len() as f64
    );
    let mixed = vec![
        read_stream(0, shard0_v2.as_slice()).expect("binary stream parses"),
        read_stream(1, streams[1].as_slice()).expect("json stream parses"),
    ];
    let merged_mixed = fold_streams(&h, &mixed).expect("mixed-format shards fold");
    for (a, b) in merged.iter().zip(&merged_mixed) {
        assert_eq!(
            a.detector.snapshot().to_json(),
            b.detector.snapshot().to_json(),
            "binary and JSON shards must fold to the identical merged state"
        );
    }
    println!("binary + JSON shards folded to the byte-identical merged state");

    // --- 5. the same shards over a live transport: each pipeline
    // streams natively encoded v2 frames (`FrameEncode`, no JSON on
    // the shard side) over localhost TCP; the listener folds them in
    // hello-id order. `distagg shard --connect` / `hhh-agg --listen`
    // run exactly this across real processes and hosts.
    let listener = TcpFrameListener::bind("127.0.0.1:0")
        .expect("bind an ephemeral localhost port")
        .with_timeout(std::time::Duration::from_secs(60));
    let addr = listener.local_addr().expect("bound address").to_string();
    let streamed = std::thread::scope(|s| {
        for shard in 0..2usize {
            let addr = addr.clone();
            let packets = &packets;
            s.spawn(move || {
                let mine = packets.iter().copied().filter(|p| shard_of(&p.src, 2) == shard);
                let transport = TcpTransport::connect(addr).with_hello(shard as u64, "example");
                let (_t, err) = Pipeline::new(mine)
                    .engine(ShardedDisjoint::new(
                        vec![ExactHhh::new(h)],
                        horizon,
                        window,
                        &[threshold],
                        |p| p.src,
                    ))
                    .sink(TransportSink::new(transport))
                    .run();
                assert!(err.is_none(), "localhost TCP writes succeed: {err:?}");
            });
        }
        collect_socket_streams(listener, 2).expect("both shard streams complete")
    });
    let merged_socket = fold_streams(&h, &streamed).expect("socket shards fold");
    assert_eq!(merged.len(), merged_socket.len(), "socket fold must cover every report point");
    for (a, b) in merged.iter().zip(&merged_socket) {
        assert_eq!(
            a.detector.snapshot().to_json(),
            b.detector.snapshot().to_json(),
            "the socket fold must land on the identical merged state"
        );
    }
    println!(
        "2 shard pipelines -> TCP {addr} -> folded: byte-identical to the file fold \
         ({} report points)",
        merged_socket.len()
    );
}
