//! Distributed aggregation end to end, in one process for show:
//!
//! 1. split a trace across two "processes" (key-partitioned, the same
//!    partition the sharded engines use) and run each through its own
//!    pipeline with a [`JsonSnapshotSink`] — producing the snapshot
//!    JSONL streams real shard processes would write;
//! 2. fold the streams with `hhh-agg`'s library API and print the
//!    merged per-window HHH counts next to a single-process reference —
//!    they match exactly, because exact-detector merges are lossless
//!    and the wire codec round-trips states bit-for-bit;
//! 3. replay one stream through [`SnapshotSource`] → [`FoldSnapshots`]
//!    to show snapshots are first-class pipeline input.
//!
//! Run with: `cargo run --release --example dist_agg`

use hidden_hhh::agg::{fold_streams, read_stream};
use hidden_hhh::prelude::*;
use hidden_hhh::window::{shard_of, FoldSnapshots, SnapshotSource};

fn main() {
    let h = Ipv4Hierarchy::bytes();
    let horizon = TimeSpan::from_secs(20);
    let window = TimeSpan::from_secs(5);
    let threshold = Threshold::percent(1.0);
    let packets: Vec<PacketRecord> =
        TraceGenerator::new(scenarios::day_trace(0, horizon), scenarios::day_seed(0)).collect();
    println!("trace: {} packets over {horizon}", packets.len());

    // --- 1. two independent shard pipelines, as two processes would run.
    let shard_stream = |shard: usize, k: usize| -> Vec<u8> {
        let mine = packets.iter().copied().filter(|p| shard_of(&p.src, k) == shard);
        let (bytes, err) = Pipeline::new(mine)
            .engine(ShardedDisjoint::new(
                vec![ExactHhh::new(h)],
                horizon,
                window,
                &[threshold],
                |p| p.src,
            ))
            .sink(JsonSnapshotSink::new(Vec::new()))
            .run();
        assert!(err.is_none());
        bytes
    };
    let streams = [shard_stream(0, 2), shard_stream(1, 2)];

    // --- 2. aggregate the two streams, compare with one process.
    let parsed: Vec<_> = streams
        .iter()
        .enumerate()
        .map(|(i, b)| read_stream(i, b.as_slice()).expect("own streams parse"))
        .collect();
    let merged = fold_streams(&h, &parsed).expect("shard snapshots fold");

    let mut single = ExactHhh::new(h);
    let reference = Pipeline::new(packets.iter().copied())
        .engine(Disjoint::new(&mut single, horizon, window, &[threshold], |p| p.src))
        .collect()
        .run();

    println!("\nwindow  folded-HHHs  single-process-HHHs  identical");
    for (i, (point, reference)) in merged.iter().zip(&reference[0]).enumerate() {
        let folded = point.report(i as u64, threshold);
        println!(
            "{:>6}  {:>11}  {:>19}  {}",
            i,
            folded.len(),
            reference.len(),
            folded.hhhs == reference.hhhs
        );
        assert_eq!(folded.hhhs, reference.hhhs, "exact aggregation is lossless");
    }

    // --- 3. snapshots as pipeline input: replay one stream.
    let mut source = SnapshotSource::new(streams[0].as_slice());
    let replayed =
        Pipeline::new(&mut source).engine(FoldSnapshots::new(&h, &[threshold])).collect().run();
    assert!(source.error().is_none(), "own streams replay cleanly");
    println!(
        "\nreplayed shard 0's stream through FoldSnapshots: {} report points",
        replayed[0].len()
    );
}
