//! The paper's headline experiment, miniature edition: compare the
//! HHHs that disjoint windows report against what a sliding window
//! reveals, and print the ones that were hidden.
//!
//! Run with: `cargo run --release --example hidden_hhh`

use hidden_hhh::analysis::hidden::hidden_hhh;
use hidden_hhh::prelude::*;

fn main() {
    let horizon = TimeSpan::from_secs(120);
    let window = TimeSpan::from_secs(10);
    let step = TimeSpan::from_secs(1);
    let threshold = Threshold::percent(1.0);

    let model = scenarios::day_trace(1, horizon);
    let packets = TraceGenerator::new(model, scenarios::day_seed(1));
    let hierarchy = Ipv4Hierarchy::bytes();

    // One pipeline pass computes every sliding position exactly; the
    // disjoint windows are the positions whose start is a multiple of
    // the window length.
    let sliding = Pipeline::new(packets)
        .engine(SlidingExact::new(&hierarchy, horizon, window, step, &[threshold], |p| p.src))
        .collect()
        .run()
        .remove(0);
    let epw = window / step;
    let disjoint: Vec<WindowReport<Ipv4Prefix>> =
        sliding.iter().filter(|r| r.index % epw == 0).cloned().collect();

    let h = hidden_hhh(&sliding, &disjoint);
    println!(
        "window {window}, step {step}, threshold {threshold}, trace {horizon}:\n\
         sliding reveals {} distinct HHH prefixes; disjoint windows report {}.\n\
         {} ({:.1}%) are HIDDEN from the disjoint-window approach:\n",
        h.sliding_distinct,
        h.disjoint_distinct,
        h.hidden_prefixes.len(),
        h.hidden_fraction * 100.0
    );
    for p in &h.hidden_prefixes {
        // Show when the sliding schedule saw each hidden prefix.
        let seen: Vec<u64> = sliding
            .iter()
            .filter(|r| r.hhhs.iter().any(|x| x.prefix == *p))
            .map(|r| r.start.as_secs())
            .collect();
        let window_list = if seen.len() > 6 {
            format!("{:?}… ({} positions)", &seen[..6], seen.len())
        } else {
            format!("{seen:?}")
        };
        println!("  {p:<20} visible in sliding windows starting at t(s)={window_list}");
    }
    println!(
        "\neach of these crossed the threshold only in windows that straddle a\n\
         disjoint boundary — the burst was split across two windows and diluted\n\
         below threshold in both. That is the paper's Figure 2 mechanism."
    );
}
