//! Continuous DDoS monitoring with the windowless TDBF-HHH detector —
//! the paper's §3 proposal applied to its own motivating use case.
//!
//! A botnet inside one /16 ramps up mid-trace; no single bot is heavy,
//! so only *hierarchical* aggregation sees the attack, and because the
//! detector is windowless it can be queried at any instant without
//! waiting for a window boundary. The probing is a [`Continuous`]
//! pipeline engine with a streaming closure sink: alerts fire while
//! the stream is still flowing, with zero buffering.
//!
//! Run with: `cargo run --release --example ddos_monitor`

use hidden_hhh::core::{TdbfHhh, TdbfHhhConfig};
use hidden_hhh::prelude::*;

fn main() {
    let horizon = TimeSpan::from_secs(60);
    let threshold = Threshold::percent(10.0);
    let stream = scenarios::ddos(horizon, 0xD005);

    let mut det = TdbfHhh::new(
        Ipv4Hierarchy::bytes(),
        TdbfHhhConfig {
            half_life: TimeSpan::from_secs(3),
            admit_fraction: 0.005,
            ..TdbfHhhConfig::default()
        },
    );

    // Probe twice a second while streaming packets through. The first
    // seconds establish the *baseline* set of heavy aggregates (big
    // customer networks are always there); alerts fire only for
    // aggregates that were NOT part of the baseline — the anomaly.
    let probes: Vec<Nanos> = (1..horizon.as_millis() / 500)
        .map(|k| Nanos::ZERO + TimeSpan::from_millis(k * 500))
        .collect();
    let baseline_until = Nanos::from_secs(10);
    let mut baseline: std::collections::BTreeSet<Ipv4Prefix> = Default::default();
    let mut alerted: std::collections::BTreeSet<Ipv4Prefix> = Default::default();
    println!(
        "monitoring (alerts are aggregates at /8..=/24 that were not heavy during the\n\
         first 10 s baseline; the attack pulse runs t=24s..42s):\n"
    );
    Pipeline::new(stream)
        .engine(Continuous::new(&mut det, &probes, threshold, |p| p.src))
        .sink(FnSink(|_series, report: WindowReport<Ipv4Prefix>| {
            let now = report.start;
            for r in &report.hhhs {
                if r.level == 0 || r.level > 3 {
                    continue; // hosts and the root are not "distributed source" signals
                }
                if now <= baseline_until {
                    baseline.insert(r.prefix);
                } else if !baseline.contains(&r.prefix) && alerted.insert(r.prefix) {
                    println!(
                        "  t={:<8} ALERT new heavy aggregate {:<18} level {} decayed-bytes≈{}",
                        now.to_string(),
                        r.prefix.to_string(),
                        r.level,
                        r.discounted
                    );
                }
            }
        }))
        .run();

    if alerted.is_empty() {
        println!("\nno anomalous aggregate fired — try a lower threshold");
    } else {
        println!(
            "\n{} anomalous aggregate(s); the botnet /16 appears here and at no point does\n\
             any individual bot qualify. Detection lag is set by the decay half-life, not\n\
             by waiting for the next window boundary.",
            alerted.len()
        );
    }
}
