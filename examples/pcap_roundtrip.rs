//! Interoperability: write a synthetic trace as a standard pcap file,
//! read it back, and analyze it — the same pipeline a deployment would
//! run on real captures (tcpdump/Wireshark can open the file).
//!
//! Run with: `cargo run --release --example pcap_roundtrip`

use hidden_hhh::pcap::{PcapReader, PcapWriter};
use hidden_hhh::prelude::*;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("hidden-hhh-example.pcap");

    // Generate and write.
    let model = scenarios::day_trace(2, TimeSpan::from_secs(10));
    let mut writer = PcapWriter::new(BufWriter::new(File::create(&path)?))?;
    let mut generated = 0u64;
    for p in TraceGenerator::new(model, 1234) {
        writer.write_record(&p)?;
        generated += 1;
    }
    writer.into_inner()?;
    println!(
        "wrote {generated} frames to {} ({} bytes on disk)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // Read back and analyze.
    let mut reader = PcapReader::new(BufReader::new(File::open(&path)?))?;
    let mut det = ExactHhh::new(Ipv4Hierarchy::bytes());
    let mut packets = 0u64;
    while let Some(rec) = reader.next_record()? {
        HhhDetector::<Ipv4Hierarchy>::observe(&mut det, rec.src, rec.wire_len as u64);
        packets += 1;
    }
    assert_eq!(packets, generated, "every frame must parse back");
    println!("read {packets} IPv4 records back; top talkers above 5%:");
    for r in det.report(Threshold::percent(5.0)) {
        println!("  {r}");
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
