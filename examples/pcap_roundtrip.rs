//! Interoperability: write a synthetic trace as a standard pcap file,
//! then analyze it straight from disk with a pipeline over the chunked
//! [`PcapSource`] — the same composition a deployment would run on
//! real captures (tcpdump/Wireshark can open the file).
//!
//! Run with: `cargo run --release --example pcap_roundtrip`

use hidden_hhh::pcap::{PcapSource, PcapWriter};
use hidden_hhh::prelude::*;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::temp_dir().join("hidden-hhh-example.pcap");
    let horizon = TimeSpan::from_secs(10);

    // Generate and write.
    let model = scenarios::day_trace(2, horizon);
    let mut writer = PcapWriter::new(BufWriter::new(File::create(&path)?))?;
    let mut generated = 0u64;
    for p in TraceGenerator::new(model, 1234) {
        writer.write_record(&p)?;
        generated += 1;
    }
    writer.into_inner()?;
    println!(
        "wrote {generated} frames to {} ({} bytes on disk)",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // Read back and analyze: the pcap file is the pipeline's source,
    // one 10 s disjoint window covering the whole capture. Feed the
    // source by `&mut` so it stays inspectable after the run — that is
    // how a torn capture is told apart from a clean end-of-file.
    let mut source = PcapSource::open(BufReader::new(File::open(&path)?))?;
    let mut det = ExactHhh::new(Ipv4Hierarchy::bytes());
    let reports = Pipeline::new(&mut source)
        .engine(Disjoint::new(&mut det, horizon, horizon, &[Threshold::percent(5.0)], |p| p.src))
        .collect()
        .run();
    assert!(source.error().is_none(), "capture tore mid-file: {:?}", source.error());
    assert_eq!(source.reader().frames_read(), generated, "every frame must parse back");
    println!("analyzed the capture from disk; top talkers above 5%:");
    for r in &reports[0][0].hhhs {
        println!("  {r}");
    }
    assert!(reports[0][0].total > 0, "capture must carry traffic");

    std::fs::remove_file(&path).ok();
    Ok(())
}
