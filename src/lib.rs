//! # hidden-hhh
//!
//! A comprehensive Rust implementation of the systems and experiments
//! behind **"Revealing Hidden Hierarchical Heavy Hitters in network
//! traffic"** (Galea, Moore, Antichi, Bianchi, Bifulco — SIGCOMM
//! Posters and Demos 2018).
//!
//! The paper shows that the near-universal practice of detecting
//! (hierarchical) heavy hitters in *disjoint time windows* hides a
//! substantial fraction of them — up to 34% in the paper's Tier-1
//! traces — and proposes continuous-time (time-decaying) analysis,
//! concretely time-decaying Bloom filters, as the way out. This
//! workspace rebuilds that whole world:
//!
//! * [`nettypes`] — prefixes, packet records, trace time;
//! * [`pcap`] — capture I/O (classic pcap + a native compact format);
//! * [`trace`] — synthetic CAIDA-like traffic (the paper's traces are
//!   proprietary; DESIGN.md §2 argues the substitution);
//! * [`hierarchy`] — 1-D bit/byte prefix hierarchies and the 2-D
//!   (src, dst) lattice;
//! * [`sketches`] — Count-Min, Count Sketch, Space-Saving,
//!   Misra-Gries, Bloom, **time-decaying Bloom filters**, sliding-
//!   window summaries, exponential histograms;
//! * [`core`] — HHH detectors: exact, Space-Saving full-ancestry,
//!   RHHH, the windowless **TDBF-HHH**, plus HashPipe and
//!   UnivMon-lite baselines;
//! * [`window`] — the unified `Pipeline` (source → engine → sink):
//!   disjoint / sliding / micro-varied / continuous engines plus their
//!   sharded multi-core variants (batch-fed, merge-at-report), channel
//!   sources with back-pressure, snapshot sinks in both wire formats,
//!   and the snapshot **transports** (file / TCP / in-process channel)
//!   that stream natively encoded v2 frames between processes;
//! * [`dataplane`] — a match-action pipeline model with resource
//!   accounting;
//! * [`analysis`] — Jaccard, hidden-HHH, ECDF, precision/recall,
//!   tables, CSV;
//! * [`experiments`] — the binaries that regenerate every figure.
//!
//! ## Quickstart
//!
//! ```
//! use hidden_hhh::prelude::*;
//!
//! // Generate ten seconds of ISP-like traffic…
//! let model = scenarios::day_trace(0, TimeSpan::from_secs(10));
//! let packets: Vec<PacketRecord> = TraceGenerator::new(model, 42).collect();
//!
//! // …and find the hierarchical heavy hitters above 5% of bytes in
//! // each 5 s window, through the unified pipeline.
//! let horizon = TimeSpan::from_secs(10);
//! let mut det = ExactHhh::new(Ipv4Hierarchy::bytes());
//! let reports = Pipeline::new(packets.iter().copied())
//!     .engine(Disjoint::new(
//!         &mut det,
//!         horizon,
//!         TimeSpan::from_secs(5),
//!         &[Threshold::percent(5.0)],
//!         |p| p.src,
//!     ))
//!     .collect()
//!     .run();
//! for window in &reports[0] {
//!     for hhh in &window.hhhs {
//!         println!("[{}..{}] {hhh}", window.start, window.end);
//!     }
//! }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! EXPERIMENTS.md for the paper-vs-measured record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hhh_agg as agg;
pub use hhh_aggd as aggd;
pub use hhh_analysis as analysis;
pub use hhh_core as core;
pub use hhh_dataplane as dataplane;
pub use hhh_experiments as experiments;
pub use hhh_hierarchy as hierarchy;
pub use hhh_nettypes as nettypes;
pub use hhh_pcap as pcap;
pub use hhh_sketches as sketches;
pub use hhh_trace as trace;
pub use hhh_window as window;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use hhh_analysis::{jaccard, Ecdf, SetAccuracy, Table};
    pub use hhh_core::{
        ContinuousDetector, ExactHhh, HashPipe, HhhDetector, HhhReport, MergeableDetector,
        MvPipeHhh, Rhhh, SpaceSavingHhh, TdbfHhh, TdbfHhhConfig, Threshold, UnivMonLite,
    };
    pub use hhh_hierarchy::{Hierarchy, Ipv4Hierarchy, Ipv6Hierarchy, TwoDimHierarchy};
    pub use hhh_nettypes::{Ipv4Prefix, Measure, Nanos, PacketRecord, Proto, TimeSpan};
    pub use hhh_sketches::{DecayRate, OnDemandTdbf, SpaceSaving};
    pub use hhh_trace::{scenarios, TraceGenerator, TraceStats, TrafficModel};
    pub use hhh_window::{
        bounded, mem_transport, with_continuous_shards, with_shards, with_sliding_shards,
        CollectSink, Continuous, Disjoint, Engine, FnSink, JsonSnapshotSink, MicroVaried,
        PacketSource, Pipeline, ReportSink, ShardedContinuous, ShardedDisjoint, ShardedSliding,
        SlidingExact, SnapshotSink, TcpFrameListener, TcpTransport, TransportSink, TransportSource,
        WindowReport,
    };
    // The deprecated pre-pipeline drivers, for call sites mid-migration.
    #[allow(deprecated)]
    pub use hhh_window::driver::{
        run_continuous, run_disjoint, run_microvaried, run_sliding_exact,
    };
    #[allow(deprecated)]
    pub use hhh_window::sharded::run_sharded_disjoint;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_is_usable() {
        let h = Ipv4Hierarchy::bytes();
        let mut det = ExactHhh::new(h);
        HhhDetector::<Ipv4Hierarchy>::observe(&mut det, 0x0A000001, 100);
        assert_eq!(HhhDetector::<Ipv4Hierarchy>::total(&det), 100);
    }
}
