# Build stage: compile the daemon and the shard driver from the
# workspace. The builder is only as fresh as the checkout — no network
# access is needed beyond the base images (the workspace has no
# external crate dependencies).
FROM rust:1-slim AS build
WORKDIR /src
COPY . .
RUN cargo build --release -p hhh-aggd

# Runtime stage: just the two binaries. Both are static-ish gcc-linked
# Rust binaries; debian-slim covers their libc.
FROM debian:stable-slim
COPY --from=build /src/target/release/hhh-aggd /usr/local/bin/hhh-aggd
COPY --from=build /src/target/release/aggd-shard /usr/local/bin/aggd-shard

# Frame (shard transport) port and HTTP (queries/metrics/health) port.
EXPOSE 4710 4711

# Bind beyond localhost so compose siblings can reach the daemon;
# docker-compose.yml overrides the shard containers' entrypoint.
ENTRYPOINT ["hhh-aggd", "--listen", "0.0.0.0:4710", "--http", "0.0.0.0:4711"]
